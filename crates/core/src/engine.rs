//! The resident hybrid engine — paper Fig. 2 as a long-lived service
//! backend.
//!
//! [`crate::runtime::HybridRunner`] runs one fixed [`ParameterSpace`]
//! to completion and tears everything down. A query service cannot
//! work that way: it needs the rank workers, the shared-memory
//! scheduler and the simulated devices brought up **once**, fed
//! coarse-grained ion tasks for as long as the process lives, and torn
//! down gracefully (drain the queues, free every
//! [`hybrid_sched::Grant`], join every thread). [`Engine`] is that
//! resident form; `HybridRunner::run` is now a thin batch client of it.
//!
//! ## Cost-aware staged execution
//!
//! Submission of one [`IonJob`] generalizes the paper's Algorithm 1
//! step: a worker estimates the task's work with
//! [`crate::cost::ion_task_cost`], asks the scheduler for a device
//! under the configured [`SchedPolicy`], and **stages** the granted
//! task on that device's [`StealQueues`] lane rather than launching it
//! itself. One *pump* thread per device drains its lane in FIFO order —
//! and when its own lane runs dry, steals the largest-cost task from
//! the most-backlogged other lane (the grant moves with
//! [`Scheduler::reassign`], so accounting never leaks). When every
//! device queue is full, the worker runs the task on its own CPU
//! (paper fallback) — first offering to *swap*: if some staged device
//! task is heavier than the incoming one, the worker pulls that task
//! back to its CPU ([`Scheduler::release_to_cpu`]) and stages the
//! lighter incoming task in the freed slot.
//!
//! ## Stream-overlapped device execution
//!
//! Each pump drives its device through two [`gpu_sim::Stream`]s: the
//! kernel of ion *k* launches in the compute stream; a recorded
//! [`gpu_sim::StreamEvent`] gates the copy stream, whose D2H copy-back
//! and outcome settle run **on the device's DMA engines**
//! ([`gpu_sim::SimGpu::submit_dma`]). The pump launches ion *k+1* as
//! soon as *k*'s settle is enqueued, so copy-back and settle overlap
//! the next kernel even on a Fermi device with a single serial compute
//! queue — the asynchronous executor the paper's §V names as missing.
//!
//! ## Placement-invariant numerics
//!
//! With [`EngineConfig::deterministic_kernel`] set, device tasks launch
//! the fused kernel as a **single chunk** (`LaunchConfig::new(1, 1)`),
//! which makes the kernel's operation sequence identical to the host
//! fused path ([`rrc_spectral::emissivity_into`] under the same bin
//! rule). When the CPU integrator is that same bin rule, an ion
//! partial is then **bitwise identical** no matter where the scheduler
//! placed it — or whether a steal moved it — because overlap and
//! stealing change *timing and placement*, never the operation
//! sequence. With it unset, device tasks use the covering launch
//! geometry (higher simulated parallelism, last-ulp placement
//! dependence — the PR 1 behaviour, kept for the batch runtime and its
//! benches).

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use atomdb::AtomDatabase;
use gpu_sim::{
    BinIntegrationKernel, DeviceFault, DevicePtr, DeviceRule, FaultCounters, FusedBinKernel,
    LaunchConfig, Precision, SimGpu, Stream, TaskHandle,
};
use hybrid_sched::{
    CostKey, CostModel, DeviceId, Grant, HealthState, Knob, Next, OnlineTuner, SchedPolicy,
    Scheduler, SchedulerSnapshot, StealQueues, TunerDim, TunerKnobs, TuningConfig,
};
use mpi_sim::{BoundedQueue, TryPushError};
use quadrature::MathMode;
use rrc_spectral::{
    emissivity_into_mode, ion_integrands, level_window, EnergyGrid, GridPoint, Integrator,
    PreparedIntegrand, VectorPrepared,
};

use crate::cost::ion_task_cost;
use crate::pool::WorkspacePool;
use crate::resilience::{FaultStats, ResilienceConfig};
use crate::runtime::HybridConfig;

/// Configuration of a resident engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Atomic database (shared read-only by every worker and device).
    pub db: Arc<AtomDatabase>,
    /// Worker threads (the resident analogue of MPI ranks).
    pub workers: usize,
    /// Simulated GPU count (0 = every task runs on worker CPUs).
    pub gpus: usize,
    /// Maximum queue length per device (paper Algorithm 1).
    pub max_queue_len: u64,
    /// Placement policy: cost-aware weighted balancing (default) or
    /// the paper's count policy for A/B ablation.
    pub policy: SchedPolicy,
    /// Device-side integration rule.
    pub gpu_rule: DeviceRule,
    /// Device arithmetic precision.
    pub gpu_precision: Precision,
    /// CPU fallback integrator (paper: QAGS).
    pub cpu_integrator: Integrator,
    /// Route device tasks through the fused hot path (PR 1); `false`
    /// keeps the seed per-bin kernel for A/B runs.
    pub fused: bool,
    /// Outstanding device settles one pump may hold before blocking.
    /// The pump always double-buffers (floor 2) — that is the overlap
    /// tentpole; larger values deepen the pipeline.
    pub async_window: usize,
    /// Capacity of the bounded ion-task queue feeding the workers —
    /// the engine-tier admission bound.
    pub queue_depth: usize,
    /// Single-chunk kernel launches for bitwise placement invariance
    /// (see the module docs). The service tier turns this on; the
    /// batch runtime leaves it off.
    pub deterministic_kernel: bool,
    /// Math mode for the fused device kernels and the worker/caller CPU
    /// paths: [`MathMode::Exact`] keeps the seed's scalar arithmetic
    /// bitwise; [`MathMode::Vector`] routes exponentials and the f64
    /// Simpson/Romberg accumulations through the lane-parallel
    /// [`quadrature::simd`] layer.
    pub math: MathMode,
    /// Launch aggregation: staged device tasks whose estimated cost is
    /// **strictly below** this many work units are packed with further
    /// small tasks from the same lane into one kernel launch + one D2H
    /// copy (amortizing the per-launch overheads that dominate
    /// tiny-ion workloads). `0` disables aggregation.
    pub pack_threshold: u64,
    /// Upper bound on tasks per aggregated launch (floor 2 when
    /// aggregation is enabled).
    pub pack_max: usize,
    /// Fault injection, retry/backoff, deadline-watchdog and
    /// device-health configuration. [`ResilienceConfig::default`] is
    /// the fault-free production shape.
    pub resilience: ResilienceConfig,
    /// Online autotuning: when enabled, a resident
    /// [`hybrid_sched::OnlineTuner`] controller thread retunes the live
    /// knob block (pack threshold, async window, active ranks — plus
    /// service-registered dimensions) against decision-epoch signals.
    /// Off by default; every knob it can move is placement/batching
    /// only, so deterministic-kernel numerics stay bitwise invariant.
    pub tuning: TuningConfig,
}

impl EngineConfig {
    /// Derive a resident-engine configuration from a batch
    /// [`HybridConfig`] (same devices, ranks-as-workers, same
    /// numerics; covering kernel launches).
    #[must_use]
    pub fn from_hybrid(cfg: &HybridConfig) -> EngineConfig {
        EngineConfig {
            db: Arc::clone(&cfg.db),
            workers: cfg.ranks.max(1),
            gpus: cfg.gpus,
            max_queue_len: cfg.max_queue_len,
            policy: cfg.policy,
            gpu_rule: cfg.gpu_rule,
            gpu_precision: cfg.gpu_precision,
            cpu_integrator: cfg.cpu_integrator,
            fused: cfg.fused,
            async_window: cfg.async_window,
            queue_depth: 2 * cfg.ranks.max(1),
            deterministic_kernel: false,
            math: cfg.math,
            pack_threshold: cfg.pack_threshold,
            pack_max: 8,
            resilience: cfg.resilience.clone(),
            tuning: cfg.tuning,
        }
    }
}

/// Where one ion task actually executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPath {
    /// On simulated GPU `device` via a scheduler grant.
    Gpu(usize),
    /// On an engine worker's CPU after the scheduler reported all
    /// device queues full (paper Algorithm 1 fallback).
    WorkerCpu,
    /// On the submitting caller's own thread
    /// ([`Engine::compute_inline`] — the service tier's caller-runs
    /// overload policy).
    CallerCpu,
}

/// One coarse-grained task: some levels of one ion at one plasma
/// state, integrated over one bin table.
pub struct IonJob {
    /// Index into [`AtomDatabase::ions`].
    pub ion_index: usize,
    /// Level sub-range of the ion (full range for Ion granularity).
    pub level_range: Range<usize>,
    /// Plasma state.
    pub point: GridPoint,
    /// The target spectrum grid.
    pub grid: EnergyGrid,
    /// The grid's bin bounds, hoisted once per grid and shared by
    /// every task (must equal `grid.bin_pairs()`; the GPU path reads
    /// this table, the CPU path reads the grid — they see identical
    /// bounds because `bin_pairs` is derived from the same edges).
    pub bins: Arc<Vec<(f64, f64)>>,
    /// Caller correlation id, echoed in the outcome (the batch client
    /// stores the grid-point index here; the service stores the batch
    /// slot).
    pub tag: u64,
    /// Absolute completion deadline in clock seconds
    /// ([`f64::INFINITY`] = no deadline). Propagated from the request
    /// tier into the staging lanes, where local dequeue is
    /// earliest-deadline-first — a deadline never changes *where* a
    /// task runs (placement stays cost-aware) or its bits, only the
    /// order a device's staged backlog launches in.
    pub deadline: f64,
    /// Where to deliver the result.
    pub reply: Sender<IonOutcome>,
}

/// Result of one [`IonJob`].
#[derive(Debug)]
pub struct IonOutcome {
    /// Echo of [`IonJob::ion_index`].
    pub ion_index: usize,
    /// Echo of `IonJob::level_range.start` (orders Level-granularity
    /// partials deterministically).
    pub level_start: usize,
    /// Echo of [`IonJob::tag`].
    pub tag: u64,
    /// Per-bin partial emissivity (one slot per bin of the job's grid;
    /// all zeros for ions with no population at this state).
    pub partial: Vec<f64>,
    /// Where the task ran.
    pub path: ExecPath,
    /// Integrand evaluations performed (the cost-model work measure).
    pub evals: u64,
}

/// A granted-but-not-yet-launched device task parked on a steal lane.
struct StagedTask {
    job: IonJob,
    grant: Grant,
    /// Launch attempts that already failed (0 on first staging); the
    /// recovery ladder bounds this by `resilience.max_retries`.
    attempts: u32,
    /// Workload class of the task — the settle reports measured device
    /// seconds against this key.
    key: CostKey,
    /// The static (a-priori) cost estimate, kept alongside the grant's
    /// possibly-blended cost so measured-vs-static residuals compare
    /// like with like.
    static_cost: u64,
}

/// Shared adaptive state: the live knob block the hot paths read, the
/// online measured-cost blend, and (when tuning is enabled) the
/// resident controller — one allocation handed to every worker, pump,
/// and the controller thread.
struct Adaptive {
    knobs: Arc<TunerKnobs>,
    cost: Arc<CostModel>,
    tuner: Option<Arc<OnlineTuner>>,
    /// Tasks settled (device) or completed (worker CPU) — the decision
    /// epoch clock.
    completed: AtomicU64,
    /// Tells the controller thread to exit during drain.
    stop: AtomicBool,
    /// Optional externally-supplied epoch signal (the service tier
    /// installs a live-latency reader here); `None` falls back to the
    /// engine-internal modeled-seconds-per-task signal.
    #[allow(clippy::type_complexity)]
    signal: Mutex<Option<Box<dyn Fn() -> Option<f64> + Send>>>,
}

impl Adaptive {
    /// Number of worker ranks currently allowed to pull work (≥ 1 so
    /// the pool can never park itself completely).
    fn active_ranks(&self) -> u64 {
        self.knobs.active_ranks().max(1)
    }
}

/// Counters one worker accumulates over its lifetime.
#[derive(Debug, Default, Clone, Copy)]
struct WorkerStats {
    cpu_tasks: u64,
    workspaces_created: u64,
    workspace_acquisitions: u64,
}

/// What [`Engine::shutdown`] reports after draining.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Tasks executed on devices.
    pub gpu_tasks: u64,
    /// Tasks that fell back to worker CPUs.
    pub cpu_tasks: u64,
    /// Per-device history task counts from the scheduler.
    pub device_history: Vec<u64>,
    /// Per-device modeled busy seconds (cost-model time).
    pub device_virtual_seconds: Vec<f64>,
    /// Per-device peak on-board memory over the engine's life (bytes).
    pub device_peak_memory: Vec<u64>,
    /// Tasks each device stole from another device's staging lane.
    pub steals: Vec<u64>,
    /// Staged device tasks pulled back to worker CPUs by the fallback
    /// swap.
    pub cpu_steals: u64,
    /// QAGS workspaces constructed across the worker pools.
    pub workspaces_created: u64,
    /// Workspace acquisitions served by the worker pools.
    pub workspace_acquisitions: u64,
    /// Grants still outstanding after the drain — **must** be zero; a
    /// nonzero value means queue capacity leaked (also debug-asserted
    /// by the scheduler's drop).
    pub leaked_grants: u64,
    /// Device-task failures the recovery ladder handled (launch
    /// refusals, kernel panics, DMA failures, deadline overruns).
    pub task_faults: u64,
    /// Retry attempts issued (same-device re-stage or cross-device
    /// reassignment).
    pub task_retries: u64,
    /// Failures classified as deadline overruns by the settle watchdog.
    pub task_timeouts: u64,
    /// Tasks released to the host QAGS path after the ladder ran out of
    /// device options.
    pub fault_cpu_fallbacks: u64,
    /// Highest launch-attempt count any single task consumed — bounded
    /// by `resilience.max_retries + 1`.
    pub max_task_attempts: u64,
    /// Engine threads (workers or pumps) that died to a panic. The
    /// drain survives these; nonzero means a bug worth chasing.
    pub worker_panics: u64,
    /// Per-device count of device tasks that panicked on a device
    /// worker (injected kernel panics land here).
    pub device_panics: Vec<u64>,
    /// Per-device injected-fault counters from each device's
    /// [`gpu_sim::FaultInjector`].
    pub device_faults: Vec<FaultCounters>,
    /// Final health state of every device.
    pub device_health: Vec<HealthState>,
    /// Healthy/Degraded → Quarantined transitions over the run.
    pub quarantines: u64,
    /// Quarantined → Probation re-admissions over the run.
    pub probations: u64,
    /// Probation → Healthy recoveries over the run.
    pub recoveries: u64,
    /// Bytes of per-ion partial state resident on devices at shutdown
    /// (see [`crate::resident::ResidentSpectrum`]).
    pub resident_bytes: u64,
    /// Peak bytes of resident partial state over the engine's life.
    pub resident_bytes_peak: u64,
    /// Delta recalculations served from resident state.
    pub resident_delta_recalcs: u64,
    /// Full recomputations (cold computes and invalidation recoveries).
    pub resident_full_recomputes: u64,
    /// Ions whose resident partials were reused verbatim across all
    /// delta recalcs.
    pub resident_reused_ions: u64,
    /// Ions re-integrated across all delta recalcs (the summed
    /// affected-set sizes).
    pub resident_recomputed_ions: u64,
    /// Largest single affected-ion set any delta recalc re-integrated.
    pub resident_affected_max: u64,
    /// Resident-state invalidations (device loss detected before
    /// reuse), each followed by a full recompute.
    pub resident_invalidations: u64,
    /// Ion partials pushed into this engine's tier from outside its own
    /// compute path — hot-state replication and migration cache handoff
    /// (see [`Engine::note_warm_insert`]). These ions were *never
    /// computed here*; accounting them separately keeps exactly-once
    /// audits honest (`computed + handed-off + cached == total`).
    pub warmed_ions: u64,
}

/// The resident engine handle. Submit [`IonJob`]s from any number of
/// threads; call [`Engine::shutdown`] (or drop) to drain and join.
pub struct Engine {
    config: EngineConfig,
    queue: BoundedQueue<IonJob>,
    staged: StealQueues<StagedTask>,
    scheduler: Scheduler,
    devices: Arc<Vec<SimGpu>>,
    workers: Vec<std::thread::JoinHandle<WorkerStats>>,
    pumps: Vec<std::thread::JoinHandle<()>>,
    fault_stats: Arc<FaultStats>,
    resident: Arc<crate::resident::ResidentCounters>,
    adaptive: Arc<Adaptive>,
    tuner_thread: Option<std::thread::JoinHandle<()>>,
    warm_inserts: AtomicU64,
}

impl Engine {
    /// Bring the engine up: devices, scheduler, staging lanes, worker
    /// threads, and one pump thread per device.
    #[must_use]
    pub fn start(config: EngineConfig) -> Engine {
        let devices: Arc<Vec<SimGpu>> = Arc::new(
            (0..config.gpus)
                .map(|d| {
                    SimGpu::with_faults(
                        gpu_sim::DeviceProps::tesla_c2075(),
                        config.resilience.plan_for(d),
                    )
                })
                .collect(),
        );
        let scheduler = Scheduler::with_health(
            config.gpus,
            config.max_queue_len,
            config.policy,
            config.resilience.health,
        );
        let fault_stats = Arc::new(FaultStats::default());
        let queue: BoundedQueue<IonJob> = BoundedQueue::new(config.queue_depth.max(1));
        let staged: StealQueues<StagedTask> = StealQueues::new(config.gpus);
        // The live knob block seeds from the frozen configuration; with
        // tuning disabled nothing ever writes it, so the hot paths read
        // exactly the configured values.
        let knobs = Arc::new(TunerKnobs::new(
            config.pack_threshold,
            config.async_window as u64,
            0,
            0,
            config.workers.max(1) as u64,
        ));
        let tuner = config.tuning.enabled.then(|| {
            let tuner = Arc::new(OnlineTuner::new(Arc::clone(&knobs), config.tuning.patience));
            tuner.add_dim(TunerDim {
                knob: Knob::PackThreshold,
                min: 0,
                max: 4096,
                step: config.tuning.step.max(1),
            });
            tuner.add_dim(TunerDim {
                knob: Knob::AsyncWindow,
                min: 1,
                max: config.queue_depth.max(4) as u64,
                step: 1,
            });
            tuner.add_dim(TunerDim {
                knob: Knob::ActiveRanks,
                min: 1,
                max: config.workers.max(1) as u64,
                step: 1,
            });
            tuner
        });
        let adaptive = Arc::new(Adaptive {
            knobs,
            cost: Arc::new(CostModel::new()),
            tuner,
            completed: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            signal: Mutex::new(None),
        });
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let queue = queue.clone();
                let scheduler = scheduler.clone();
                let staged = staged.clone();
                let config = config.clone();
                let adaptive = Arc::clone(&adaptive);
                std::thread::Builder::new()
                    .name(format!("engine-worker-{w}"))
                    .spawn(move || worker_loop(w, &config, &queue, &scheduler, &staged, &adaptive))
                    .expect("spawn engine worker")
            })
            .collect();
        let pumps = (0..config.gpus)
            .map(|d| {
                let scheduler = scheduler.clone();
                let staged = staged.clone();
                let devices = Arc::clone(&devices);
                let config = config.clone();
                let fault_stats = Arc::clone(&fault_stats);
                let adaptive = Arc::clone(&adaptive);
                std::thread::Builder::new()
                    .name(format!("engine-pump-{d}"))
                    .spawn(move || {
                        pump_loop(
                            d,
                            &config,
                            &scheduler,
                            &staged,
                            &devices,
                            &fault_stats,
                            &adaptive,
                        )
                    })
                    .expect("spawn engine pump")
            })
            .collect();
        let tuner_thread = adaptive.tuner.is_some().then(|| {
            let adaptive = Arc::clone(&adaptive);
            let devices = Arc::clone(&devices);
            let epoch_tasks = config.tuning.epoch_tasks.max(1);
            std::thread::Builder::new()
                .name("engine-tuner".into())
                .spawn(move || tuner_loop(&adaptive, &devices, epoch_tasks))
                .expect("spawn engine tuner")
        });
        Engine {
            config,
            queue,
            staged,
            scheduler,
            devices,
            workers,
            pumps,
            fault_stats,
            resident: Arc::new(crate::resident::ResidentCounters::default()),
            adaptive,
            tuner_thread,
            warm_inserts: AtomicU64::new(0),
        }
    }

    /// Record `n` ion partials warmed into this engine's tier from
    /// outside its own compute path (hot-state replication, migration
    /// cache handoff). The engine never computes these; the hook exists
    /// so [`EngineReport::warmed_ions`] can attribute warmed work in
    /// the same report that attributes computed work.
    pub fn note_warm_insert(&self, n: u64) {
        self.warm_inserts.fetch_add(n, Ordering::Relaxed);
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Blocking submit: waits for a free queue slot.
    ///
    /// # Errors
    /// Returns the job back if the engine is shutting down.
    // The Err variant is the job itself so callers keep ownership on
    // shutdown; boxing it would push an allocation onto every submit.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, job: IonJob) -> Result<(), IonJob> {
        self.queue.push(job)
    }

    /// Non-blocking submit — the admission-control edge: a `Full`
    /// refusal hands the job back so the caller can shed it or run it
    /// inline.
    ///
    /// # Errors
    /// [`TryPushError::Full`] at capacity, [`TryPushError::Closed`]
    /// during shutdown; the job rides back inside the error.
    #[allow(clippy::result_large_err)] // the error carrying the job back IS the contract
    pub fn try_submit(&self, job: IonJob) -> Result<(), TryPushError<IonJob>> {
        self.queue.try_push(job)
    }

    /// Execute one ion task synchronously on the **caller's** thread —
    /// the paper's QAGS fallback lifted to the service tier (caller-runs
    /// overload policy). Uses the same CPU path as rejected tasks, so
    /// under a bin-rule integrator the result is bitwise identical to
    /// the queued paths.
    #[must_use]
    pub fn compute_inline(
        &self,
        ion_index: usize,
        level_range: Range<usize>,
        point: &GridPoint,
        grid: &EnergyGrid,
    ) -> IonOutcome {
        thread_local! {
            static POOL: std::cell::RefCell<WorkspacePool> =
                std::cell::RefCell::new(WorkspacePool::new());
        }
        let mut partial = vec![0.0f64; grid.bins()];
        let evals = POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            let mut ws = pool.acquire();
            let evals = emissivity_into_mode(
                &self.config.db,
                ion_index,
                level_range.clone(),
                point,
                grid,
                self.config.cpu_integrator,
                &mut ws,
                &mut partial,
                self.config.math,
            );
            pool.release(ws);
            evals
        });
        IonOutcome {
            ion_index,
            level_start: level_range.start,
            tag: 0,
            partial,
            path: ExecPath::CallerCpu,
            evals,
        }
    }

    /// Current occupancy of the ion-task queue.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Capacity of the ion-task queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.capacity()
    }

    /// Number of simulated devices.
    #[must_use]
    pub fn gpus(&self) -> usize {
        self.config.gpus
    }

    /// The simulated devices, for the resident-state layer's memory
    /// accounting and fold charging.
    pub(crate) fn devices(&self) -> &[SimGpu] {
        &self.devices
    }

    /// Whether device `device` has been (stickily) lost. Out-of-range
    /// indices read as not lost.
    #[must_use]
    pub fn device_lost(&self, device: usize) -> bool {
        self.devices
            .get(device)
            .is_some_and(|g| g.faults().is_lost())
    }

    /// The fault injector of device `device` — the chaos hook tests and
    /// benches use to force deterministic device loss
    /// ([`gpu_sim::FaultInjector::force_lose`]).
    #[must_use]
    pub fn device_faults(&self, device: usize) -> Option<&gpu_sim::FaultInjector> {
        self.devices.get(device).map(SimGpu::faults)
    }

    /// The shared resident-state counters (reported at shutdown).
    pub(crate) fn resident_counters(&self) -> &Arc<crate::resident::ResidentCounters> {
        &self.resident
    }

    /// Scheduler load/history/steal read for the metrics layer, with
    /// the engine-held adaptive state overlaid: measured-vs-static cost
    /// residual, observation count, and (when a resident controller is
    /// attached) the live tuner snapshot.
    #[must_use]
    pub fn scheduler_snapshot(&self) -> SchedulerSnapshot {
        let mut snap = self.scheduler.snapshot();
        snap.cost_residual_milli = self.adaptive.cost.residual_milli();
        snap.cost_observations = self.adaptive.cost.observations();
        snap.tuner = self.adaptive.tuner.as_ref().map(|t| t.snapshot());
        snap
    }

    /// The live autotuning knob block (reads the frozen configured
    /// values when tuning is disabled).
    #[must_use]
    pub fn tuner_knobs(&self) -> &Arc<TunerKnobs> {
        &self.adaptive.knobs
    }

    /// The resident controller, when `tuning.enabled` — the service
    /// tier registers its own dimensions (batch size, quantizer drop
    /// bits) here.
    #[must_use]
    pub fn tuner(&self) -> Option<&Arc<OnlineTuner>> {
        self.adaptive.tuner.as_ref()
    }

    /// The online measured-cost blend placement consults.
    #[must_use]
    pub fn cost_model(&self) -> &Arc<CostModel> {
        &self.adaptive.cost
    }

    /// Optimistic wall-seconds estimate for one ion task: the blended
    /// cost units of the task's class rescaled by the **fastest**
    /// device's observed seconds-per-unit EWMA. Optimistic on purpose —
    /// SLO admission uses this to shed only requests that are
    /// infeasible even under the best placement, so admission can
    /// never refuse work the engine might still have finished in time.
    #[must_use]
    pub fn estimate_task_seconds(
        &self,
        ion_index: usize,
        level_range: Range<usize>,
        point: &GridPoint,
        bins: &Arc<Vec<(f64, f64)>>,
    ) -> f64 {
        let static_cost =
            ion_task_cost(&self.config.db, ion_index, level_range.clone(), point, bins);
        let key = CostKey::bucketed(
            self.config.db.ions()[ion_index].z,
            level_range.len(),
            bins.len(),
        );
        let units = self.adaptive.cost.blended(&key, static_cost);
        // Until a first settle there is no absolute time scale: the
        // estimate is 0 (admit everything) rather than pricing work
        // off the placement prior.
        let rate = self.scheduler.min_observed_secs_per_unit().unwrap_or(0.0);
        units as f64 * rate
    }

    /// Install an external decision-epoch signal (lower = better): the
    /// service tier points this at its live latency metrics so the
    /// controller optimizes end-to-end behaviour instead of the
    /// engine-internal modeled-seconds-per-task fallback. Returning
    /// `None` from the reader falls back to the internal signal for
    /// that epoch.
    pub fn set_tuner_signal(&self, reader: impl Fn() -> Option<f64> + Send + 'static) {
        *self
            .adaptive
            .signal
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(Box::new(reader));
    }

    /// The device-health ladder's current view — the routing tier's
    /// demotion signal (a shard whose devices are all quarantined is
    /// demoted in the ring and traffic prefers its replicas).
    #[must_use]
    pub fn health_snapshot(&self) -> hybrid_sched::HealthSnapshot {
        self.scheduler.health().snapshot()
    }

    /// Graceful shutdown: refuse new work, drain queued jobs, settle
    /// every in-flight device task (freeing its grant), join workers
    /// and pumps, and report.
    #[must_use]
    pub fn shutdown(mut self) -> EngineReport {
        self.drain_and_join()
    }

    fn drain_and_join(&mut self) -> EngineReport {
        // Order matters: close the job queue and join workers first, so
        // no new tasks can be staged; then close the staging lanes and
        // join pumps (they drain every remaining staged task, stealing
        // across lanes if needed). A panicked thread is counted, not
        // propagated — shutdown must complete even mid-fault.
        self.queue.close();
        let mut totals = WorkerStats::default();
        let mut worker_panics = 0u64;
        for handle in self.workers.drain(..) {
            match handle.join() {
                Ok(stats) => {
                    totals.cpu_tasks += stats.cpu_tasks;
                    totals.workspaces_created += stats.workspaces_created;
                    totals.workspace_acquisitions += stats.workspace_acquisitions;
                }
                Err(_) => worker_panics += 1,
            }
        }
        self.staged.close();
        for handle in self.pumps.drain(..) {
            if handle.join().is_err() {
                worker_panics += 1;
            }
        }
        self.adaptive.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.tuner_thread.take() {
            if handle.join().is_err() {
                worker_panics += 1;
            }
        }
        let snap = self.scheduler.snapshot();
        let fs = &self.fault_stats;
        EngineReport {
            gpu_tasks: fs.gpu_completions.load(Ordering::Relaxed),
            cpu_tasks: totals.cpu_tasks + fs.cpu_fallbacks.load(Ordering::Relaxed),
            device_history: snap.histories,
            device_virtual_seconds: self
                .devices
                .iter()
                .map(SimGpu::virtual_busy_seconds)
                .collect(),
            device_peak_memory: self.devices.iter().map(SimGpu::memory_peak).collect(),
            steals: snap.steals,
            cpu_steals: snap.cpu_steals,
            workspaces_created: totals.workspaces_created,
            workspace_acquisitions: totals.workspace_acquisitions,
            leaked_grants: self.scheduler.in_flight(),
            task_faults: fs.task_faults.load(Ordering::Relaxed),
            task_retries: fs.task_retries.load(Ordering::Relaxed),
            task_timeouts: fs.task_timeouts.load(Ordering::Relaxed),
            fault_cpu_fallbacks: fs.cpu_fallbacks.load(Ordering::Relaxed),
            max_task_attempts: fs.max_attempts.load(Ordering::Relaxed),
            worker_panics,
            device_panics: self.devices.iter().map(SimGpu::tasks_panicked).collect(),
            device_faults: self.devices.iter().map(|g| g.faults().counters()).collect(),
            device_health: snap.health,
            quarantines: snap.quarantines,
            probations: snap.probations,
            recoveries: snap.recoveries,
            resident_bytes: self.resident.bytes(),
            resident_bytes_peak: self.resident.bytes_peak(),
            resident_delta_recalcs: self.resident.delta_recalcs(),
            resident_full_recomputes: self.resident.full_recomputes(),
            resident_reused_ions: self.resident.reused_ions(),
            resident_recomputed_ions: self.resident.recomputed_ions(),
            resident_affected_max: self.resident.affected_max(),
            resident_invalidations: self.resident.invalidations(),
            warmed_ions: self.warm_inserts.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Engine {
    /// Dropping without [`Engine::shutdown`] still drains and joins —
    /// a resident process must never strand device tasks or grants.
    fn drop(&mut self) {
        if !self.workers.is_empty() || !self.pumps.is_empty() {
            let _ = self.drain_and_join();
        }
    }
}

/// Run one job on the calling worker's CPU and deliver its outcome.
fn run_cpu_task(config: &EngineConfig, pool: &mut WorkspacePool, job: IonJob) {
    let mut partial = vec![0.0f64; job.grid.bins()];
    let mut ws = pool.acquire();
    let evals = emissivity_into_mode(
        &config.db,
        job.ion_index,
        job.level_range.clone(),
        &job.point,
        &job.grid,
        config.cpu_integrator,
        &mut ws,
        &mut partial,
        config.math,
    );
    pool.release(ws);
    let _ = job.reply.send(IonOutcome {
        ion_index: job.ion_index,
        level_start: job.level_range.start,
        tag: job.tag,
        partial,
        path: ExecPath::WorkerCpu,
        evals,
    });
}

/// [`run_cpu_task`] callable from any engine thread — pump loops and
/// DMA settles alike reach it when the recovery ladder falls through
/// to the host path; each thread keeps its own workspace pool.
fn fallback_cpu_task(config: &EngineConfig, job: IonJob) {
    thread_local! {
        static POOL: std::cell::RefCell<WorkspacePool> =
            std::cell::RefCell::new(WorkspacePool::new());
    }
    POOL.with(|pool| run_cpu_task(config, &mut pool.borrow_mut(), job));
}

/// Record one device failure in the health ladder: sticky loss
/// quarantines permanently, anything transient feeds the
/// consecutive-failure and error-rate thresholds.
fn note_device_failure(scheduler: &Scheduler, d: usize, fault: DeviceFault) {
    if fault == DeviceFault::Lost {
        scheduler.health().mark_lost(d);
    } else {
        scheduler.health().record_failure(d);
    }
}

/// The recovery ladder for one failed device task: bounded exponential
/// backoff, then reassignment to another placement-eligible device
/// (exact grant accounting via [`Scheduler::reassign`]), then a
/// same-device re-stage if this device may still receive work, then
/// [`Scheduler::release_to_cpu`] and the host QAGS path. Runs on pump
/// threads (launch refusals) and DMA settles (kernel/DMA/deadline
/// failures) alike.
fn recover_or_fallback(
    mut task: StagedTask,
    from: usize,
    config: &EngineConfig,
    scheduler: &Scheduler,
    staged: &StealQueues<StagedTask>,
    fault_stats: &FaultStats,
) {
    let res = &config.resilience;
    let failures = task.attempts + 1; // the attempt that just failed
    fault_stats.note_attempts(failures);
    FaultStats::bump(&fault_stats.task_faults);
    if failures <= res.max_retries {
        std::thread::sleep(res.backoff_for(failures));
        task.attempts = failures;
        // Prefer moving the grant to a *different* eligible device —
        // retrying in place is pointless against a sticky loss and
        // counter-productive against a sick device.
        for t in (0..scheduler.devices())
            .filter(|&t| t != from && scheduler.device_eligible(DeviceId(t)))
        {
            match scheduler.reassign(task.grant, DeviceId(t)) {
                Ok(grant) => {
                    task.grant = grant;
                    FaultStats::bump(&fault_stats.task_retries);
                    let deadline = task.job.deadline;
                    staged.stage_deadline(t, grant.cost, deadline, task);
                    return;
                }
                Err(grant) => task.grant = grant,
            }
        }
        if scheduler.device_eligible(DeviceId(from)) {
            FaultStats::bump(&fault_stats.task_retries);
            let deadline = task.job.deadline;
            staged.stage_deadline(from, task.grant.cost, deadline, task);
            return;
        }
    }
    // Ladder exhausted (or no device will take the task): drop the
    // grant from device accounting and run on the host. With the
    // fallback disabled (ladder tests only) the reply sender drops
    // unsent and the caller observes a missing outcome.
    scheduler.release_to_cpu(task.grant);
    if res.cpu_fallback_on_fault {
        FaultStats::bump(&fault_stats.cpu_fallbacks);
        fallback_cpu_task(config, task.job);
    }
}

fn worker_loop(
    w: usize,
    config: &EngineConfig,
    queue: &BoundedQueue<IonJob>,
    scheduler: &Scheduler,
    staged: &StealQueues<StagedTask>,
    adaptive: &Adaptive,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut pool = WorkspacePool::new();
    loop {
        // Elastic capacity: ranks at or above the live `active_ranks`
        // knob park instead of pulling work (rank 0 never parks — the
        // knob floors at 1). A parked rank keeps polling so the
        // controller can unpark it within a knob write, and shutdown
        // unparks everyone to help drain the closed queue.
        while w as u64 >= adaptive.active_ranks() && !queue.is_closed() {
            std::thread::sleep(Duration::from_micros(200));
        }
        let Some(job) = queue.pop() else { break };
        let static_cost = ion_task_cost(
            &config.db,
            job.ion_index,
            job.level_range.clone(),
            &job.point,
            &job.bins,
        );
        let key = CostKey::bucketed(
            config.db.ions()[job.ion_index].z,
            job.level_range.len(),
            job.bins.len(),
        );
        // Placement compares *blended* units: static shape estimate
        // rescaled by the class's measured seconds-per-unit (exactly
        // the static units until the class has been observed).
        let cost = adaptive.cost.blended(&key, static_cost);
        match scheduler.alloc_cost(cost) {
            Some(grant) => {
                let deadline = job.deadline;
                staged.stage_deadline(
                    grant.device.0,
                    cost,
                    deadline,
                    StagedTask {
                        job,
                        grant,
                        attempts: 0,
                        key,
                        static_cost,
                    },
                );
            }
            None => {
                // All device queues full. Before burning this CPU on
                // the incoming task, check whether a *heavier* task is
                // still staged on a device: swapping it onto the CPU
                // and staging the light task in its slot shortens the
                // expected makespan (the slot the swap frees almost
                // always admits the lighter task).
                if let Some((_victim, heavy)) = staged.try_steal_over(cost) {
                    scheduler.release_to_cpu(heavy.item.grant);
                    match scheduler.alloc_cost(cost) {
                        Some(grant) => {
                            let deadline = job.deadline;
                            staged.stage_deadline(
                                grant.device.0,
                                cost,
                                deadline,
                                StagedTask {
                                    job,
                                    grant,
                                    attempts: 0,
                                    key,
                                    static_cost,
                                },
                            );
                        }
                        None => {
                            run_cpu_task(config, &mut pool, job);
                            stats.cpu_tasks += 1;
                            adaptive.completed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    run_cpu_task(config, &mut pool, heavy.item.job);
                    stats.cpu_tasks += 1;
                    adaptive.completed.fetch_add(1, Ordering::Relaxed);
                } else {
                    run_cpu_task(config, &mut pool, job);
                    stats.cpu_tasks += 1;
                    adaptive.completed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    stats.workspaces_created = pool.created();
    stats.workspace_acquisitions = pool.acquired();
    stats
}

/// The resident controller thread: once `epoch_tasks` tasks have
/// completed since the last decision, feed the tuner one epoch signal —
/// the externally-installed reader when the service registered one,
/// else modeled device seconds per completed task — and let it probe,
/// commit, roll back, or stay parked.
fn tuner_loop(adaptive: &Adaptive, devices: &[SimGpu], epoch_tasks: u64) {
    let tuner = adaptive
        .tuner
        .as_ref()
        .expect("tuner thread spawns only with a controller");
    let device_secs =
        |devices: &[SimGpu]| -> f64 { devices.iter().map(SimGpu::virtual_busy_seconds).sum() };
    let mut last_tasks = adaptive.completed.load(Ordering::Relaxed);
    let mut last_secs = device_secs(devices);
    while !adaptive.stop.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_micros(200));
        let tasks = adaptive.completed.load(Ordering::Relaxed);
        let done = tasks.saturating_sub(last_tasks);
        if done < epoch_tasks {
            continue;
        }
        let secs = device_secs(devices);
        let external = adaptive
            .signal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .and_then(|reader| reader());
        let signal = external.unwrap_or((secs - last_secs).max(0.0) / done as f64);
        tuner.observe_epoch(signal);
        last_tasks = tasks;
        last_secs = secs;
    }
}

/// Per-device pump: drain the device's staging lane (stealing when
/// idle), launch kernels through a compute [`Stream`], and settle each
/// task — copy-back accounting, grant free with the observed service
/// time, reply delivery — on the DMA copy stream so it overlaps the
/// next launch.
///
/// Every fault point of the simulated device routes through here: a
/// launch refusal is caught before submission, a kernel panic or
/// injected stall surfaces in the settle's [`TaskHandle::wait_result`]
/// (the device worker catches the unwind), a DMA failure or deadline
/// overrun is detected by the settle itself — and all of them feed
/// [`recover_or_fallback`]. The pump never exits while its own settles
/// are in flight, because a settle may re-stage a retry; in closed
/// mode [`StealQueues::next`] hands leftovers from *any* lane to any
/// surviving pump, so retries staged during shutdown still drain.
fn pump_loop(
    d: usize,
    config: &EngineConfig,
    scheduler: &Scheduler,
    staged: &StealQueues<StagedTask>,
    devices: &Arc<Vec<SimGpu>>,
    fault_stats: &Arc<FaultStats>,
    adaptive: &Arc<Adaptive>,
) {
    let device = &devices[d];
    let compute = Stream::new();
    let copy = Stream::new();
    // Recycled device-side result buffers; settles return them here.
    let bufs: Arc<Mutex<Vec<DevicePtr>>> = Arc::new(Mutex::new(Vec::new()));
    let mut inflight: VecDeque<TaskHandle<()>> = VecDeque::new();

    loop {
        // Both pipelining knobs are read fresh each iteration from the
        // live block (they equal the frozen config when tuning is off).
        // Double-buffer at minimum: one task settling on the copy
        // engines while the next one launches on the compute queue.
        let depth = (adaptive.knobs.async_window() as usize).max(2);
        let pack_threshold = adaptive.knobs.pack_threshold();
        // Steal only with room to hold the reassigned grant — and only
        // while this device may receive work at all (a quarantined or
        // lost device must not pull tasks toward itself); `next` itself
        // only steals once this lane is empty (device idle).
        let can_steal = scheduler.load(DeviceId(d)) < config.max_queue_len
            && scheduler.device_eligible(DeviceId(d));
        let (first, was_local) = match staged.next(d, can_steal) {
            Next::Local(t) => (t.item, true),
            Next::Stolen { victim, task } => match scheduler.reassign(task.item.grant, DeviceId(d))
            {
                Ok(grant) => (
                    StagedTask {
                        job: task.item.job,
                        grant,
                        attempts: task.item.attempts,
                        key: task.item.key,
                        static_cost: task.item.static_cost,
                    },
                    false,
                ),
                Err(_) => {
                    // Raced to the bound: hand the task back, settle
                    // one in-flight task (guaranteed progress, no
                    // spin), and look again.
                    staged.stage(victim, task.cost, task.item);
                    if let Some(h) = inflight.pop_front() {
                        let _ = h.wait_result();
                    }
                    continue;
                }
            },
            Next::Closed => {
                // A settle may still re-stage a retry: wait one out and
                // look again; exit only with nothing left in flight.
                if let Some(h) = inflight.pop_front() {
                    let _ = h.wait_result();
                    continue;
                }
                break;
            }
        };

        // Fault point 1 — kernel launch refusal (or sticky loss),
        // caught before anything is submitted.
        if let Err(fault) = device.faults().check_launch() {
            note_device_failure(scheduler, d, fault);
            recover_or_fallback(first, d, config, scheduler, staged, fault_stats);
            continue;
        }

        // Launch aggregation: a small *local* head task greedily packs
        // further small local tasks over the same bin table into one
        // launch (one kernel submission, one D2H copy, one cost-model
        // charge). Stolen heads never pack — their grant just moved and
        // the victim's lane, not ours, holds the related backlog.
        let mut pack: Vec<StagedTask> = vec![first];
        if was_local && pack_threshold > 0 && pack[0].grant.cost < pack_threshold {
            while pack.len() < config.pack_max.max(2) {
                let Some(t) = staged.try_next_local_under(d, pack_threshold) else {
                    break;
                };
                if Arc::ptr_eq(&t.item.job.bins, &pack[0].job.bins) {
                    pack.push(t.item);
                } else {
                    // Different bin table: re-stage it (its grant is
                    // untouched) and stop packing.
                    staged.stage(d, t.cost, t.item);
                    break;
                }
            }
        }
        if pack.len() > 1 {
            inflight.push_back(aggregated_launch(
                d,
                config,
                scheduler,
                devices,
                device,
                &compute,
                &copy,
                pack,
                staged,
                fault_stats,
                adaptive,
            ));
            while inflight.len() >= depth {
                let _ = inflight
                    .pop_front()
                    .expect("inflight nonempty by loop guard")
                    .wait_result();
            }
            continue;
        }
        let task = pack.pop().expect("pack holds the head task");
        let (job, grant, attempts) = (task.job, task.grant, task.attempts);
        let (key, static_cost) = (task.key, task.static_cost);

        let ptr = {
            let mut pool = bufs.lock().expect("buffer pool poisoned");
            pool.pop()
                .or_else(|| device.malloc(8 * job.bins.len() as u64).ok())
        };
        let bytes_in = 64 + 16 * (job.level_range.end - job.level_range.start) as u64;

        // Launch the kernel in the compute stream. Fault point 2 rides
        // inside the closure: `fire_kernel` injects panics (caught by
        // the device worker — the settle sees `TaskError::Lost`) and
        // transient stalls (the settle's deadline watchdog sees those).
        let kernel = kernel_task(
            &config.db,
            job.ion_index,
            job.level_range.clone(),
            job.point,
            &job.bins,
            config.gpu_rule,
            config.gpu_precision,
            config.fused,
            config.deterministic_kernel,
            config.math,
        );
        let injector = device.faults().clone();
        // Virtual-clock read at submission: the settle's measured
        // record reports how long the task sat behind earlier charges.
        let submitted_virtual_s = device.virtual_busy_seconds();
        let handle = compute.submit(device, move || {
            injector.fire_kernel();
            kernel()
        });
        let launched_at = Instant::now();
        let ev = compute.record_event(device);

        // Settle on the copy stream's DMA lane: gated on the kernel's
        // event, overlapping the next iteration's launch.
        copy.wait_event_dma(device, ev);
        let settle = {
            let devices = Arc::clone(devices);
            let scheduler = scheduler.clone();
            let staged = staged.clone();
            let config = config.clone();
            let fault_stats = Arc::clone(fault_stats);
            let bufs = Arc::clone(&bufs);
            let adaptive = Arc::clone(adaptive);
            move || {
                let result = handle.wait_result();
                let device = &devices[d];
                let bytes_out = ptr.map_or(0, |b| b.bytes);
                if let Some(buf) = ptr {
                    bufs.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(buf);
                }
                // Watchdog: the deadline is measured from launch and
                // enforced here — injected stalls are finite, so the
                // settle always runs; a late result is discarded and
                // the task retried. Fault point 3 is the copy-back.
                let timed_out = config
                    .resilience
                    .task_deadline
                    .is_some_and(|dl| launched_at.elapsed() > dl);
                let dma_fault = if result.is_ok() && !timed_out {
                    device.faults().check_dma().err()
                } else {
                    None
                };
                match result {
                    Ok((partial, evals)) if !timed_out && dma_fault.is_none() => {
                        scheduler.health().record_success(d);
                        FaultStats::bump(&fault_stats.gpu_completions);
                        let measured = device.charge_task_measured(
                            evals,
                            bytes_in,
                            bytes_out,
                            submitted_virtual_s,
                        );
                        // The in-situ measurement feeds both calibration
                        // loops: the per-class blend placement consults
                        // and the per-device seconds-per-unit EWMA.
                        adaptive
                            .cost
                            .observe(&key, static_cost, measured.device_s());
                        scheduler.free_observed(grant, measured.device_s());
                        adaptive.completed.fetch_add(1, Ordering::Relaxed);
                        let _ = job.reply.send(IonOutcome {
                            ion_index: job.ion_index,
                            level_start: job.level_range.start,
                            tag: job.tag,
                            partial,
                            path: ExecPath::Gpu(d),
                            evals,
                        });
                    }
                    result => {
                        if result.is_err() {
                            // Kernel panic — or the whole device went.
                            let fault = if device.faults().is_lost() {
                                DeviceFault::Lost
                            } else {
                                DeviceFault::LaunchFailed
                            };
                            note_device_failure(&scheduler, d, fault);
                        } else if timed_out {
                            FaultStats::bump(&fault_stats.task_timeouts);
                            scheduler.health().record_failure(d);
                        } else if let Some(fault) = dma_fault {
                            note_device_failure(&scheduler, d, fault);
                        }
                        recover_or_fallback(
                            StagedTask {
                                job,
                                grant,
                                attempts,
                                key,
                                static_cost,
                            },
                            d,
                            &config,
                            &scheduler,
                            &staged,
                            &fault_stats,
                        );
                    }
                }
            }
        };
        inflight.push_back(copy.submit_dma(device, settle));
        while inflight.len() >= depth {
            let _ = inflight
                .pop_front()
                .expect("inflight nonempty by loop guard")
                .wait_result();
        }
    }
    // Drain every outstanding settle (frees every grant).
    while let Some(h) = inflight.pop_front() {
        let _ = h.wait_result();
    }
    // Return pooled device buffers to the arena.
    for ptr in bufs
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .drain(..)
    {
        device.free(ptr);
    }
}

/// Submit one aggregated launch for `pack` (≥ 2 small tasks): every
/// packed ion's kernel runs sequentially inside **one** compute-stream
/// submission writing its own region of one fresh device buffer, one
/// event gates **one** DMA settle, and the settle makes **one**
/// cost-model charge for the whole pack — amortizing the per-launch
/// and per-transfer overheads that dominate tiny-ion workloads. The
/// per-ion operation sequence is exactly the single-task path's, so
/// Exact-mode partials are bitwise identical with aggregation on or
/// off; the observed service time is apportioned to each grant by its
/// cost fraction so the scheduler's seconds-per-unit EWMA stays
/// calibrated.
#[allow(clippy::too_many_arguments)]
fn aggregated_launch(
    d: usize,
    config: &EngineConfig,
    scheduler: &Scheduler,
    devices: &Arc<Vec<SimGpu>>,
    device: &SimGpu,
    compute: &Stream,
    copy: &Stream,
    pack: Vec<StagedTask>,
    staged: &StealQueues<StagedTask>,
    fault_stats: &Arc<FaultStats>,
    adaptive: &Arc<Adaptive>,
) -> TaskHandle<()> {
    // Pooled single-task buffers are sized for one ion's bins; a pack
    // allocates (and frees, in its settle) one buffer spanning every
    // packed ion's output slice.
    let nbins = pack[0].job.bins.len();
    let ptr = device.malloc(8 * (nbins * pack.len()) as u64).ok();
    let total_cost: u64 = pack.iter().map(|t| t.grant.cost.max(1)).sum();
    let bytes_in: u64 = pack
        .iter()
        .map(|t| 64 + 16 * (t.job.level_range.end - t.job.level_range.start) as u64)
        .sum();

    let mut tasks = Vec::with_capacity(pack.len());
    for member in &pack {
        let job = &member.job;
        tasks.push(kernel_task(
            &config.db,
            job.ion_index,
            job.level_range.clone(),
            job.point,
            &job.bins,
            config.gpu_rule,
            config.gpu_precision,
            config.fused,
            config.deterministic_kernel,
            config.math,
        ));
    }
    // Each packed ion gets its own kernel fault decision, and its own
    // unwind boundary: one injected panic fails that member alone, not
    // the whole pack.
    let injector = device.faults().clone();
    let submitted_virtual_s = device.virtual_busy_seconds();
    let handle = compute.submit(device, move || {
        tasks
            .into_iter()
            .map(|t| {
                catch_unwind(AssertUnwindSafe(|| {
                    injector.fire_kernel();
                    t()
                }))
                .ok()
            })
            .collect::<Vec<Option<(Vec<f64>, u64)>>>()
    });
    let launched_at = Instant::now();
    let ev = compute.record_event(device);
    copy.wait_event_dma(device, ev);
    let settle = {
        let devices = Arc::clone(devices);
        let scheduler = scheduler.clone();
        let staged = staged.clone();
        let config = config.clone();
        let fault_stats = Arc::clone(fault_stats);
        let adaptive = Arc::clone(adaptive);
        move || {
            // The whole submission only errors if the device worker
            // itself died; per-member panics were caught inside.
            let results = handle.wait_result().unwrap_or_default();
            let device = &devices[d];
            let bytes_out = ptr.map_or(0, |b| b.bytes);
            let timed_out = config
                .resilience
                .task_deadline
                .is_some_and(|dl| launched_at.elapsed() > dl);
            // One physical copy-back for the whole pack: a DMA fault
            // (or deadline overrun) fails every member.
            let dma_fault = if timed_out {
                None
            } else {
                device.faults().check_dma().err()
            };
            if timed_out {
                FaultStats::bump(&fault_stats.task_timeouts);
                scheduler.health().record_failure(d);
            } else if let Some(fault) = dma_fault {
                note_device_failure(&scheduler, d, fault);
            }
            let evals_total: u64 = results
                .iter()
                .map(|r| r.as_ref().map_or(0, |(_, evals)| *evals))
                .sum();
            // ONE launch + ONE transfer for the whole pack — the
            // amortization aggregation buys.
            let measured =
                device.charge_task_measured(evals_total, bytes_in, bytes_out, submitted_virtual_s);
            let service_s = measured.device_s();
            if let Some(buf) = ptr {
                device.free(buf);
            }
            let mut results = results.into_iter();
            for member in pack {
                let outcome = results.next().flatten();
                match outcome {
                    Some((partial, evals)) if !timed_out && dma_fault.is_none() => {
                        scheduler.health().record_success(d);
                        FaultStats::bump(&fault_stats.gpu_completions);
                        let share = service_s * member.grant.cost.max(1) as f64 / total_cost as f64;
                        // Each packed member observes its cost-fraction
                        // share of the measured pack time, so packed
                        // classes learn the *amortized* per-unit rate.
                        adaptive
                            .cost
                            .observe(&member.key, member.static_cost, share);
                        scheduler.free_observed(member.grant, share);
                        adaptive.completed.fetch_add(1, Ordering::Relaxed);
                        let _ = member.job.reply.send(IonOutcome {
                            ion_index: member.job.ion_index,
                            level_start: member.job.level_range.start,
                            tag: member.job.tag,
                            partial,
                            path: ExecPath::Gpu(d),
                            evals,
                        });
                    }
                    outcome => {
                        if outcome.is_none() && !timed_out && dma_fault.is_none() {
                            // This member's kernel panicked (the pack's
                            // other fault classes were noted above).
                            let fault = if device.faults().is_lost() {
                                DeviceFault::Lost
                            } else {
                                DeviceFault::LaunchFailed
                            };
                            note_device_failure(&scheduler, d, fault);
                        }
                        recover_or_fallback(member, d, &config, &scheduler, &staged, &fault_stats);
                    }
                }
            }
        }
    };
    copy.submit_dma(device, settle)
}

/// Build the closure that executes one ion task's kernel on a device
/// worker: integrand construction, windowing, launch-geometry choice,
/// and the fused (or seed per-bin) kernel execution. `single_chunk`
/// selects the deterministic single-chunk launch (see the module
/// docs); otherwise the covering geometry is used.
#[allow(clippy::too_many_arguments)]
fn kernel_task(
    db: &Arc<AtomDatabase>,
    ion_index: usize,
    level_range: Range<usize>,
    point: GridPoint,
    bin_pairs: &Arc<Vec<(f64, f64)>>,
    rule: DeviceRule,
    precision: Precision,
    fused: bool,
    single_chunk: bool,
    math: MathMode,
) -> impl FnOnce() -> (Vec<f64>, u64) + Send + 'static {
    let db = Arc::clone(db);
    let bin_pairs = Arc::clone(bin_pairs);
    move || {
        let mut emi = vec![0.0f64; bin_pairs.len()];
        let Some(integrands) = ion_integrands(&db, ion_index, level_range, &point) else {
            return (emi, 0);
        };
        let kt = point.kt_ev();
        let windows: Vec<(f64, f64)> = integrands
            .iter()
            .map(|f| level_window(f.binding_ev, kt))
            .collect();
        let cfg = if single_chunk {
            LaunchConfig::new(1, 1)
        } else {
            LaunchConfig::cover(bin_pairs.len())
        };
        let evals = if fused {
            // Hot path: prepared 24-byte integrands, fused bin runs,
            // batched sampling per bin grid — exponential recurrence in
            // Exact mode, whole-grid `vexp` in Vector mode.
            let prepared: Vec<PreparedIntegrand> = integrands
                .iter()
                .map(rrc_spectral::RrcIntegrand::prepare)
                .collect();
            match math {
                MathMode::Exact => {
                    let kernel = FusedBinKernel {
                        integrands: &prepared,
                        bins: &bin_pairs,
                        precision,
                        windows: Some(&windows),
                        rule,
                        math,
                    };
                    kernel.execute(cfg, &mut emi)
                }
                MathMode::Vector => {
                    let vectored: Vec<VectorPrepared> =
                        prepared.into_iter().map(VectorPrepared).collect();
                    let kernel = FusedBinKernel {
                        integrands: &vectored,
                        bins: &bin_pairs,
                        precision,
                        windows: Some(&windows),
                        rule,
                        math,
                    };
                    kernel.execute(cfg, &mut emi)
                }
            }
        } else {
            // Seed path, kept for A/B comparison.
            let closures: Vec<_> = integrands
                .iter()
                .map(|f| {
                    let f = *f;
                    move |e: f64| f.evaluate(e)
                })
                .collect();
            let kernel = BinIntegrationKernel {
                integrands: &closures,
                bins: &bin_pairs,
                precision,
                windows: Some(&windows),
                rule,
            };
            kernel.execute(cfg, &mut emi)
        };
        (emi, evals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_spectral::{EnergyGrid, SerialCalculator};
    use std::sync::mpsc::channel;

    fn small_config(gpus: usize) -> EngineConfig {
        let db = AtomDatabase::generate(atomdb::DatabaseConfig {
            max_z: 6,
            ..atomdb::DatabaseConfig::default()
        });
        EngineConfig {
            db: Arc::new(db),
            workers: 3,
            gpus,
            max_queue_len: 4,
            policy: SchedPolicy::CostAware,
            gpu_rule: DeviceRule::Simpson { panels: 64 },
            gpu_precision: Precision::Double,
            cpu_integrator: Integrator::Simpson { panels: 64 },
            fused: true,
            async_window: 1,
            queue_depth: 8,
            deterministic_kernel: true,
            math: MathMode::Exact,
            pack_threshold: 0,
            pack_max: 8,
            resilience: ResilienceConfig::default(),
            tuning: TuningConfig::default(),
        }
    }

    fn point() -> GridPoint {
        GridPoint {
            temperature_k: 1.0e7,
            density_cm3: 1.0,
            time_s: 0.0,
            index: 0,
        }
    }

    #[test]
    fn resident_engine_serves_repeated_submissions() {
        let engine = Engine::start(small_config(2));
        let grid = EnergyGrid::linear(50.0, 2000.0, 48);
        let bins = Arc::new(grid.bin_pairs());
        let ions = engine.config().db.ions().len();
        // Three successive waves through the same engine — resident
        // reuse, not run-to-completion.
        for wave in 0..3u64 {
            let (tx, rx) = channel();
            for ion_index in 0..ions {
                let levels = engine.config().db.levels_by_index(ion_index).len();
                engine
                    .submit(IonJob {
                        ion_index,
                        level_range: 0..levels,
                        point: point(),
                        grid: grid.clone(),
                        bins: Arc::clone(&bins),
                        tag: wave,
                        deadline: f64::INFINITY,
                        reply: tx.clone(),
                    })
                    .ok()
                    .expect("engine accepts while live");
            }
            drop(tx);
            let outcomes: Vec<IonOutcome> = rx.iter().collect();
            assert_eq!(outcomes.len(), ions);
            assert!(outcomes.iter().all(|o| o.tag == wave));
        }
        let report = engine.shutdown();
        assert_eq!(report.gpu_tasks + report.cpu_tasks, 3 * ions as u64);
        assert_eq!(report.leaked_grants, 0);
    }

    #[test]
    fn both_policies_serve_and_leak_nothing() {
        for policy in [SchedPolicy::CostAware, SchedPolicy::PaperCount] {
            let mut cfg = small_config(2);
            cfg.policy = policy;
            let engine = Engine::start(cfg);
            let grid = EnergyGrid::linear(50.0, 2000.0, 32);
            let bins = Arc::new(grid.bin_pairs());
            let ions = engine.config().db.ions().len();
            let (tx, rx) = channel();
            for ion_index in 0..ions {
                let levels = engine.config().db.levels_by_index(ion_index).len();
                engine
                    .submit(IonJob {
                        ion_index,
                        level_range: 0..levels,
                        point: point(),
                        grid: grid.clone(),
                        bins: Arc::clone(&bins),
                        tag: 0,
                        deadline: f64::INFINITY,
                        reply: tx.clone(),
                    })
                    .ok()
                    .unwrap();
            }
            drop(tx);
            let outcomes: Vec<IonOutcome> = rx.iter().collect();
            assert_eq!(outcomes.len(), ions, "{policy:?}");
            let report = engine.shutdown();
            assert_eq!(report.leaked_grants, 0, "{policy:?}");
            assert_eq!(report.gpu_tasks + report.cpu_tasks, ions as u64);
        }
    }

    #[test]
    fn deterministic_kernel_is_placement_invariant_bitwise() {
        // The same ion computed via every path — GPU kernel, worker
        // CPU (0 GPUs), caller inline — must agree bitwise when the
        // single-chunk launch and a shared bin rule are configured.
        let grid = EnergyGrid::linear(50.0, 2000.0, 64);
        let bins = Arc::new(grid.bin_pairs());
        let ions;
        let gpu_partials: Vec<Vec<f64>>;
        {
            let engine = Engine::start(small_config(2));
            ions = engine.config().db.ions().len();
            let (tx, rx) = channel();
            for ion_index in 0..ions {
                let levels = engine.config().db.levels_by_index(ion_index).len();
                engine
                    .submit(IonJob {
                        ion_index,
                        level_range: 0..levels,
                        point: point(),
                        grid: grid.clone(),
                        bins: Arc::clone(&bins),
                        tag: ion_index as u64,
                        deadline: f64::INFINITY,
                        reply: tx.clone(),
                    })
                    .ok()
                    .unwrap();
            }
            drop(tx);
            let mut outcomes: Vec<IonOutcome> = rx.iter().collect();
            outcomes.sort_by_key(|o| o.ion_index);
            assert!(
                outcomes.iter().any(|o| matches!(o.path, ExecPath::Gpu(_))),
                "expected at least one device placement"
            );
            gpu_partials = outcomes.into_iter().map(|o| o.partial).collect();
            let report = engine.shutdown();
            assert_eq!(report.leaked_grants, 0);
        }

        let engine = Engine::start(small_config(0));
        let serial = SerialCalculator::new(
            (*engine.config().db).clone(),
            grid.clone(),
            Integrator::Simpson { panels: 64 },
        );
        for (ion_index, gpu_partial) in gpu_partials.iter().enumerate().take(ions) {
            let levels = engine.config().db.levels_by_index(ion_index).len();
            let inline = engine.compute_inline(ion_index, 0..levels, &point(), &grid);
            assert_eq!(inline.path, ExecPath::CallerCpu);
            let reference = serial.ion_spectrum(ion_index, &point());
            for (bin, ((&a, &b), &r)) in gpu_partial
                .iter()
                .zip(&inline.partial)
                .zip(reference.bins())
                .enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "ion {ion_index} bin {bin}: device vs inline"
                );
                assert_eq!(
                    b.to_bits(),
                    r.to_bits(),
                    "ion {ion_index} bin {bin}: inline vs serial reference"
                );
            }
        }
        let report = engine.shutdown();
        assert_eq!(report.gpu_tasks, 0);
        assert_eq!(report.leaked_grants, 0);
    }

    #[test]
    fn aggregated_launches_are_bitwise_invariant_in_exact_mode() {
        // Property test (tentpole): with the deterministic kernel and a
        // shared bin rule, turning launch aggregation on must leave
        // every ion partial bitwise unchanged — across 0, 1 and 2
        // devices — because packing changes launch/copy *accounting*,
        // never the per-ion operation sequence. The serial calculator
        // anchors the reference.
        let grid = EnergyGrid::linear(50.0, 2000.0, 64);
        let bins = Arc::new(grid.bin_pairs());
        let run = |gpus: usize, pack_threshold: u64| -> Vec<Vec<f64>> {
            let mut cfg = small_config(gpus);
            cfg.pack_threshold = pack_threshold;
            cfg.pack_max = 4;
            let engine = Engine::start(cfg);
            let ions = engine.config().db.ions().len();
            let (tx, rx) = channel();
            for ion_index in 0..ions {
                let levels = engine.config().db.levels_by_index(ion_index).len();
                engine
                    .submit(IonJob {
                        ion_index,
                        level_range: 0..levels,
                        point: point(),
                        grid: grid.clone(),
                        bins: Arc::clone(&bins),
                        tag: ion_index as u64,
                        deadline: f64::INFINITY,
                        reply: tx.clone(),
                    })
                    .ok()
                    .unwrap();
            }
            drop(tx);
            let mut outcomes: Vec<IonOutcome> = rx.iter().collect();
            outcomes.sort_by_key(|o| o.ion_index);
            let report = engine.shutdown();
            assert_eq!(report.leaked_grants, 0, "gpus={gpus} pack={pack_threshold}");
            outcomes.into_iter().map(|o| o.partial).collect()
        };

        let db = {
            let cfg = small_config(0);
            cfg.db
        };
        let serial = SerialCalculator::new(
            (*db).clone(),
            grid.clone(),
            Integrator::Simpson { panels: 64 },
        );
        let reference: Vec<Vec<f64>> = (0..db.ions().len())
            .map(|i| serial.ion_spectrum(i, &point()).bins().to_vec())
            .collect();

        for gpus in [0usize, 1, 2] {
            // u64::MAX threshold forces every task under the pack bound.
            let packed = run(gpus, u64::MAX);
            let unpacked = run(gpus, 0);
            for (ion, (p, u)) in packed.iter().zip(&unpacked).enumerate() {
                for (bin, ((&a, &b), &r)) in p.iter().zip(u.iter()).zip(&reference[ion]).enumerate()
                {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "gpus={gpus} ion {ion} bin {bin}: packed vs unpacked"
                    );
                    assert_eq!(
                        b.to_bits(),
                        r.to_bits(),
                        "gpus={gpus} ion {ion} bin {bin}: engine vs serial"
                    );
                }
            }
        }
    }

    #[test]
    fn aggregation_reduces_modeled_device_time_on_tiny_tasks() {
        // Tiny Level-granularity tasks are launch-overhead-bound; the
        // cost model must show packing amortizing the per-launch and
        // per-transfer charges (the deterministic gate repro-simd uses).
        let run = |pack_threshold: u64| -> (f64, u64) {
            let mut cfg = small_config(1);
            cfg.workers = 1;
            cfg.pack_threshold = pack_threshold;
            cfg.pack_max = 8;
            // Deep queues so the pump sees real backlog to pack.
            cfg.max_queue_len = 64;
            cfg.queue_depth = 64;
            let engine = Engine::start(cfg);
            let grid = EnergyGrid::linear(50.0, 2000.0, 16);
            let bins = Arc::new(grid.bin_pairs());
            let ions = engine.config().db.ions().len();
            let (tx, rx) = channel();
            let mut submitted = 0u64;
            for round in 0..4u64 {
                for ion_index in 0..ions {
                    engine
                        .submit(IonJob {
                            ion_index,
                            level_range: 0..1,
                            point: point(),
                            grid: grid.clone(),
                            bins: Arc::clone(&bins),
                            tag: round,
                            deadline: f64::INFINITY,
                            reply: tx.clone(),
                        })
                        .ok()
                        .unwrap();
                    submitted += 1;
                }
            }
            drop(tx);
            let outcomes: Vec<IonOutcome> = rx.iter().collect();
            assert_eq!(outcomes.len() as u64, submitted);
            let report = engine.shutdown();
            assert_eq!(report.leaked_grants, 0);
            (report.device_virtual_seconds[0], report.gpu_tasks)
        };
        let (packed_s, packed_gpu) = run(u64::MAX);
        let (unpacked_s, unpacked_gpu) = run(0);
        // Both configurations must actually use the device; the packed
        // run must model strictly less busy time per device task.
        assert!(packed_gpu > 0 && unpacked_gpu > 0);
        assert!(
            packed_s / (packed_gpu as f64) < unpacked_s / (unpacked_gpu as f64),
            "packed {packed_s}s/{packed_gpu} vs unpacked {unpacked_s}s/{unpacked_gpu}"
        );
    }

    #[test]
    fn tuner_and_measured_cost_keep_partials_bitwise_serial() {
        // Property test (satellite c): with the resident tuner ON — a
        // tiny epoch so it actually moves knobs mid-run — and the
        // measured-cost blend feeding placement, every deterministic-
        // kernel partial stays bitwise identical to the serial
        // calculator across {0, 1, 2} devices and both policies,
        // because tuner and blend only move *where/when* work runs.
        let grid = EnergyGrid::linear(50.0, 2000.0, 64);
        let bins = Arc::new(grid.bin_pairs());
        let db = small_config(0).db;
        let serial = SerialCalculator::new(
            (*db).clone(),
            grid.clone(),
            Integrator::Simpson { panels: 64 },
        );
        let reference: Vec<Vec<f64>> = (0..db.ions().len())
            .map(|i| serial.ion_spectrum(i, &point()).bins().to_vec())
            .collect();

        for gpus in [0usize, 1, 2] {
            for policy in [SchedPolicy::CostAware, SchedPolicy::PaperCount] {
                let mut cfg = small_config(gpus);
                cfg.policy = policy;
                cfg.tuning = hybrid_sched::TuningConfig {
                    epoch_tasks: 4,
                    ..hybrid_sched::TuningConfig::enabled()
                };
                let engine = Engine::start(cfg);
                let ions = engine.config().db.ions().len();
                let (tx, rx) = channel();
                // Several waves so the measured-cost blend has
                // observations (and the tuner has epochs) by the time
                // the later waves place.
                let waves = 4u64;
                for wave in 0..waves {
                    for ion_index in 0..ions {
                        let levels = engine.config().db.levels_by_index(ion_index).len();
                        engine
                            .submit(IonJob {
                                ion_index,
                                level_range: 0..levels,
                                point: point(),
                                grid: grid.clone(),
                                bins: Arc::clone(&bins),
                                tag: wave,
                                deadline: f64::INFINITY,
                                reply: tx.clone(),
                            })
                            .ok()
                            .unwrap();
                    }
                }
                drop(tx);
                let outcomes: Vec<IonOutcome> = rx.iter().collect();
                assert_eq!(outcomes.len(), (waves as usize) * ions);
                for o in &outcomes {
                    for (bin, (&got, &want)) in
                        o.partial.iter().zip(&reference[o.ion_index]).enumerate()
                    {
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "gpus={gpus} {policy:?} ion {} bin {bin}: tuned vs serial",
                            o.ion_index
                        );
                    }
                }
                let snap = engine.scheduler_snapshot();
                if gpus > 0 {
                    assert!(
                        snap.cost_observations > 0,
                        "gpus={gpus} {policy:?}: settles must feed the blend"
                    );
                }
                let tuner = snap.tuner.expect("tuner enabled -> snapshot present");
                assert!(
                    tuner.epoch > 0,
                    "gpus={gpus} {policy:?}: epochs must have elapsed"
                );
                let report = engine.shutdown();
                assert_eq!(report.leaked_grants, 0, "gpus={gpus} {policy:?}");
                assert_eq!(report.gpu_tasks + report.cpu_tasks, waves * ions as u64);
            }
        }
    }

    #[test]
    fn cold_blend_places_identically_to_static_cost() {
        // Property test (satellite a), engine level: with zero
        // measured-cost observations the blended model must hand the
        // scheduler exactly the static units — so a cold engine's
        // placement accounting (weighted histories) is identical to
        // what raw ion_task_cost produces.
        let cfg = small_config(2);
        let engine = Engine::start(cfg);
        let grid = EnergyGrid::linear(50.0, 2000.0, 48);
        let bins = Arc::new(grid.bin_pairs());
        let model = CostModel::new();
        for ion_index in 0..engine.config().db.ions().len() {
            let levels = engine.config().db.levels_by_index(ion_index).len();
            let static_units =
                ion_task_cost(&engine.config().db, ion_index, 0..levels, &point(), &bins);
            let key = CostKey::bucketed(engine.config().db.ions()[ion_index].z, levels, bins.len());
            assert_eq!(
                model.blended(&key, static_units),
                static_units,
                "ion {ion_index}: cold blend must degenerate to static"
            );
        }
        assert_eq!(engine.scheduler_snapshot().cost_observations, 0);
        let report = engine.shutdown();
        assert_eq!(report.leaked_grants, 0);
    }

    #[test]
    fn elastic_parking_still_drains_everything() {
        // Force the rank pool down to one active rank mid-run: parked
        // ranks must not strand queued jobs, and shutdown must unpark
        // everyone to drain.
        let mut cfg = small_config(1);
        cfg.workers = 4;
        let engine = Engine::start(cfg);
        engine.tuner_knobs().set(Knob::ActiveRanks, 1);
        let grid = EnergyGrid::linear(50.0, 2000.0, 32);
        let bins = Arc::new(grid.bin_pairs());
        let ions = engine.config().db.ions().len();
        let (tx, rx) = channel();
        for wave in 0..3u64 {
            for ion_index in 0..ions {
                let levels = engine.config().db.levels_by_index(ion_index).len();
                engine
                    .submit(IonJob {
                        ion_index,
                        level_range: 0..levels,
                        point: point(),
                        grid: grid.clone(),
                        bins: Arc::clone(&bins),
                        tag: wave,
                        deadline: f64::INFINITY,
                        reply: tx.clone(),
                    })
                    .ok()
                    .unwrap();
            }
        }
        drop(tx);
        let outcomes: Vec<IonOutcome> = rx.iter().collect();
        assert_eq!(outcomes.len(), 3 * ions);
        let report = engine.shutdown();
        assert_eq!(report.gpu_tasks + report.cpu_tasks, 3 * ions as u64);
        assert_eq!(report.leaked_grants, 0);
    }

    #[test]
    fn try_submit_sheds_when_queue_full() {
        // One worker, a tiny queue, and jobs that stack up behind a
        // single slow drain: eventually try_submit must refuse.
        let mut cfg = small_config(0);
        cfg.workers = 1;
        cfg.queue_depth = 2;
        let engine = Engine::start(cfg);
        let grid = EnergyGrid::linear(50.0, 2000.0, 256);
        let bins = Arc::new(grid.bin_pairs());
        let (tx, rx) = channel();
        let mut accepted = 0u64;
        let mut refused = 0u64;
        for i in 0..200 {
            let job = IonJob {
                ion_index: i % engine.config().db.ions().len(),
                level_range: 0..1,
                point: point(),
                grid: grid.clone(),
                bins: Arc::clone(&bins),
                tag: i as u64,
                deadline: f64::INFINITY,
                reply: tx.clone(),
            };
            match engine.try_submit(job) {
                Ok(()) => accepted += 1,
                Err(TryPushError::Full(_)) => refused += 1,
                Err(TryPushError::Closed(_)) => unreachable!("engine is live"),
            }
        }
        drop(tx);
        let outcomes: Vec<IonOutcome> = rx.iter().collect();
        assert_eq!(outcomes.len() as u64, accepted);
        assert!(refused > 0, "queue depth 2 must refuse under a burst");
        let report = engine.shutdown();
        assert_eq!(report.cpu_tasks, accepted);
        assert_eq!(report.leaked_grants, 0);
    }

    #[test]
    fn drop_without_shutdown_drains_cleanly() {
        let engine = Engine::start(small_config(1));
        let grid = EnergyGrid::linear(50.0, 2000.0, 32);
        let bins = Arc::new(grid.bin_pairs());
        let (tx, rx) = channel();
        for ion_index in 0..engine.config().db.ions().len() {
            engine
                .submit(IonJob {
                    ion_index,
                    level_range: 0..1,
                    point: point(),
                    grid: grid.clone(),
                    bins: Arc::clone(&bins),
                    tag: 0,
                    deadline: f64::INFINITY,
                    reply: tx.clone(),
                })
                .ok()
                .unwrap();
        }
        drop(tx);
        drop(engine); // must drain, free grants, join — not strand
        let delivered = rx.iter().count();
        assert!(delivered > 0);
    }

    #[test]
    fn pipelined_pump_settles_every_task_in_a_deep_window() {
        // Deep pipeline on one device: many tasks flow through the
        // double-buffered pump; every outcome arrives, every grant is
        // freed, and the device carries the whole load.
        let mut cfg = small_config(1);
        cfg.async_window = 4;
        cfg.workers = 2;
        let engine = Engine::start(cfg);
        let grid = EnergyGrid::linear(50.0, 2000.0, 48);
        let bins = Arc::new(grid.bin_pairs());
        let ions = engine.config().db.ions().len();
        let (tx, rx) = channel();
        for round in 0..3usize {
            for ion_index in 0..ions {
                let levels = engine.config().db.levels_by_index(ion_index).len();
                engine
                    .submit(IonJob {
                        ion_index,
                        level_range: 0..levels,
                        point: point(),
                        grid: grid.clone(),
                        bins: Arc::clone(&bins),
                        tag: round as u64,
                        deadline: f64::INFINITY,
                        reply: tx.clone(),
                    })
                    .ok()
                    .unwrap();
            }
        }
        drop(tx);
        let outcomes: Vec<IonOutcome> = rx.iter().collect();
        assert_eq!(outcomes.len(), 3 * ions);
        let report = engine.shutdown();
        assert_eq!(report.gpu_tasks + report.cpu_tasks, 3 * ions as u64);
        assert_eq!(report.leaked_grants, 0);
        assert!(report.gpu_tasks > 0, "device path must be exercised");
    }
}
