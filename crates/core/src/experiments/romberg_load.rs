//! Paper Fig. 6 (time-weighted load distribution of GPU device 0 for
//! Romberg complexities k = 7, 9, 11, 13) and Table I (task
//! distribution between GPU and CPU for the same sweep).
//!
//! Setup per the paper: 2 GPUs, maximum queue length fixed at 6. The
//! GPU's per-task compute scales as `2^(k-7)` while the CPU fallback
//! stays QAGS (fixed cost), so higher k drives load onto the queues
//! first and then overflows tasks back to the CPUs.

use crate::calib::Calibration;
use crate::desmodel::{self, spectral_config};
use crate::task::Granularity;
use crate::workload::SpectralWorkload;

/// Results for one Romberg complexity.
#[derive(Debug, Clone)]
pub struct RombergRow {
    /// Dichotomy level `k` (computation amount per task ∝ 2^k).
    pub k: u32,
    /// Tasks that ran on GPUs.
    pub tasks_on_gpu: u64,
    /// GPU share of all tasks, percent (Table I col 3).
    pub gpu_ratio_percent: f64,
    /// Fraction of run time device 0 spent at load ≥ 3, percent
    /// (Table I col 4).
    pub load_ge3_percent: f64,
    /// Device-0 time share at each load level 0..=6, percent
    /// (Fig. 6 bars).
    pub load_percent: [f64; 7],
    /// Total virtual time of the run.
    pub total_s: f64,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct RombergReport {
    /// One row per k in [7, 9, 11, 13].
    pub rows: Vec<RombergRow>,
}

/// Paper Table I: (k, tasks on GPU, GPU ratio %, load>=3 %).
pub const PAPER_TABLE1: [(u32, u64, f64, f64); 4] = [
    (7, 6674, 98.26, 37.85),
    (9, 6344, 93.40, 65.46),
    (11, 4518, 66.52, 70.76),
    (13, 2779, 40.92, 66.64),
];

/// The swept complexities.
pub const KS: [u32; 4] = [7, 9, 11, 13];

/// Run the sweep (2 GPUs, qlen 6, Ion granularity).
#[must_use]
pub fn run(workload: &SpectralWorkload, calib: &Calibration) -> RombergReport {
    let rows = KS
        .iter()
        .map(|&k| {
            let report = desmodel::run(spectral_config(
                workload,
                calib,
                Granularity::Ion,
                2,
                6,
                Some(k),
            ));
            let hist = &report.device_load[0];
            let mut load_percent = [0.0; 7];
            for (level, slot) in load_percent.iter_mut().enumerate() {
                *slot = hist.percent_at(level as u32);
            }
            RombergRow {
                k,
                tasks_on_gpu: report.gpu_tasks,
                gpu_ratio_percent: report.gpu_ratio_percent,
                load_ge3_percent: hist.percent_at_least(3),
                load_percent,
                total_s: report.makespan_s,
            }
        })
        .collect();
    RombergReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomdb::{AtomDatabase, DatabaseConfig};

    fn report() -> RombergReport {
        let db = AtomDatabase::generate(DatabaseConfig::default());
        let workload = SpectralWorkload::paper(&db);
        run(&workload, &Calibration::paper())
    }

    #[test]
    fn gpu_share_falls_as_complexity_rises() {
        let r = report();
        let ratios: Vec<f64> = r.rows.iter().map(|r| r.gpu_ratio_percent).collect();
        for pair in ratios.windows(2) {
            assert!(pair[1] < pair[0], "{ratios:?}");
        }
        // Endpoints in the paper's neighbourhood: ~98% at k=7, well
        // under 70% at k=13.
        assert!(ratios[0] > 90.0, "{ratios:?}");
        assert!(ratios[3] < 75.0, "{ratios:?}");
    }

    #[test]
    fn load_distribution_shifts_right_with_complexity() {
        let r = report();
        let mean_load = |row: &RombergRow| -> f64 {
            row.load_percent
                .iter()
                .enumerate()
                .map(|(l, &p)| l as f64 * p / 100.0)
                .sum()
        };
        let m7 = mean_load(&r.rows[0]);
        let m13 = mean_load(&r.rows[3]);
        assert!(m13 > m7, "mean load k=7 {m7} vs k=13 {m13}");
    }

    #[test]
    fn load_percentages_are_a_distribution() {
        let r = report();
        for row in &r.rows {
            let sum: f64 = row.load_percent.iter().sum();
            // Levels above 6 cannot occur with qlen 6.
            assert!((sum - 100.0).abs() < 1e-6, "k={}: sum {}", row.k, sum);
            assert!(row.load_percent.iter().all(|&p| (0.0..=100.0).contains(&p)));
        }
    }

    #[test]
    fn heavier_tasks_take_longer_overall() {
        let r = report();
        for pair in r.rows.windows(2) {
            assert!(pair[1].total_s > pair[0].total_s);
        }
    }

    #[test]
    fn load_ge3_is_substantial_at_high_k() {
        let r = report();
        assert!(r.rows[3].load_ge3_percent > 40.0, "{:?}", r.rows[3]);
        assert!(r.rows[0].load_ge3_percent < r.rows[3].load_ge3_percent + 60.0);
    }
}
