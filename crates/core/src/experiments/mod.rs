//! Experiment drivers — one per table/figure of the paper's
//! evaluation (§IV). Each driver returns a serializable report that
//! carries both our measured series and the paper's published series,
//! so the `spectral-bench` regenerator binaries (and `EXPERIMENTS.md`)
//! can print them side by side.
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Fig. 3 (granularity speedups) | [`granularity::run`] |
//! | Fig. 4 (time vs max queue length) | [`qlen_sweep::run`] |
//! | Fig. 5 (GPU task ratio vs max queue length) | [`qlen_sweep::run`] |
//! | Fig. 6 (device-0 load distribution vs Romberg k) | [`romberg_load::run`] |
//! | Table I (task distribution vs computation amount) | [`romberg_load::run`] |
//! | Fig. 7 (serial vs hybrid spectra) | [`accuracy::run`] |
//! | Fig. 8 (relative-error distribution) | [`accuracy::run`] |
//! | Table II (NEI speedups) | [`nei_scaling::run`] |
//! | Design-choice ablations (tie-break, async window, Hyper-Q) | [`ablation::run`] |
//! | §IV text (13.5× MPI baseline) | [`granularity::run`] preamble |

pub mod ablation;
pub mod accuracy;
pub mod granularity;
pub mod nei_scaling;
pub mod qlen_sweep;
pub mod rank_scaling;
pub mod romberg_load;
