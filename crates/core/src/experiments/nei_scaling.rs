//! Paper Table II: NEI speedup on 1–4 GPUs vs the 24-rank MPI version.
//!
//! The paper's run is 10⁶ grid points × 1000 timesteps with ten
//! timesteps per task — 10⁸ tasks, far more than a discrete-event run
//! needs (or should) replay one by one. We simulate a 1/`scale` subset
//! and multiply the makespan back; with tasks ≫ ranks × queue length
//! by four orders of magnitude even in the subset, the steady-state
//! regime dominates and the scaling is exact to the drain transient.

use crate::calib::Calibration;
use crate::desmodel::{self, nei_config};

/// One GPU count of Table II.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// GPU count.
    pub gpus: usize,
    /// Projected total seconds at paper scale (10⁸ tasks).
    pub time_s: f64,
    /// Speedup vs the 24-rank MPI-only run.
    pub speedup: f64,
    /// Paper's time for this GPU count.
    pub paper_time_s: f64,
    /// Paper's speedup.
    pub paper_speedup: f64,
    /// GPU task share, percent.
    pub gpu_ratio_percent: f64,
}

/// The Table II reproduction.
#[derive(Debug, Clone)]
pub struct Table2Report {
    /// MPI-only baseline at paper scale (anchor: 8784 s).
    pub mpi_s: f64,
    /// One row per GPU count.
    pub rows: Vec<Table2Row>,
}

/// Paper Table II: `(gpus, speedup, seconds)`.
pub const PAPER_TABLE2: [(usize, f64, f64); 4] = [
    (1, 2.8, 3137.0),
    (2, 5.9, 1494.0),
    (3, 10.8, 810.0),
    (4, 15.1, 582.0),
];

/// Run the NEI scaling experiment, simulating `tasks_per_rank` tasks
/// per rank (paper scale / simulated scale is projected back).
#[must_use]
pub fn run(calib: &Calibration, tasks_per_rank: usize) -> Table2Report {
    let ranks = calib.ranks;
    let sim_tasks = (ranks * tasks_per_rank) as f64;
    let scale = calib.nei_tasks as f64 / sim_tasks;
    let qlen = 8; // paper: "the maximum queue length is 8"

    let mpi = desmodel::run(nei_config(calib, ranks, tasks_per_rank, 0, qlen));
    let mpi_s = mpi.makespan_s * scale;

    let rows = (1..=4)
        .map(|gpus| {
            let report = desmodel::run(nei_config(calib, ranks, tasks_per_rank, gpus, qlen));
            let time_s = report.makespan_s * scale;
            let (_, paper_speedup, paper_time_s) = PAPER_TABLE2[gpus - 1];
            Table2Row {
                gpus,
                time_s,
                speedup: mpi_s / time_s,
                paper_time_s,
                paper_speedup,
                gpu_ratio_percent: report.gpu_ratio_percent,
            }
        })
        .collect();
    Table2Report { mpi_s, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Table2Report {
        run(&Calibration::paper(), 2000)
    }

    #[test]
    fn mpi_baseline_matches_anchor() {
        let r = report();
        assert!(
            (r.mpi_s - 8784.0).abs() / 8784.0 < 0.01,
            "baseline {}",
            r.mpi_s
        );
    }

    #[test]
    fn speedup_grows_monotonically_with_gpus() {
        let r = report();
        for pair in r.rows.windows(2) {
            assert!(pair[1].speedup > pair[0].speedup);
        }
        // And the hybrid always beats pure MPI.
        assert!(r.rows[0].speedup > 1.5, "{:?}", r.rows[0]);
    }

    #[test]
    fn four_gpu_speedup_is_double_digit() {
        let r = report();
        let s4 = r.rows[3].speedup;
        assert!(s4 > 8.0 && s4 < 25.0, "4-GPU speedup {s4}");
    }

    #[test]
    fn scaling_projection_is_stable() {
        // Doubling the simulated subset must not change the projected
        // times materially (steady-state argument).
        let a = run(&Calibration::paper(), 1000);
        let b = run(&Calibration::paper(), 2000);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            let rel = (ra.time_s - rb.time_s).abs() / rb.time_s;
            assert!(
                rel < 0.03,
                "gpus={}: {} vs {}",
                ra.gpus,
                ra.time_s,
                rb.time_s
            );
        }
    }
}
