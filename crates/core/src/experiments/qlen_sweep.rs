//! Paper Fig. 4 (total time vs maximum queue length) and Fig. 5 (GPU
//! task ratio vs maximum queue length), plus the automatic
//! queue-length tuner of §III-A.

use hybrid_sched::AutoTuner;

use crate::calib::Calibration;
use crate::desmodel::{self, spectral_config};
use crate::task::Granularity;
use crate::workload::SpectralWorkload;

/// One (gpu count, queue length) cell of Figs. 4 and 5.
#[derive(Debug, Clone, Copy)]
pub struct QlenCell {
    /// GPU count.
    pub gpus: usize,
    /// Maximum queue length.
    pub qlen: u64,
    /// Total virtual time of the 24-point run (Fig. 4 y-axis).
    pub total_s: f64,
    /// GPU task ratio percent (Fig. 5 y-axis).
    pub gpu_ratio_percent: f64,
}

/// The sweep plus the autotuner's pick per GPU count.
#[derive(Debug, Clone)]
pub struct QlenReport {
    /// All cells, qlen-major per GPU count.
    pub cells: Vec<QlenCell>,
    /// The queue length the automatic test settles on, per GPU count
    /// (paper: the inflexion is at 10–12).
    pub tuned_qlen: Vec<(usize, u64)>,
}

/// Paper Fig. 4: total seconds for queue lengths 2,4,...,14 (rows:
/// 1..=4 GPUs).
pub const PAPER_FIG4: [[f64; 7]; 4] = [
    [356.0, 251.0, 221.0, 194.0, 186.0, 176.0, 179.0],
    [221.0, 182.0, 178.0, 135.0, 124.0, 124.0, 128.0],
    [184.0, 124.0, 119.0, 155.0, 119.0, 114.0, 117.0],
    [155.0, 119.0, 114.0, 117.0, 111.0, 113.0, 118.0],
];

/// Paper Fig. 5: GPU task ratios (%) for queue lengths 2,4,...,14.
pub const PAPER_FIG5: [[f64; 7]; 4] = [
    [95.57, 97.25, 98.12, 98.78, 98.93, 99.40, 99.54],
    [97.47, 99.00, 99.25, 99.76, 99.90, 100.00, 100.00],
    [98.88, 99.68, 99.90, 99.22, 99.85, 100.00, 100.00],
    [99.22, 99.85, 100.00, 100.00, 100.00, 100.00, 100.00],
];

/// The swept queue lengths.
pub const QLENS: [u64; 7] = [2, 4, 6, 8, 10, 12, 14];

/// Run the sweep at the paper's configuration.
#[must_use]
pub fn run(workload: &SpectralWorkload, calib: &Calibration) -> QlenReport {
    let mut cells = Vec::new();
    let mut tuned = Vec::new();
    for gpus in 1..=4usize {
        for &qlen in &QLENS {
            let report = desmodel::run(spectral_config(
                workload,
                calib,
                Granularity::Ion,
                gpus,
                qlen,
                None,
            ));
            cells.push(QlenCell {
                gpus,
                qlen,
                total_s: report.makespan_s,
                gpu_ratio_percent: report.gpu_ratio_percent,
            });
        }
        // The paper's automatic test: raise qlen until the inflexion.
        let best = AutoTuner::paper_sweep().with_patience(2).tune(|q| {
            desmodel::run(spectral_config(
                workload,
                calib,
                Granularity::Ion,
                gpus,
                q,
                None,
            ))
            .makespan_s
        });
        tuned.push((gpus, best));
    }
    QlenReport {
        cells,
        tuned_qlen: tuned,
    }
}

impl QlenReport {
    /// The cells of one GPU count, in qlen order.
    #[must_use]
    pub fn series(&self, gpus: usize) -> Vec<QlenCell> {
        self.cells
            .iter()
            .filter(|c| c.gpus == gpus)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomdb::{AtomDatabase, DatabaseConfig};

    fn report() -> QlenReport {
        let db = AtomDatabase::generate(DatabaseConfig::default());
        let workload = SpectralWorkload::paper(&db);
        run(&workload, &Calibration::paper())
    }

    #[test]
    fn time_improves_from_tiny_to_moderate_queue() {
        let r = report();
        for gpus in 1..=4 {
            let s = r.series(gpus);
            assert!(
                s[0].total_s > s[4].total_s,
                "gpus={gpus}: qlen 2 ({}) should be slower than qlen 10 ({})",
                s[0].total_s,
                s[4].total_s
            );
        }
    }

    #[test]
    fn gpu_ratio_rises_with_queue_length() {
        let r = report();
        for gpus in 1..=4 {
            let s = r.series(gpus);
            assert!(s[0].gpu_ratio_percent <= s[6].gpu_ratio_percent + 1e-9);
            // High ratios throughout, as in Fig. 5.
            assert!(
                s[0].gpu_ratio_percent > 85.0,
                "gpus={gpus}: ratio {}",
                s[0].gpu_ratio_percent
            );
            assert!(s[6].gpu_ratio_percent > 95.0);
            if gpus >= 2 {
                assert!(s[6].gpu_ratio_percent > 99.5);
            }
        }
    }

    #[test]
    fn more_gpus_are_never_slower_at_fixed_qlen() {
        let r = report();
        for (i, &qlen) in QLENS.iter().enumerate() {
            let t1 = r.series(1)[i].total_s;
            let t4 = r.series(4)[i].total_s;
            assert!(t4 <= t1 + 1e-9, "qlen {qlen}: {t4} vs {t1}");
        }
    }

    #[test]
    fn tuner_picks_a_moderate_queue_length() {
        let r = report();
        for &(gpus, q) in &r.tuned_qlen {
            assert!(
                (4..=14).contains(&q),
                "gpus={gpus}: tuned qlen {q} out of the plausible band"
            );
        }
    }

    #[test]
    fn two_vs_three_gpu_gap_narrows_at_large_qlen() {
        // Paper: "the difference ... between 2 GPUs and 3 GPUs is
        // getting smaller and smaller when the maximum queue length is
        // larger than 6".
        let r = report();
        let gap = |i: usize| (r.series(2)[i].total_s - r.series(3)[i].total_s).abs();
        let early = gap(0).max(gap(1));
        let late = gap(5).max(gap(6));
        assert!(late <= early + 1e-9, "early gap {early}, late gap {late}");
    }
}
