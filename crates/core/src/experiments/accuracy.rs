//! Paper Fig. 7 (serial vs hybrid spectra over 10–45 Å) and Fig. 8
//! (distribution of per-bin relative errors).
//!
//! This experiment runs **real numerics** on both paths: the serial
//! reference integrates every bin with QAGS; the hybrid runtime ships
//! ion tasks to the simulated GPUs, whose SIMT kernel integrates with
//! composite Simpson (64 panels), with QAGS on CPU-fallback tasks —
//! exactly the paper's method split.

use std::sync::Arc;

use gpu_sim::{DeviceRule, Precision};
use rrc_spectral::{ErrorHistogram, Integrator, ParameterSpace, SerialCalculator, Spectrum};

use crate::runtime::{HybridConfig, HybridRunner};
use crate::task::Granularity;

/// Scale knobs for the accuracy run (the physics is identical at any
/// scale; bins and `max_z` only set how long the run takes).
#[derive(Debug, Clone, Copy)]
pub struct AccuracyConfig {
    /// Database cutoff element.
    pub max_z: u8,
    /// Energy bins across the 10–45 Å waveband.
    pub bins: usize,
    /// Rank threads.
    pub ranks: usize,
    /// Simulated GPUs.
    pub gpus: usize,
}

impl Default for AccuracyConfig {
    fn default() -> Self {
        AccuracyConfig {
            max_z: 31,
            bins: 600,
            ranks: 8,
            gpus: 2,
        }
    }
}

/// The Fig. 7 + Fig. 8 bundle.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// Serial (QAGS) normalized flux vs wavelength (Fig. 7a).
    pub serial_series: Vec<(f64, f64)>,
    /// Hybrid (GPU Simpson) normalized flux vs wavelength (Fig. 7b).
    pub hybrid_series: Vec<(f64, f64)>,
    /// Signed per-bin relative errors, percent (over flux-carrying
    /// bins).
    pub errors_percent: Vec<f64>,
    /// Histogram of the errors (Fig. 8 curve).
    pub histogram: ErrorHistogram,
    /// Percent of errors with |e| <= 0.0005% (paper: "more than 99%").
    pub within_half_milli_percent: f64,
    /// Extremes of the error distribution (paper: −0.0003%..0.0033%).
    pub min_error: f64,
    /// Largest error, percent.
    pub max_error: f64,
    /// Share of hybrid tasks that actually ran on the GPU.
    pub gpu_ratio_percent: f64,
}

/// Run the accuracy comparison.
#[must_use]
pub fn run(cfg: AccuracyConfig) -> AccuracyReport {
    let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig {
        max_z: cfg.max_z,
        ..atomdb::DatabaseConfig::default()
    });
    let grid = rrc_spectral::EnergyGrid::paper_waveband(cfg.bins);
    // One representative hot-plasma point (the paper plots one spectrum).
    let space = ParameterSpace {
        temperatures_k: vec![3.5e6],
        densities_cm3: vec![1.0],
        times_s: vec![0.0],
    };
    let point = space.point(0).expect("one point");

    let serial = SerialCalculator::new(db.clone(), grid.clone(), Integrator::paper_cpu());
    let serial_spectrum = serial.spectrum_at(&point);

    let hybrid_cfg = HybridConfig {
        db: Arc::new(db),
        grid,
        space,
        ranks: cfg.ranks,
        gpus: cfg.gpus,
        max_queue_len: 6,
        policy: hybrid_sched::SchedPolicy::CostAware,
        granularity: Granularity::Ion,
        gpu_rule: DeviceRule::Simpson { panels: 64 },
        // Fermi-era production kernels ran in single precision — that is
        // the error scale the paper's Fig. 8 shows (1e-5..1e-4 relative).
        gpu_precision: Precision::Single,
        cpu_integrator: Integrator::paper_cpu(),
        async_window: 1,
        fused: true,
        math: quadrature::MathMode::Exact,
        pack_threshold: 0,
        resilience: crate::resilience::ResilienceConfig::default(),
        tuning: hybrid_sched::TuningConfig::default(),
    };
    let report = HybridRunner::new(hybrid_cfg).run();
    let hybrid_spectrum = &report.spectra[0];

    build_report(
        &serial_spectrum,
        hybrid_spectrum,
        report.gpu_ratio_percent(),
    )
}

fn build_report(
    serial_spectrum: &Spectrum,
    hybrid_spectrum: &Spectrum,
    gpu_ratio_percent: f64,
) -> AccuracyReport {
    let errors = hybrid_spectrum.significant_relative_errors_percent(serial_spectrum, 1e-9);
    let histogram = ErrorHistogram::build(&errors, 40);
    let within = ErrorHistogram::fraction_within(&errors, 5e-4);
    AccuracyReport {
        serial_series: serial_spectrum.normalized().wavelength_series(),
        hybrid_series: hybrid_spectrum.normalized().wavelength_series(),
        min_error: histogram.min,
        max_error: histogram.max,
        errors_percent: errors,
        histogram,
        within_half_milli_percent: within,
        gpu_ratio_percent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_report() -> AccuracyReport {
        run(AccuracyConfig {
            max_z: 8,
            bins: 96,
            ranks: 4,
            gpus: 2,
        })
    }

    #[test]
    fn spectra_overlay_visually() {
        // Fig. 7's two panels are indistinguishable by eye: normalized
        // fluxes agree everywhere to far better than a pixel.
        let r = small_report();
        assert_eq!(r.serial_series.len(), r.hybrid_series.len());
        for ((wa, fa), (wb, fb)) in r.serial_series.iter().zip(&r.hybrid_series) {
            assert_eq!(wa, wb);
            assert!((fa - fb).abs() < 1e-3, "at {wa} Å: {fa} vs {fb}");
        }
    }

    #[test]
    fn errors_are_tiny_like_fig8() {
        let r = small_report();
        assert!(!r.errors_percent.is_empty());
        // The paper's window is [-0.0003%, 0.0033%]; ours must be of the
        // same order.
        assert!(
            r.max_error.abs() < 0.01 && r.min_error.abs() < 0.01,
            "range [{}, {}]",
            r.min_error,
            r.max_error
        );
        assert!(
            r.within_half_milli_percent > 90.0,
            "{}% within 0.0005%",
            r.within_half_milli_percent
        );
    }

    #[test]
    fn wavelength_axis_covers_10_to_45_angstrom() {
        let r = small_report();
        let first = r.serial_series.first().unwrap().0;
        let last = r.serial_series.last().unwrap().0;
        assert!((10.0..11.0).contains(&first), "{first}");
        assert!(last > 44.0 && last <= 45.0, "{last}");
    }

    #[test]
    fn histogram_covers_all_errors() {
        let r = small_report();
        let total: f64 = r.histogram.probability.iter().sum();
        assert!((total - 100.0).abs() < 1e-6);
    }
}
