//! Strong scaling over MPI ranks (not a paper figure, but the natural
//! companion to its 13.5×-at-24-ranks quote): how the pure-MPI version
//! and the hybrid version scale as ranks are added, under the
//! calibrated memory-contention model.

use crate::calib::Calibration;
use crate::desmodel::{self, spectral_config};
use crate::task::Granularity;
use crate::workload::SpectralWorkload;

/// One rank-count sample.
#[derive(Debug, Clone, Copy)]
pub struct RankRow {
    /// Rank count.
    pub ranks: usize,
    /// Pure-MPI speedup over serial.
    pub mpi_speedup: f64,
    /// Hybrid (2 GPUs, qlen 12) speedup over serial.
    pub hybrid_speedup: f64,
    /// The contention model's closed-form prediction for pure MPI:
    /// `k / (1 + alpha (k-1))`.
    pub mpi_model: f64,
}

/// The sweep.
#[derive(Debug, Clone)]
pub struct RankReport {
    /// Rows at 1, 2, 4, 8, 16, 24 ranks.
    pub rows: Vec<RankRow>,
}

/// Run the sweep. Rank counts that do not divide 24 still work — the
/// parameter space partitions unevenly and the makespan follows the
/// largest share.
#[must_use]
pub fn run(workload: &SpectralWorkload, calib: &Calibration) -> RankReport {
    let serial = calib.serial_point_s * workload.points as f64;
    let alpha = calib.contention_alpha();
    let rows = [1usize, 2, 4, 8, 16, 24]
        .into_iter()
        .map(|ranks| {
            let truncate = |mut cfg: desmodel::DesConfig| {
                // Re-partition the 24 points over `ranks` ranks.
                let all: Vec<_> = cfg.rank_tasks.drain(..).flatten().collect();
                let per = all.len().div_ceil(ranks);
                cfg.rank_tasks = all.chunks(per).map(<[_]>::to_vec).collect();
                cfg
            };
            let mpi = desmodel::run(truncate(spectral_config(
                workload,
                calib,
                Granularity::Ion,
                0,
                1,
                None,
            )));
            let hybrid = desmodel::run(truncate(spectral_config(
                workload,
                calib,
                Granularity::Ion,
                2,
                12,
                None,
            )));
            RankRow {
                ranks,
                mpi_speedup: serial / mpi.makespan_s,
                hybrid_speedup: serial / hybrid.makespan_s,
                mpi_model: ranks as f64 / (1.0 + alpha * (ranks as f64 - 1.0)),
            }
        })
        .collect();
    RankReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomdb::{AtomDatabase, DatabaseConfig};

    fn report() -> RankReport {
        let db = AtomDatabase::generate(DatabaseConfig::default());
        let workload = SpectralWorkload::paper(&db);
        run(&workload, &Calibration::paper())
    }

    #[test]
    fn mpi_scaling_matches_the_contention_model() {
        let r = report();
        for row in &r.rows {
            let rel = (row.mpi_speedup - row.mpi_model).abs() / row.mpi_model;
            assert!(
                rel < 0.05,
                "ranks={}: measured {} vs model {}",
                row.ranks,
                row.mpi_speedup,
                row.mpi_model
            );
        }
        // Endpoint: the paper's 13.5x at 24 ranks.
        let last = r.rows.last().unwrap();
        assert!((last.mpi_speedup - 13.5).abs() < 0.7);
    }

    #[test]
    fn hybrid_beats_mpi_at_every_rank_count() {
        let r = report();
        for row in &r.rows {
            assert!(
                row.hybrid_speedup > row.mpi_speedup * 2.0,
                "ranks={}: hybrid {} vs mpi {}",
                row.ranks,
                row.hybrid_speedup,
                row.mpi_speedup
            );
        }
    }

    #[test]
    fn hybrid_scaling_saturates_at_the_device_capacity() {
        // With 2 GPUs the hybrid curve flattens long before 24 ranks —
        // extra submitters cannot push a saturated device pipeline.
        let r = report();
        let at8 = r.rows.iter().find(|r| r.ranks == 8).unwrap().hybrid_speedup;
        let at24 = r
            .rows
            .iter()
            .find(|r| r.ranks == 24)
            .unwrap()
            .hybrid_speedup;
        assert!(at24 < at8 * 1.6, "8 ranks {at8}, 24 ranks {at24}");
    }
}
