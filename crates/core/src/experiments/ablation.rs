//! Ablations of the design choices the paper motivates but does not
//! isolate:
//!
//! 1. **Tie-breaking by history count** (Algorithm 1) vs plain index
//!    order — does remembering history matter, or does load alone
//!    suffice?
//! 2. **Synchronous vs asynchronous submission** — the paper's §V
//!    limitation: "when the single task is time-consuming to GPU, some
//!    asynchronous task queuing mechanism must be introduced"; we sweep
//!    the submission window on the heavy Romberg k=13 workload.
//! 3. **Fermi serial queues vs Kepler Hyper-Q** — §III-A: "the Hyper-Q
//!    technique can allow for up to 32 simultaneous connections"; we
//!    sweep the per-device concurrency window.

use hybrid_sched::TieBreak;

use crate::calib::Calibration;
use crate::desmodel::{self, spectral_config};
use crate::task::Granularity;
use crate::workload::SpectralWorkload;

/// Result of one ablation variant.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which knob and setting.
    pub variant: String,
    /// Total virtual time of the 24-point run.
    pub total_s: f64,
    /// GPU task share, percent.
    pub gpu_ratio_percent: f64,
    /// Max/min ratio of per-device history counts (1.0 = perfectly
    /// balanced).
    pub history_imbalance: f64,
}

/// The three ablation families.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// Tie-break rule comparison (2 GPUs, qlen 6).
    pub tie_break: Vec<AblationRow>,
    /// Submission window sweep on the heavy k=13 workload (2 GPUs).
    pub async_window: Vec<AblationRow>,
    /// Per-device concurrency sweep (2 GPUs, qlen 6).
    pub hyper_q: Vec<AblationRow>,
    /// Count-based vs work-aware device selection (paper §V's "improved
    /// scheme for load balancing"), on the size-heterogeneous workload.
    pub work_aware: Vec<AblationRow>,
}

fn summarize(variant: String, report: &desmodel::DesReport) -> AblationRow {
    let max = report.device_history.iter().max().copied().unwrap_or(0) as f64;
    let min = report.device_history.iter().min().copied().unwrap_or(0) as f64;
    AblationRow {
        variant,
        total_s: report.makespan_s,
        gpu_ratio_percent: report.gpu_ratio_percent,
        history_imbalance: if min > 0.0 { max / min } else { f64::INFINITY },
    }
}

/// Run all three ablations.
#[must_use]
pub fn run(workload: &SpectralWorkload, calib: &Calibration) -> AblationReport {
    // 1. Tie-break rule.
    let tie_break = [TieBreak::History, TieBreak::Index]
        .into_iter()
        .map(|tie| {
            let mut cfg = spectral_config(workload, calib, Granularity::Ion, 2, 6, None);
            cfg.tie_break = tie;
            summarize(format!("{tie:?}"), &desmodel::run(cfg))
        })
        .collect();

    // 2. Async window on long tasks (Romberg k = 13).
    let async_window = [1usize, 2, 4, 8]
        .into_iter()
        .map(|window| {
            let mut cfg = spectral_config(workload, calib, Granularity::Ion, 2, 6, Some(13));
            cfg.async_window = window;
            summarize(format!("window={window}"), &desmodel::run(cfg))
        })
        .collect();

    // 3. Hyper-Q concurrency.
    let hyper_q = [1usize, 4, 32]
        .into_iter()
        .map(|slots| {
            let mut cfg = spectral_config(workload, calib, Granularity::Ion, 2, 6, None);
            cfg.concurrent_per_gpu = slots;
            summarize(format!("active_tasks={slots}"), &desmodel::run(cfg))
        })
        .collect();

    // 4. Work-aware balancing: the per-ion level census makes task sizes
    //    heterogeneous (4x spread); weigh queues by backlog instead of
    //    count.
    let work_aware = [false, true]
        .into_iter()
        .map(|aware| {
            let mut cfg = spectral_config(workload, calib, Granularity::Ion, 2, 6, Some(11));
            cfg.work_aware = aware;
            summarize(
                if aware { "work-aware" } else { "count-based" }.to_string(),
                &desmodel::run(cfg),
            )
        })
        .collect();

    AblationReport {
        tie_break,
        async_window,
        hyper_q,
        work_aware,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomdb::{AtomDatabase, DatabaseConfig};

    fn report() -> AblationReport {
        let db = AtomDatabase::generate(DatabaseConfig::default());
        let workload = SpectralWorkload::paper(&db);
        run(&workload, &Calibration::paper())
    }

    #[test]
    fn history_tiebreak_balances_devices() {
        let r = report();
        let history = &r.tie_break[0];
        let index = &r.tie_break[1];
        // The paper's rule keeps per-device history counts tight.
        assert!(history.history_imbalance < 1.05, "{history:?}");
        // Index order must not beat the paper's rule on balance.
        assert!(index.history_imbalance >= history.history_imbalance * 0.999);
    }

    #[test]
    fn async_window_helps_heavy_tasks() {
        let r = report();
        let sync = r.async_window[0].total_s;
        let windowed = r.async_window.last().unwrap().total_s;
        // The paper's own prediction: async queuing pays off when single
        // tasks are expensive.
        assert!(
            windowed < sync,
            "window 8 ({windowed}) should beat sync ({sync})"
        );
    }

    #[test]
    fn hyper_q_never_hurts_throughput_materially() {
        let r = report();
        let fermi = r.hyper_q[0].total_s;
        for row in &r.hyper_q[1..] {
            assert!(row.total_s <= fermi * 1.05, "{row:?} vs fermi {fermi}");
        }
    }

    #[test]
    fn work_aware_balancing_does_not_regress() {
        // The improved scheme must never be materially worse; with the
        // 4x task-size spread it should help or tie.
        let r = report();
        let count = r.work_aware[0].total_s;
        let aware = r.work_aware[1].total_s;
        assert!(aware <= count * 1.01, "work-aware {aware} vs count {count}");
    }

    #[test]
    fn all_variants_conserve_high_gpu_share() {
        let r = report();
        for row in r.tie_break.iter().chain(&r.hyper_q) {
            assert!(row.gpu_ratio_percent > 90.0, "{row:?}");
        }
    }
}
