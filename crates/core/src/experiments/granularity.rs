//! Paper Fig. 3: speedup vs GPU count for the two task granularities,
//! plus the serial and 24-rank MPI baselines quoted in §IV.

use crate::calib::Calibration;
use crate::desmodel::{self, spectral_config};
use crate::task::Granularity;
use crate::workload::SpectralWorkload;

/// One GPU-count sample of Fig. 3.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Row {
    /// Number of GPU devices.
    pub gpus: usize,
    /// Measured Ion-granularity speedup over serial.
    pub ion_speedup: f64,
    /// Measured Level-granularity speedup over serial.
    pub level_speedup: f64,
    /// Paper's Ion value for this GPU count.
    pub paper_ion: f64,
    /// Paper's Level value for this GPU count.
    pub paper_level: f64,
    /// Fraction of Ion tasks that ran on GPUs, percent.
    pub ion_gpu_ratio: f64,
}

/// The whole experiment.
#[derive(Debug, Clone)]
pub struct Fig3Report {
    /// Serial baseline (virtual seconds for all 24 points).
    pub serial_s: f64,
    /// 24-rank MPI-only time and its speedup (paper: 13.5×).
    pub mpi_s: f64,
    /// MPI speedup over serial.
    pub mpi_speedup: f64,
    /// One row per GPU count 1..=4.
    pub rows: Vec<Fig3Row>,
}

/// Paper Fig. 3 values.
pub const PAPER_ION: [f64; 4] = [196.4, 278.7, 305.8, 311.4];
/// Paper Fig. 3 values (Level granularity).
pub const PAPER_LEVEL: [f64; 4] = [97.9, 132.9, 155.7, 158.5];

/// Run the experiment at the paper's configuration (24 points, qlen 12).
#[must_use]
pub fn run(workload: &SpectralWorkload, calib: &Calibration) -> Fig3Report {
    let serial_s = calib.serial_point_s * workload.points as f64;

    // MPI-only baseline: 24 ranks, no GPUs.
    let mpi = desmodel::run(spectral_config(
        workload,
        calib,
        Granularity::Ion,
        0,
        1,
        None,
    ));

    let qlen = 12;
    let rows = (1..=4)
        .map(|gpus| {
            let ion = desmodel::run(spectral_config(
                workload,
                calib,
                Granularity::Ion,
                gpus,
                qlen,
                None,
            ));
            let level = desmodel::run(spectral_config(
                workload,
                calib,
                Granularity::Level,
                gpus,
                qlen,
                None,
            ));
            Fig3Row {
                gpus,
                ion_speedup: serial_s / ion.makespan_s,
                level_speedup: serial_s / level.makespan_s,
                paper_ion: PAPER_ION[gpus - 1],
                paper_level: PAPER_LEVEL[gpus - 1],
                ion_gpu_ratio: ion.gpu_ratio_percent,
            }
        })
        .collect();

    Fig3Report {
        serial_s,
        mpi_s: mpi.makespan_s,
        mpi_speedup: serial_s / mpi.makespan_s,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomdb::{AtomDatabase, DatabaseConfig};

    fn report() -> Fig3Report {
        let db = AtomDatabase::generate(DatabaseConfig::default());
        let workload = SpectralWorkload::paper(&db);
        run(&workload, &Calibration::paper())
    }

    #[test]
    fn mpi_baseline_is_13_5x() {
        let r = report();
        assert!((r.mpi_speedup - 13.5).abs() < 0.5, "{}", r.mpi_speedup);
    }

    #[test]
    fn ion_beats_level_at_every_gpu_count() {
        let r = report();
        for row in &r.rows {
            assert!(
                row.ion_speedup > row.level_speedup * 1.5,
                "gpus={}: ion {} vs level {}",
                row.gpus,
                row.ion_speedup,
                row.level_speedup
            );
        }
    }

    #[test]
    fn speedups_increase_with_gpus_then_saturate() {
        let r = report();
        let s: Vec<f64> = r.rows.iter().map(|r| r.ion_speedup).collect();
        assert!(s[1] > s[0]);
        // Saturation: 3 -> 4 gains less than 1 -> 2.
        assert!((s[3] - s[2]) < (s[1] - s[0]));
        assert!(s[3] >= s[2] * 0.99);
    }

    #[test]
    fn measured_speedups_track_paper_shape() {
        // Within 25% of the paper at the anchored endpoints and within
        // 2x everywhere (mid points are emergent, not fitted).
        let r = report();
        for row in &r.rows {
            let rel = row.ion_speedup / row.paper_ion;
            assert!(
                rel > 0.6 && rel < 1.45,
                "gpus={}: measured {} vs paper {}",
                row.gpus,
                row.ion_speedup,
                row.paper_ion
            );
        }
    }
}
