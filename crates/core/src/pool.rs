//! Reusable QAGS workspaces for the CPU-fallback path.
//!
//! Every rejected task used to build a fresh [`QagsWorkspace`] (interval
//! heap + extrapolation table) before integrating; in steady state a
//! rank only ever needs as many workspaces as it has concurrent CPU
//! tasks (one, on the blocking path). [`WorkspacePool`] keeps released
//! workspaces on a free list so their heap allocations are recycled, and
//! counts creations vs. acquisitions so runs can *prove* the steady
//! state allocates nothing.

use quadrature::QagsWorkspace;

/// A free-list pool of [`QagsWorkspace`]s with reuse accounting.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    free: Vec<QagsWorkspace>,
    created: u64,
    acquired: u64,
}

impl WorkspacePool {
    /// An empty pool: no workspace is built until first acquired.
    #[must_use]
    pub fn new() -> WorkspacePool {
        WorkspacePool::default()
    }

    /// Take a workspace, reusing a released one when available. Only
    /// allocates when the free list is empty.
    pub fn acquire(&mut self) -> QagsWorkspace {
        self.acquired += 1;
        self.free.pop().unwrap_or_else(|| {
            self.created += 1;
            QagsWorkspace::new()
        })
    }

    /// Return a workspace to the free list for reuse.
    pub fn release(&mut self, ws: QagsWorkspace) {
        self.free.push(ws);
    }

    /// Workspaces actually constructed over the pool's lifetime.
    #[must_use]
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Acquisitions served (from the free list or by construction).
    #[must_use]
    pub fn acquired(&self) -> u64 {
        self.acquired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_acquire_release_creates_exactly_one() {
        let mut pool = WorkspacePool::new();
        for _ in 0..100 {
            let ws = pool.acquire();
            pool.release(ws);
        }
        assert_eq!(pool.created(), 1, "steady state must reuse, not allocate");
        assert_eq!(pool.acquired(), 100);
    }

    #[test]
    fn concurrent_holds_create_as_many_as_outstanding() {
        let mut pool = WorkspacePool::new();
        let a = pool.acquire();
        let b = pool.acquire();
        pool.release(a);
        pool.release(b);
        let c = pool.acquire();
        pool.release(c);
        assert_eq!(pool.created(), 2);
        assert_eq!(pool.acquired(), 3);
    }

    #[test]
    fn pooled_workspace_still_integrates() {
        let mut pool = WorkspacePool::new();
        for _ in 0..3 {
            let mut ws = pool.acquire();
            let est = quadrature::qags_with(
                &mut ws,
                quadrature::AdaptiveConfig::default(),
                |x: f64| (-x).exp(),
                0.0,
                1.0,
            )
            .expect("smooth integrand converges");
            assert!((est.value - (1.0 - (-1.0f64).exp())).abs() < 1e-10);
            pool.release(ws);
        }
        assert_eq!(pool.created(), 1);
    }
}
