//! The real-threaded hybrid runtime — paper Fig. 2 end to end.
//!
//! The batch entry point: [`HybridRunner::run`] computes one fixed
//! [`ParameterSpace`] and returns. Since the service PR it is a thin
//! client of the **resident** [`crate::engine::Engine`] — it brings an
//! engine up, streams every grid point's coarse-grained tasks through
//! the bounded ion-task queue (each task asks the shared-memory
//! scheduler for a device, paper Algorithm 1; granted tasks run the
//! RRC kernel on a [`gpu_sim::SimGpu`], rejected tasks run QAGS on the
//! engine worker's thread), reassembles per-point spectra from the
//! per-task partials in deterministic (ion, level) order, and shuts
//! the engine down. Results are numerically comparable with the
//! serial reference; the deterministic reassembly makes a given
//! configuration's output independent of task placement races up to
//! the kernel-chunking last-ulp effects documented in
//! [`crate::engine`].

use std::sync::Arc;
use std::time::Instant;

use atomdb::AtomDatabase;
use gpu_sim::{DeviceRule, Precision};
use hybrid_sched::SchedPolicy;
use quadrature::MathMode;
use rrc_spectral::{EnergyGrid, Integrator, ParameterSpace, Spectrum};

use crate::engine::{Engine, EngineConfig, IonJob, IonOutcome};
use crate::resilience::ResilienceConfig;
use crate::task::Granularity;

/// Configuration of a real hybrid run.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Atomic database (shared read-only by every rank and device).
    pub db: Arc<AtomDatabase>,
    /// Energy grid of the output spectra.
    pub grid: EnergyGrid,
    /// Grid points to compute.
    pub space: ParameterSpace,
    /// MPI rank count (paper: 24).
    pub ranks: usize,
    /// Simulated GPU count (0 = pure CPU run; the paper's "run normally
    /// in the runtime environment without GPU device").
    pub gpus: usize,
    /// Maximum queue length per device.
    pub max_queue_len: u64,
    /// Placement policy: cost-aware weighted balancing (default) or
    /// the paper's task-count policy ([`SchedPolicy::PaperCount`]) for
    /// A/B ablation.
    pub policy: SchedPolicy,
    /// Task granularity.
    pub granularity: Granularity,
    /// Device-side integration rule (paper: Simpson over 64 pieces).
    pub gpu_rule: DeviceRule,
    /// Device arithmetic precision (Fermi-era kernels ran in f32; see
    /// [`gpu_sim::Precision`]). `Double` keeps the GPU path bit-exact
    /// against the CPU path under the same rule.
    pub gpu_precision: Precision,
    /// CPU fallback integrator (paper: QAGS).
    pub cpu_integrator: Integrator,
    /// Outstanding GPU submissions a rank may hold before blocking.
    /// `1` reproduces the paper's synchronous mode; larger windows
    /// implement the asynchronous queuing named as future work in §V.
    pub async_window: usize,
    /// Route device tasks through the fused hot path
    /// ([`gpu_sim::FusedBinKernel`] over prepared integrands, shared
    /// bin edges evaluated once, bin grids sampled with the
    /// exponential recurrence). `false` keeps the seed's per-bin
    /// [`gpu_sim::BinIntegrationKernel`] for A/B comparison; f64
    /// results agree to within the fused pipeline's `1e-13`-relative
    /// budget.
    pub fused: bool,
    /// Math mode for the fused kernels and CPU fallback:
    /// [`MathMode::Exact`] (default) keeps the seed's scalar arithmetic
    /// bitwise; [`MathMode::Vector`] routes exponentials and the f64
    /// accumulations through the lane-parallel [`quadrature::simd`]
    /// layer (max relative deviation ≤ 1e-12).
    pub math: MathMode,
    /// Pack staged device tasks with estimated cost strictly below this
    /// many work units into one aggregated launch (`0` disables; see
    /// [`crate::engine::EngineConfig::pack_threshold`]).
    pub pack_threshold: u64,
    /// Fault injection, retry/backoff and device-health configuration
    /// (see [`crate::resilience::ResilienceConfig`]; the default is
    /// fault-free).
    pub resilience: ResilienceConfig,
    /// Online autotuning knob surface (see
    /// [`crate::engine::EngineConfig::tuning`]; disabled by default).
    pub tuning: hybrid_sched::TuningConfig,
}

impl HybridConfig {
    /// A small configuration suitable for tests and examples: a reduced
    /// database (`max_z`), a modest grid, 4 ranks, 2 GPUs.
    #[must_use]
    pub fn small(max_z: u8, bins: usize, points: usize) -> HybridConfig {
        let db = AtomDatabase::generate(atomdb::DatabaseConfig {
            max_z,
            ..atomdb::DatabaseConfig::default()
        });
        HybridConfig {
            db: Arc::new(db),
            grid: EnergyGrid::linear(50.0, 2000.0, bins),
            space: ParameterSpace {
                temperatures_k: (0..points).map(|i| 9.0e6 + 5e4 * i as f64).collect(),
                densities_cm3: vec![1.0],
                times_s: vec![0.0],
            },
            ranks: 4,
            gpus: 2,
            max_queue_len: 6,
            policy: SchedPolicy::CostAware,
            granularity: Granularity::Ion,
            gpu_rule: DeviceRule::Simpson { panels: 64 },
            gpu_precision: Precision::Double,
            cpu_integrator: Integrator::paper_cpu(),
            async_window: 1,
            fused: true,
            math: MathMode::Exact,
            pack_threshold: 0,
            resilience: ResilienceConfig::default(),
            tuning: hybrid_sched::TuningConfig::default(),
        }
    }
}

/// Outcome of a real hybrid run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// One spectrum per grid point, in point order.
    pub spectra: Vec<Spectrum>,
    /// Tasks executed on devices.
    pub gpu_tasks: u64,
    /// Tasks that fell back to rank CPUs.
    pub cpu_tasks: u64,
    /// Wall-clock seconds of the run (host machine time; *not* the
    /// virtual-time model — see `desmodel` for paper-scale timing).
    pub wall_s: f64,
    /// Per-device history task counts from the scheduler.
    pub device_history: Vec<u64>,
    /// Per-device modeled busy time (cost-model seconds: launch + PCIe
    /// + kernel per task) — what the run would cost on real C2075s.
    pub device_virtual_seconds: Vec<f64>,
    /// Per-device peak on-board memory (bytes) over the run.
    pub device_peak_memory: Vec<u64>,
    /// QAGS workspaces actually constructed across the rank pools
    /// (steady state: at most one per rank that ever fell back to CPU).
    pub workspaces_created: u64,
    /// Workspace acquisitions served by the rank pools (one per CPU
    /// task); `workspace_acquisitions - workspaces_created` is the
    /// number of allocations the pooling avoided.
    pub workspace_acquisitions: u64,
    /// Device-task failures the engine's recovery ladder handled
    /// (zero on a fault-free run).
    pub task_faults: u64,
    /// Retry attempts the ladder issued.
    pub task_retries: u64,
    /// Tasks released to the host path after the ladder ran out.
    pub fault_cpu_fallbacks: u64,
    /// Final per-device health states.
    pub device_health: Vec<hybrid_sched::HealthState>,
    /// Healthy/Degraded → Quarantined transitions over the run.
    pub quarantines: u64,
}

impl RunReport {
    /// Fraction of tasks that ran on GPUs, percent.
    #[must_use]
    pub fn gpu_ratio_percent(&self) -> f64 {
        let total = self.gpu_tasks + self.cpu_tasks;
        if total == 0 {
            0.0
        } else {
            100.0 * self.gpu_tasks as f64 / total as f64
        }
    }
}

/// The runtime: owns the devices and the scheduler for one or more
/// runs of the same configuration.
pub struct HybridRunner {
    config: HybridConfig,
}

impl HybridRunner {
    /// Create a runner for `config`.
    #[must_use]
    pub fn new(config: HybridConfig) -> HybridRunner {
        HybridRunner { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// Execute the whole parameter space. Brings a resident engine up,
    /// streams every task through it, reassembles per-point spectra in
    /// deterministic (point, ion, level) order, shuts the engine down.
    #[must_use]
    pub fn run(&self) -> RunReport {
        let cfg = &self.config;
        let start = Instant::now();
        let engine = Engine::start(EngineConfig::from_hybrid(cfg));
        // The bin table is identical for every task of the run: build it
        // once and share it, instead of re-deriving it per submission.
        let bin_pairs: Arc<Vec<(f64, f64)>> = Arc::new(cfg.grid.bin_pairs());

        let (tx, rx) = std::sync::mpsc::channel();
        let mut submitted = 0usize;
        for point_idx in 0..cfg.space.len() {
            let point = cfg.space.point(point_idx).expect("index in range");
            for ion_index in 0..cfg.db.ions().len() {
                let level_count = cfg.db.levels_by_index(ion_index).len();
                let ranges: Vec<std::ops::Range<usize>> = match cfg.granularity {
                    #[allow(clippy::single_range_in_vec_init)] // one task covering all levels
                    Granularity::Ion => vec![0..level_count],
                    Granularity::Level => (0..level_count).map(|l| l..l + 1).collect(),
                };
                for range in ranges {
                    // Blocking submit: the bounded queue is the
                    // backpressure edge, the workers drain it
                    // continuously, so the producer simply waits for a
                    // slot when it outpaces them.
                    let job = IonJob {
                        ion_index,
                        level_range: range,
                        point,
                        grid: cfg.grid.clone(),
                        bins: Arc::clone(&bin_pairs),
                        tag: point_idx as u64,
                        deadline: f64::INFINITY,
                        reply: tx.clone(),
                    };
                    assert!(
                        engine.submit(job).is_ok(),
                        "engine stays live for the whole run"
                    );
                    submitted += 1;
                }
            }
        }
        drop(tx);

        // Collect every partial, then fold them in a fixed order:
        // accumulation no longer depends on placement races, so a given
        // configuration's spectra are reproducible run to run.
        let mut outcomes: Vec<IonOutcome> = rx.iter().collect();
        assert_eq!(outcomes.len(), submitted, "every task must be answered");
        outcomes.sort_by_key(|o| (o.tag, o.ion_index, o.level_start));
        let mut spectra: Vec<Spectrum> = (0..cfg.space.len())
            .map(|_| Spectrum::zeros(cfg.grid.clone()))
            .collect();
        for outcome in outcomes {
            let spectrum = &mut spectra[outcome.tag as usize];
            for (acc, v) in spectrum.bins_mut().iter_mut().zip(&outcome.partial) {
                *acc += v;
            }
        }

        let report = engine.shutdown();
        debug_assert_eq!(report.leaked_grants, 0, "run leaked scheduler grants");
        RunReport {
            spectra,
            gpu_tasks: report.gpu_tasks,
            cpu_tasks: report.cpu_tasks,
            wall_s: start.elapsed().as_secs_f64(),
            device_history: report.device_history,
            device_virtual_seconds: report.device_virtual_seconds,
            device_peak_memory: report.device_peak_memory,
            workspaces_created: report.workspaces_created,
            workspace_acquisitions: report.workspace_acquisitions,
            task_faults: report.task_faults,
            task_retries: report.task_retries,
            fault_cpu_fallbacks: report.fault_cpu_fallbacks,
            device_health: report.device_health,
            quarantines: report.quarantines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_spectral::SerialCalculator;

    #[test]
    fn hybrid_matches_serial_reference_exactly_with_same_rule() {
        // With Simpson on both paths, hybrid and serial must agree to
        // round-off regardless of where each task ran.
        let mut cfg = HybridConfig::small(6, 48, 3);
        cfg.cpu_integrator = Integrator::Simpson { panels: 64 };
        let runner = HybridRunner::new(cfg);
        let report = runner.run();
        let serial = SerialCalculator::new(
            (*runner.config().db).clone(),
            runner.config().grid.clone(),
            Integrator::Simpson { panels: 64 },
        );
        for (i, spectrum) in report.spectra.iter().enumerate() {
            let point = runner.config().space.point(i).unwrap();
            let reference = serial.spectrum_at(&point);
            for (a, b) in spectrum.bins().iter().zip(reference.bins()) {
                assert!(
                    (a - b).abs() <= 1e-12 * b.abs().max(1e-300),
                    "point {i}: {a} vs {b}"
                );
            }
        }
        assert_eq!(
            report.gpu_tasks + report.cpu_tasks,
            (runner.config().space.len() * runner.config().db.ions().len()) as u64
        );
    }

    #[test]
    fn qags_fallback_stays_close_to_gpu_simpson() {
        let cfg = HybridConfig::small(6, 48, 2);
        let report = HybridRunner::new(cfg).run();
        assert_eq!(report.spectra.len(), 2);
        assert!(report.spectra.iter().all(|s| s.total() > 0.0));
    }

    #[test]
    fn no_gpu_configuration_runs_everything_on_cpu() {
        let mut cfg = HybridConfig::small(4, 32, 2);
        cfg.gpus = 0;
        let report = HybridRunner::new(cfg).run();
        assert_eq!(report.gpu_tasks, 0);
        assert!(report.cpu_tasks > 0);
        assert!(report.spectra.iter().all(|s| s.total() > 0.0));
    }

    #[test]
    fn level_granularity_produces_identical_spectra() {
        let mut ion_cfg = HybridConfig::small(5, 40, 2);
        ion_cfg.cpu_integrator = Integrator::Simpson { panels: 64 };
        let mut level_cfg = ion_cfg.clone();
        level_cfg.granularity = Granularity::Level;
        let a = HybridRunner::new(ion_cfg).run();
        let b = HybridRunner::new(level_cfg).run();
        for (sa, sb) in a.spectra.iter().zip(&b.spectra) {
            for (x, y) in sa.bins().iter().zip(sb.bins()) {
                assert!((x - y).abs() <= 1e-12 * y.abs().max(1e-300));
            }
        }
        // Level granularity schedules strictly more tasks.
        assert!(
            b.gpu_tasks + b.cpu_tasks > a.gpu_tasks + a.cpu_tasks,
            "{b:?} vs {a:?}"
        );
    }

    #[test]
    fn device_accounting_is_populated() {
        let cfg = HybridConfig::small(6, 32, 2);
        let report = HybridRunner::new(cfg).run();
        assert_eq!(report.device_virtual_seconds.len(), 2);
        assert_eq!(report.device_peak_memory.len(), 2);
        // Every device that did work charged virtual time and held the
        // per-task result buffer.
        for (d, &h) in report.device_history.iter().enumerate() {
            if h > 0 {
                assert!(report.device_virtual_seconds[d] > 0.0, "device {d}");
                assert!(report.device_peak_memory[d] >= 32 * 8, "device {d}");
            }
        }
    }

    #[test]
    fn async_window_preserves_results() {
        let mut sync_cfg = HybridConfig::small(5, 40, 2);
        sync_cfg.cpu_integrator = Integrator::Simpson { panels: 64 };
        let mut async_cfg = sync_cfg.clone();
        async_cfg.async_window = 6;
        let a = HybridRunner::new(sync_cfg).run();
        let b = HybridRunner::new(async_cfg).run();
        // Task placement races differ run to run, so accumulation order
        // (and hence the last ulp) may differ; physics must not.
        for (sa, sb) in a.spectra.iter().zip(&b.spectra) {
            for (x, y) in sa.bins().iter().zip(sb.bins()) {
                assert!((x - y).abs() <= 1e-12 * y.abs().max(1e-300));
            }
        }
        assert_eq!(a.gpu_tasks + a.cpu_tasks, b.gpu_tasks + b.cpu_tasks);
    }

    #[test]
    fn fused_and_per_bin_kernels_agree() {
        // The tentpole A/B: routing through FusedBinKernel + prepared
        // integrands must reproduce the seed per-bin kernel's physics.
        let mut fused_cfg = HybridConfig::small(6, 48, 2);
        fused_cfg.cpu_integrator = Integrator::Simpson { panels: 64 };
        fused_cfg.fused = true;
        let mut seed_cfg = fused_cfg.clone();
        seed_cfg.fused = false;
        let a = HybridRunner::new(fused_cfg).run();
        let b = HybridRunner::new(seed_cfg).run();
        for (sa, sb) in a.spectra.iter().zip(&b.spectra) {
            for (x, y) in sa.bins().iter().zip(sb.bins()) {
                assert!((x - y).abs() <= 1e-12 * y.abs().max(1e-300), "{x} vs {y}");
            }
        }
        assert_eq!(a.gpu_tasks + a.cpu_tasks, b.gpu_tasks + b.cpu_tasks);
    }

    #[test]
    fn workspace_pool_reuses_across_cpu_tasks() {
        // All-CPU run: every task acquires a workspace, but each rank
        // builds at most one.
        let mut cfg = HybridConfig::small(5, 32, 3);
        cfg.gpus = 0;
        let ranks = cfg.ranks as u64;
        let report = HybridRunner::new(cfg).run();
        assert_eq!(report.workspace_acquisitions, report.cpu_tasks);
        assert!(report.workspaces_created <= ranks);
        assert!(
            report.workspaces_created < report.workspace_acquisitions,
            "pooling avoided no allocations: {report:?}"
        );
    }

    #[test]
    fn device_histories_account_for_gpu_tasks() {
        let cfg = HybridConfig::small(6, 32, 3);
        let report = HybridRunner::new(cfg).run();
        let history_total: u64 = report.device_history.iter().sum();
        assert_eq!(history_total, report.gpu_tasks);
    }
}
