//! Workload materialization: the paper's test setup as task lists.

use atomdb::AtomDatabase;
use rrc_spectral::ParameterSpace;

use crate::task::{Granularity, TaskSpec};

/// The spectral workload of the paper's evaluation: a parameter space
/// (24 grid points, one per MPI process) where every point spawns one
/// task per ion (or per level).
#[derive(Debug, Clone)]
pub struct SpectralWorkload {
    /// Number of grid points.
    pub points: usize,
    /// Energy bins per level at paper scale (the paper quotes ~50k bins
    /// per level; this only enters the work measure, not real-mode
    /// memory).
    pub bins_per_level: u64,
    /// Integrand evaluations per bin (Simpson-64 → 129; Romberg-k →
    /// 2^k + 1).
    pub evals_per_bin: u64,
    /// Level count of every ion, from the database census.
    pub levels_per_ion: Vec<u16>,
}

impl SpectralWorkload {
    /// Build from a database and a parameter space at paper scale.
    #[must_use]
    pub fn new(
        db: &AtomDatabase,
        space: &ParameterSpace,
        bins_per_level: u64,
        evals_per_bin: u64,
    ) -> SpectralWorkload {
        SpectralWorkload {
            points: space.len(),
            bins_per_level,
            evals_per_bin,
            levels_per_ion: (0..db.ions().len())
                .map(|i| db.levels_by_index(i).len() as u16)
                .collect(),
        }
    }

    /// The paper's configuration: 24 points, 496 ions, 50k bins/level,
    /// Simpson over 64 panels (129 evaluations per bin).
    #[must_use]
    pub fn paper(db: &AtomDatabase) -> SpectralWorkload {
        SpectralWorkload::new(db, &ParameterSpace::paper_test_space(), 50_000, 129)
    }

    /// Number of ions.
    #[must_use]
    pub fn ions(&self) -> usize {
        self.levels_per_ion.len()
    }

    /// Tasks of one grid point at `granularity`.
    #[must_use]
    pub fn point_tasks(&self, point: usize, granularity: Granularity) -> Vec<TaskSpec> {
        let mut out = Vec::new();
        for (ion_index, &levels) in self.levels_per_ion.iter().enumerate() {
            match granularity {
                Granularity::Ion => {
                    let evals = u64::from(levels) * self.bins_per_level * self.evals_per_bin;
                    out.push(TaskSpec {
                        point,
                        ion_index,
                        level: None,
                        evals,
                        bytes_in: 64 + 16 * u64::from(levels),
                        // One f64 per bin; levels accumulate on device.
                        bytes_out: 8 * self.bins_per_level,
                    });
                }
                Granularity::Level => {
                    for level in 0..levels {
                        out.push(TaskSpec {
                            point,
                            ion_index,
                            level: Some(level),
                            evals: self.bins_per_level * self.evals_per_bin,
                            bytes_in: 80,
                            bytes_out: 8 * self.bins_per_level,
                        });
                    }
                }
            }
        }
        out
    }

    /// Total task count at `granularity` over all points.
    #[must_use]
    pub fn total_tasks(&self, granularity: Granularity) -> usize {
        self.points * self.point_tasks(0, granularity).len()
    }

    /// Mean evaluations per task at `granularity`.
    #[must_use]
    pub fn mean_evals(&self, granularity: Granularity) -> f64 {
        let tasks = self.point_tasks(0, granularity);
        if tasks.is_empty() {
            return 0.0;
        }
        tasks.iter().map(|t| t.evals as f64).sum::<f64>() / tasks.len() as f64
    }

    /// Total evaluations of one grid point (granularity independent).
    #[must_use]
    pub fn evals_per_point(&self) -> u64 {
        self.levels_per_ion
            .iter()
            .map(|&l| u64::from(l) * self.bins_per_level * self.evals_per_bin)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomdb::DatabaseConfig;

    fn workload() -> SpectralWorkload {
        let db = AtomDatabase::generate(DatabaseConfig::default());
        SpectralWorkload::paper(&db)
    }

    #[test]
    fn paper_workload_has_24x496_ion_tasks() {
        let w = workload();
        assert_eq!(w.points, 24);
        assert_eq!(w.ions(), 496);
        assert_eq!(w.total_tasks(Granularity::Ion), 24 * 496);
    }

    #[test]
    fn level_tasks_outnumber_ion_tasks_by_mean_levels() {
        let w = workload();
        let ion = w.total_tasks(Granularity::Ion);
        let level = w.total_tasks(Granularity::Level);
        let mean_levels: f64 =
            w.levels_per_ion.iter().map(|&l| f64::from(l)).sum::<f64>() / w.ions() as f64;
        assert!((level as f64 / ion as f64 - mean_levels).abs() < 1e-9);
    }

    #[test]
    fn work_is_conserved_across_granularities() {
        let w = workload();
        let sum = |g: Granularity| -> u64 { w.point_tasks(3, g).iter().map(|t| t.evals).sum() };
        assert_eq!(sum(Granularity::Ion), sum(Granularity::Level));
        assert_eq!(sum(Granularity::Ion), w.evals_per_point());
    }

    #[test]
    fn ion_tasks_move_fewer_bytes_total() {
        // The paper's communication argument: ion tasks copy the result
        // array once per ion, level tasks once per level.
        let w = workload();
        let bytes =
            |g: Granularity| -> u64 { w.point_tasks(0, g).iter().map(|t| t.bytes_out).sum() };
        assert!(bytes(Granularity::Ion) < bytes(Granularity::Level));
    }

    #[test]
    fn per_point_magnitude_matches_paper_order() {
        // Paper: ~2e8 integrals per grid point (order of magnitude).
        let w = workload();
        let integrals: u64 = w
            .levels_per_ion
            .iter()
            .map(|&l| u64::from(l) * w.bins_per_level)
            .sum();
        assert!(
            integrals > 5e7 as u64 && integrals < 2e9 as u64,
            "integrals per point: {integrals}"
        );
    }

    #[test]
    fn task_sizes_vary_across_ions() {
        let w = workload();
        let tasks = w.point_tasks(0, Granularity::Ion);
        let min = tasks.iter().map(|t| t.evals).min().unwrap();
        let max = tasks.iter().map(|t| t.evals).max().unwrap();
        assert!(max > min, "level census must vary ion task sizes");
    }
}
