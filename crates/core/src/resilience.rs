//! Fault-tolerance knobs and counters for the resident engine.
//!
//! The engine's recovery ladder (see [`crate::engine`] and DESIGN.md's
//! "Fault model & degradation ladder") is driven entirely by this
//! configuration: which [`FaultPlan`] each simulated device runs under,
//! how many retries a failed task gets, how the retry backoff grows,
//! the optional per-task deadline the settle watchdog enforces, and the
//! [`HealthConfig`] thresholds of the per-device health state machine.
//!
//! The default is the fault-free production shape: empty fault plans,
//! three retries with a 100 µs exponential backoff capped at 5 ms, no
//! deadline, CPU fallback enabled, default health thresholds. Every
//! pre-existing construction site gets this via `..Default::default()`
//! semantics ([`ResilienceConfig::default`]), so fault tolerance is a
//! zero-cost opt-in: with empty plans the injector fast-path is a
//! single `Option` check per operation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use gpu_sim::FaultPlan;
use hybrid_sched::HealthConfig;

/// Fault-injection and recovery configuration of one engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Per-device fault plans (index = device id). Devices beyond the
    /// vector's length run fault-free; the empty vector is the
    /// production default.
    pub faults: Vec<FaultPlan>,
    /// Retries a failed device task gets before it is released to the
    /// CPU fallback path (0 = first failure goes straight to the
    /// ladder's next rung).
    pub max_retries: u32,
    /// Base of the exponential retry backoff: attempt *n* sleeps
    /// `backoff * 2^(n-1)`, capped at [`ResilienceConfig::backoff_cap`].
    pub backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Per-task deadline measured from kernel launch, enforced when the
    /// settle runs: a result arriving later than this is discarded and
    /// the task retried (the watchdog against injected stalls).
    pub task_deadline: Option<Duration>,
    /// Whether a task that exhausts its retries (or finds no eligible
    /// device) runs on the host QAGS path instead of failing. Disabled
    /// only by tests probing the ladder itself.
    pub cpu_fallback_on_fault: bool,
    /// Thresholds of the per-device health state machine
    /// (`Healthy → Degraded → Quarantined → Probation`).
    pub health: HealthConfig,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            faults: Vec::new(),
            max_retries: 3,
            backoff: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(5),
            task_deadline: None,
            cpu_fallback_on_fault: true,
            health: HealthConfig::default(),
        }
    }
}

impl ResilienceConfig {
    /// The fault plan for device `d` (empty when none was configured).
    #[must_use]
    pub fn plan_for(&self, d: usize) -> FaultPlan {
        self.faults.get(d).cloned().unwrap_or_default()
    }

    /// Backoff before retry attempt `attempt` (1-based): exponential
    /// from [`ResilienceConfig::backoff`], capped.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        if self.backoff.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        (self.backoff * factor).min(self.backoff_cap)
    }

    /// Whether any device has a non-empty fault plan.
    #[must_use]
    pub fn any_faults(&self) -> bool {
        self.faults.iter().any(|p| !p.is_empty())
    }
}

/// Shared recovery counters, bumped from pump threads and DMA settles
/// alike (settles outlive the pump iteration that spawned them, so the
/// counters cannot live in the pump-local stats).
#[derive(Debug, Default)]
pub(crate) struct FaultStats {
    /// Device-task failures observed (launch refusals, kernel panics,
    /// DMA failures, deadline overruns) — before any retry succeeded.
    pub(crate) task_faults: AtomicU64,
    /// Retry attempts issued (re-staged on the same or another device).
    pub(crate) task_retries: AtomicU64,
    /// Failures classified as deadline overruns by the settle watchdog.
    pub(crate) task_timeouts: AtomicU64,
    /// Tasks released to the host QAGS path after the ladder ran out.
    pub(crate) cpu_fallbacks: AtomicU64,
    /// Highest attempt count any single task reached (1 = first try).
    pub(crate) max_attempts: AtomicU64,
    /// Device tasks that settled successfully (the report's
    /// `gpu_tasks`); counted at settle, not launch, so a retried task
    /// counts once no matter how many launches it burned.
    pub(crate) gpu_completions: AtomicU64,
}

impl FaultStats {
    pub(crate) fn note_attempts(&self, attempts: u32) {
        self.max_attempts
            .fetch_max(u64::from(attempts), Ordering::Relaxed);
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let cfg = ResilienceConfig {
            backoff: Duration::from_micros(100),
            backoff_cap: Duration::from_micros(350),
            ..ResilienceConfig::default()
        };
        assert_eq!(cfg.backoff_for(1), Duration::from_micros(100));
        assert_eq!(cfg.backoff_for(2), Duration::from_micros(200));
        assert_eq!(cfg.backoff_for(3), Duration::from_micros(350), "capped");
        assert_eq!(cfg.backoff_for(31), Duration::from_micros(350));
    }

    #[test]
    fn zero_backoff_stays_zero() {
        let cfg = ResilienceConfig {
            backoff: Duration::ZERO,
            ..ResilienceConfig::default()
        };
        assert_eq!(cfg.backoff_for(5), Duration::ZERO);
    }

    #[test]
    fn default_is_fault_free() {
        let cfg = ResilienceConfig::default();
        assert!(!cfg.any_faults());
        assert!(cfg.plan_for(3).is_empty());
        assert!(cfg.cpu_fallback_on_fault);
    }
}
