//! Serializable run specifications — "a configuration file", the second
//! source of parameter spaces paper Fig. 1 names.
//!
//! A [`RunSpec`] is the JSON-friendly description of a hybrid run: it
//! owns no atomic database or device handles, just the knobs. The
//! `hspec` CLI and batch scripts deserialize one and call
//! [`RunSpec::into_config`].

use std::sync::Arc;

use gpu_sim::{DeviceRule, Precision};
use rrc_spectral::{EnergyGrid, Integrator, ParameterSpace};

use crate::runtime::HybridConfig;
use crate::task::Granularity;

/// The integration rule, JSON-friendly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuleSpec {
    /// Composite Simpson (paper GPU default: 64 panels).
    Simpson {
        /// Panels per bin.
        panels: usize,
    },
    /// Romberg with k dichotomy levels.
    Romberg {
        /// Dichotomy levels.
        k: u32,
    },
    /// Fixed-order Gauss–Legendre.
    GaussLegendre {
        /// Points per bin.
        order: usize,
    },
}

impl From<RuleSpec> for DeviceRule {
    fn from(spec: RuleSpec) -> DeviceRule {
        match spec {
            RuleSpec::Simpson { panels } => DeviceRule::Simpson { panels },
            RuleSpec::Romberg { k } => DeviceRule::Romberg { k },
            RuleSpec::GaussLegendre { order } => DeviceRule::GaussLegendre { order },
        }
    }
}

/// A complete, file-loadable description of one hybrid run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Database cutoff element (31 = the full 496-ion census).
    pub max_z: u8,
    /// Energy bins over the waveband.
    pub bins: usize,
    /// Waveband in eV (`[min, max]`); defaults to the paper's 10–45 Å.
    pub band_ev: [f64; 2],
    /// Sampled temperatures, kelvin.
    pub temperatures_k: Vec<f64>,
    /// Sampled densities, cm^-3.
    pub densities_cm3: Vec<f64>,
    /// MPI-style rank count.
    pub ranks: usize,
    /// Simulated GPU count.
    pub gpus: usize,
    /// Maximum queue length.
    pub max_queue_len: u64,
    /// `"ion"` or `"level"`.
    pub granularity: String,
    /// `"cost-aware"` (weighted placement, default) or `"paper-count"`
    /// (the paper's Algorithm 1 task-count policy) — the scheduling A/B
    /// switch.
    pub policy: String,
    /// Device rule. Unlike the other fields this one is required in
    /// JSON, flattened into the top-level object: e.g.
    /// `"rule": "simpson", "panels": 64`.
    pub rule: RuleSpec,
    /// `"single"` or `"double"` kernel arithmetic.
    pub precision: String,
    /// Outstanding submissions per rank (1 = synchronous).
    pub async_window: usize,
    /// Use the fused prepared-integrand hot path (default). `false`
    /// selects the legacy per-bin path for A/B comparison.
    pub fused: bool,
    /// `"exact"` (seed-bitwise scalar math, default) or `"vector"`
    /// (lane-parallel SIMD exp + accumulation).
    pub math: String,
    /// Pack device tasks cheaper than this many cost units into one
    /// aggregated launch (`0` disables aggregation).
    pub pack_threshold: u64,
    /// Run the resident online autotuner (continuous retuning of pack
    /// threshold, async window and rank pool against live epochs).
    pub tune: bool,
    /// Completed tasks per tuner decision epoch.
    pub tune_epoch: u64,
    /// Non-improving probes of one candidate before the tuner abandons
    /// a direction.
    pub tuner_patience: u32,
    /// Tuner probe step for cost-unit-valued knobs.
    pub tuner_step: u64,
}

impl Default for RunSpec {
    fn default() -> Self {
        // The spec's tuner defaults ARE the shared knob surface — one
        // source of truth for every entry point.
        let tuning = hybrid_sched::TuningConfig::default();
        RunSpec {
            max_z: 31,
            bins: 400,
            band_ev: [
                rrc_spectral::HC_EV_ANGSTROM / 45.0,
                rrc_spectral::HC_EV_ANGSTROM / 10.0,
            ],
            temperatures_k: vec![3.5e6],
            densities_cm3: vec![1.0],
            ranks: 8,
            gpus: 2,
            max_queue_len: 6,
            granularity: "ion".to_string(),
            policy: "cost-aware".to_string(),
            rule: RuleSpec::Simpson { panels: 64 },
            precision: "double".to_string(),
            async_window: 1,
            fused: true,
            math: "exact".to_string(),
            pack_threshold: 0,
            tune: tuning.enabled,
            tune_epoch: tuning.epoch_tasks,
            tuner_patience: tuning.patience,
            tuner_step: tuning.step,
        }
    }
}

impl RunSpec {
    /// Load from a JSON string. Every field except `rule` is optional
    /// and falls back to [`RunSpec::default`]; the rule is flattened
    /// into the top-level object (`"rule": "simpson", "panels": 64`).
    ///
    /// # Errors
    /// Returns a descriptive message on malformed input or unknown
    /// rule/field values.
    pub fn from_json(json: &str) -> Result<RunSpec, String> {
        let doc = jsonlite::Value::parse(json).map_err(|e| e.to_string())?;
        let obj = doc.as_object().ok_or("run spec must be a JSON object")?;
        let mut spec = RunSpec::default();

        let f64_field = |key: &str| -> Result<Option<f64>, String> {
            match obj.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| format!("'{key}' must be a number")),
            }
        };
        let usize_field = |key: &str| -> Result<Option<usize>, String> {
            match obj.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_usize()
                    .map(Some)
                    .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
            }
        };
        let str_field = |key: &str| -> Result<Option<&str>, String> {
            match obj.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(Some)
                    .ok_or_else(|| format!("'{key}' must be a string")),
            }
        };
        let f64_list = |key: &str| -> Result<Option<Vec<f64>>, String> {
            match obj.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_array()
                    .and_then(|a| a.iter().map(jsonlite::Value::as_f64).collect())
                    .map(Some)
                    .ok_or_else(|| format!("'{key}' must be an array of numbers")),
            }
        };

        if let Some(z) = usize_field("max_z")? {
            spec.max_z = u8::try_from(z).map_err(|_| "'max_z' out of range".to_string())?;
        }
        if let Some(bins) = usize_field("bins")? {
            spec.bins = bins;
        }
        if let Some(band) = f64_list("band_ev")? {
            if band.len() != 2 {
                return Err("'band_ev' must be [min, max]".into());
            }
            spec.band_ev = [band[0], band[1]];
        }
        if let Some(t) = f64_list("temperatures_k")? {
            spec.temperatures_k = t;
        }
        if let Some(d) = f64_list("densities_cm3")? {
            spec.densities_cm3 = d;
        }
        if let Some(r) = usize_field("ranks")? {
            spec.ranks = r;
        }
        if let Some(g) = usize_field("gpus")? {
            spec.gpus = g;
        }
        if let Some(q) = f64_field("max_queue_len")? {
            spec.max_queue_len = q as u64;
        }
        if let Some(g) = str_field("granularity")? {
            spec.granularity = g.to_string();
        }
        if let Some(p) = str_field("policy")? {
            spec.policy = p.to_string();
        }
        if let Some(p) = str_field("precision")? {
            spec.precision = p.to_string();
        }
        if let Some(w) = usize_field("async_window")? {
            spec.async_window = w;
        }
        if let Some(fused) = obj.get("fused") {
            spec.fused = fused
                .as_bool()
                .ok_or_else(|| "'fused' must be a boolean".to_string())?;
        }
        if let Some(m) = str_field("math")? {
            spec.math = m.to_string();
        }
        if let Some(p) = f64_field("pack_threshold")? {
            spec.pack_threshold = p as u64;
        }
        if let Some(t) = obj.get("tune") {
            spec.tune = t
                .as_bool()
                .ok_or_else(|| "'tune' must be a boolean".to_string())?;
        }
        if let Some(e) = f64_field("tune_epoch")? {
            spec.tune_epoch = e as u64;
        }
        if let Some(p) = usize_field("tuner_patience")? {
            spec.tuner_patience =
                u32::try_from(p).map_err(|_| "'tuner_patience' out of range".to_string())?;
        }
        if let Some(s) = f64_field("tuner_step")? {
            spec.tuner_step = s as u64;
        }

        // The rule is the one required field: a flattened tagged enum.
        let rule = str_field("rule")?.ok_or("missing required field 'rule'")?;
        spec.rule = match rule {
            "simpson" => RuleSpec::Simpson {
                panels: usize_field("panels")?.ok_or("simpson rule requires 'panels'")?,
            },
            "romberg" => {
                let k = usize_field("k")?.ok_or("romberg rule requires 'k'")?;
                RuleSpec::Romberg {
                    k: u32::try_from(k).map_err(|_| "'k' out of range".to_string())?,
                }
            }
            "gauss_legendre" => RuleSpec::GaussLegendre {
                order: usize_field("order")?.ok_or("gauss_legendre rule requires 'order'")?,
            },
            other => return Err(format!("unknown rule '{other}'")),
        };
        Ok(spec)
    }

    /// Serialize to the same flattened JSON dialect [`RunSpec::from_json`]
    /// reads.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut b = jsonlite::ObjectBuilder::new()
            .field("max_z", usize::from(self.max_z))
            .field("bins", self.bins)
            .field("band_ev", self.band_ev.to_vec())
            .field("temperatures_k", self.temperatures_k.clone())
            .field("densities_cm3", self.densities_cm3.clone())
            .field("ranks", self.ranks)
            .field("gpus", self.gpus)
            .field("max_queue_len", self.max_queue_len as f64)
            .field("granularity", self.granularity.as_str())
            .field("policy", self.policy.as_str())
            .field("precision", self.precision.as_str())
            .field("async_window", self.async_window)
            .field("fused", self.fused)
            .field("math", self.math.as_str())
            .field("pack_threshold", self.pack_threshold as f64)
            .field("tune", self.tune)
            .field("tune_epoch", self.tune_epoch as f64)
            .field("tuner_patience", self.tuner_patience as usize)
            .field("tuner_step", self.tuner_step as f64);
        b = match self.rule {
            RuleSpec::Simpson { panels } => b.field("rule", "simpson").field("panels", panels),
            RuleSpec::Romberg { k } => b.field("rule", "romberg").field("k", k),
            RuleSpec::GaussLegendre { order } => {
                b.field("rule", "gauss_legendre").field("order", order)
            }
        };
        b.build().to_pretty()
    }

    /// Materialize into a runnable [`HybridConfig`] (generates the
    /// database).
    ///
    /// # Errors
    /// Rejects out-of-range or unknown enum-like fields.
    pub fn into_config(self) -> Result<HybridConfig, String> {
        if self.max_z == 0 || self.max_z > atomdb::MAX_Z {
            return Err(format!("max_z must be 1..={}", atomdb::MAX_Z));
        }
        if self.temperatures_k.is_empty() || self.densities_cm3.is_empty() {
            return Err("need at least one temperature and one density".into());
        }
        let granularity = match self.granularity.as_str() {
            "ion" => Granularity::Ion,
            "level" => Granularity::Level,
            other => return Err(format!("granularity must be ion|level, got '{other}'")),
        };
        let policy = match self.policy.as_str() {
            "cost-aware" => hybrid_sched::SchedPolicy::CostAware,
            "paper-count" => hybrid_sched::SchedPolicy::PaperCount,
            other => {
                return Err(format!(
                    "policy must be cost-aware|paper-count, got '{other}'"
                ))
            }
        };
        let precision = match self.precision.as_str() {
            "double" => Precision::Double,
            "single" => Precision::Single,
            other => return Err(format!("precision must be single|double, got '{other}'")),
        };
        let math = quadrature::MathMode::parse(&self.math)
            .ok_or_else(|| format!("math must be exact|vector, got '{}'", self.math))?;
        let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig {
            max_z: self.max_z,
            ..atomdb::DatabaseConfig::default()
        });
        Ok(HybridConfig {
            db: Arc::new(db),
            grid: EnergyGrid::linear(self.band_ev[0], self.band_ev[1], self.bins.max(1)),
            space: ParameterSpace {
                temperatures_k: self.temperatures_k,
                densities_cm3: self.densities_cm3,
                times_s: vec![0.0],
            },
            ranks: self.ranks.max(1),
            gpus: self.gpus,
            max_queue_len: self.max_queue_len.max(1),
            policy,
            granularity,
            gpu_rule: self.rule.into(),
            gpu_precision: precision,
            cpu_integrator: Integrator::paper_cpu(),
            async_window: self.async_window.max(1),
            fused: self.fused,
            math,
            pack_threshold: self.pack_threshold,
            resilience: crate::resilience::ResilienceConfig::default(),
            tuning: hybrid_sched::TuningConfig {
                enabled: self.tune,
                epoch_tasks: self.tune_epoch.max(1),
                patience: self.tuner_patience.max(1),
                step: self.tuner_step.max(1),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::HybridRunner;

    #[test]
    fn default_spec_materializes() {
        let cfg = RunSpec {
            max_z: 4,
            bins: 16,
            ..RunSpec::default()
        }
        .into_config()
        .unwrap();
        assert_eq!(cfg.grid.bins(), 16);
        assert_eq!(cfg.space.len(), 1);
    }

    #[test]
    fn json_roundtrip_and_run() {
        let json = r#"{
            "max_z": 4,
            "bins": 24,
            "temperatures_k": [2e6, 4e6],
            "gpus": 1,
            "rule": "simpson",
            "panels": 32
        }"#;
        let spec = RunSpec::from_json(json).unwrap();
        assert_eq!(spec.rule, RuleSpec::Simpson { panels: 32 });
        let cfg = spec.into_config().unwrap();
        assert_eq!(cfg.space.len(), 2);
        let report = HybridRunner::new(cfg).run();
        assert_eq!(report.spectra.len(), 2);
        assert!(report.spectra.iter().all(|s| s.total() > 0.0));
    }

    #[test]
    fn bad_fields_are_rejected_with_messages() {
        let mut spec = RunSpec {
            granularity: "atom".into(),
            ..RunSpec::default()
        };
        assert!(spec
            .clone()
            .into_config()
            .unwrap_err()
            .contains("granularity"));
        spec.granularity = "ion".into();
        spec.precision = "quad".into();
        assert!(spec
            .clone()
            .into_config()
            .unwrap_err()
            .contains("precision"));
        spec.precision = "double".into();
        spec.max_z = 99;
        assert!(spec.clone().into_config().unwrap_err().contains("max_z"));
        spec.max_z = 8;
        spec.math = "fuzzy".into();
        assert!(spec.clone().into_config().unwrap_err().contains("math"));
        spec.math = "vector".into();
        spec.temperatures_k.clear();
        assert!(spec.into_config().is_err());
    }

    #[test]
    fn serialization_is_stable() {
        let spec = RunSpec::default();
        let json = spec.to_json();
        let back = RunSpec::from_json(&json).unwrap();
        // The writer emits shortest-round-trip floats, so the spec
        // survives a serialize/parse cycle exactly.
        assert_eq!(spec, back);
        for rule in [
            RuleSpec::Romberg { k: 9 },
            RuleSpec::GaussLegendre { order: 21 },
        ] {
            let spec = RunSpec {
                rule,
                fused: false,
                math: "vector".to_string(),
                pack_threshold: 40,
                tune: true,
                tune_epoch: 32,
                tuner_patience: 3,
                tuner_step: 16,
                ..RunSpec::default()
            };
            assert_eq!(spec, RunSpec::from_json(&spec.to_json()).unwrap());
        }
    }

    #[test]
    fn tuner_fields_materialize_and_share_the_default_surface() {
        // The spec's defaults must be exactly the shared TuningConfig
        // surface (satellite: one knob surface for every entry point).
        let d = RunSpec::default();
        let shared = hybrid_sched::TuningConfig::default();
        assert_eq!(d.tune, shared.enabled);
        assert_eq!(d.tune_epoch, shared.epoch_tasks);
        assert_eq!(d.tuner_patience, shared.patience);
        assert_eq!(d.tuner_step, shared.step);

        let json = r#"{
            "max_z": 4,
            "bins": 16,
            "tune": true,
            "tune_epoch": 16,
            "tuner_patience": 4,
            "tuner_step": 2,
            "rule": "simpson",
            "panels": 32
        }"#;
        let cfg = RunSpec::from_json(json).unwrap().into_config().unwrap();
        assert!(cfg.tuning.enabled);
        assert_eq!(cfg.tuning.epoch_tasks, 16);
        assert_eq!(cfg.tuning.patience, 4);
        assert_eq!(cfg.tuning.step, 2);
    }

    #[test]
    fn math_and_pack_fields_materialize() {
        let json = r#"{
            "max_z": 4,
            "bins": 16,
            "math": "vector",
            "pack_threshold": 25,
            "rule": "simpson",
            "panels": 32
        }"#;
        let cfg = RunSpec::from_json(json).unwrap().into_config().unwrap();
        assert_eq!(cfg.math, quadrature::MathMode::Vector);
        assert_eq!(cfg.pack_threshold, 25);
    }
}
