//! Serializable run specifications — "a configuration file", the second
//! source of parameter spaces paper Fig. 1 names.
//!
//! A [`RunSpec`] is the JSON-friendly description of a hybrid run: it
//! owns no atomic database or device handles, just the knobs. The
//! `hspec` CLI and batch scripts deserialize one and call
//! [`RunSpec::into_config`].

use std::sync::Arc;

use gpu_sim::{DeviceRule, Precision};
use rrc_spectral::{EnergyGrid, Integrator, ParameterSpace};
use serde::{Deserialize, Serialize};

use crate::runtime::HybridConfig;
use crate::task::Granularity;

/// The integration rule, JSON-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "rule", rename_all = "snake_case")]
pub enum RuleSpec {
    /// Composite Simpson (paper GPU default: 64 panels).
    Simpson {
        /// Panels per bin.
        panels: usize,
    },
    /// Romberg with k dichotomy levels.
    Romberg {
        /// Dichotomy levels.
        k: u32,
    },
    /// Fixed-order Gauss–Legendre.
    GaussLegendre {
        /// Points per bin.
        order: usize,
    },
}

impl From<RuleSpec> for DeviceRule {
    fn from(spec: RuleSpec) -> DeviceRule {
        match spec {
            RuleSpec::Simpson { panels } => DeviceRule::Simpson { panels },
            RuleSpec::Romberg { k } => DeviceRule::Romberg { k },
            RuleSpec::GaussLegendre { order } => DeviceRule::GaussLegendre { order },
        }
    }
}

/// A complete, file-loadable description of one hybrid run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct RunSpec {
    /// Database cutoff element (31 = the full 496-ion census).
    pub max_z: u8,
    /// Energy bins over the waveband.
    pub bins: usize,
    /// Waveband in eV (`[min, max]`); defaults to the paper's 10–45 Å.
    pub band_ev: [f64; 2],
    /// Sampled temperatures, kelvin.
    pub temperatures_k: Vec<f64>,
    /// Sampled densities, cm^-3.
    pub densities_cm3: Vec<f64>,
    /// MPI-style rank count.
    pub ranks: usize,
    /// Simulated GPU count.
    pub gpus: usize,
    /// Maximum queue length.
    pub max_queue_len: u64,
    /// `"ion"` or `"level"`.
    pub granularity: String,
    /// Device rule. Unlike the other fields this one is required in
    /// JSON (serde cannot default a flattened tagged enum): e.g.
    /// `"rule": "simpson", "panels": 64`.
    #[serde(flatten)]
    pub rule: RuleSpec,
    /// `"single"` or `"double"` kernel arithmetic.
    pub precision: String,
    /// Outstanding submissions per rank (1 = synchronous).
    pub async_window: usize,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            max_z: 31,
            bins: 400,
            band_ev: [
                rrc_spectral::HC_EV_ANGSTROM / 45.0,
                rrc_spectral::HC_EV_ANGSTROM / 10.0,
            ],
            temperatures_k: vec![3.5e6],
            densities_cm3: vec![1.0],
            ranks: 8,
            gpus: 2,
            max_queue_len: 6,
            granularity: "ion".to_string(),
            rule: RuleSpec::Simpson { panels: 64 },
            precision: "double".to_string(),
            async_window: 1,
        }
    }
}

impl RunSpec {
    /// Load from a JSON string.
    ///
    /// # Errors
    /// Returns the serde error message on malformed input.
    pub fn from_json(json: &str) -> Result<RunSpec, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Materialize into a runnable [`HybridConfig`] (generates the
    /// database).
    ///
    /// # Errors
    /// Rejects out-of-range or unknown enum-like fields.
    pub fn into_config(self) -> Result<HybridConfig, String> {
        if self.max_z == 0 || self.max_z > atomdb::MAX_Z {
            return Err(format!("max_z must be 1..={}", atomdb::MAX_Z));
        }
        if self.temperatures_k.is_empty() || self.densities_cm3.is_empty() {
            return Err("need at least one temperature and one density".into());
        }
        let granularity = match self.granularity.as_str() {
            "ion" => Granularity::Ion,
            "level" => Granularity::Level,
            other => return Err(format!("granularity must be ion|level, got '{other}'")),
        };
        let precision = match self.precision.as_str() {
            "double" => Precision::Double,
            "single" => Precision::Single,
            other => return Err(format!("precision must be single|double, got '{other}'")),
        };
        let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig {
            max_z: self.max_z,
            ..atomdb::DatabaseConfig::default()
        });
        Ok(HybridConfig {
            db: Arc::new(db),
            grid: EnergyGrid::linear(self.band_ev[0], self.band_ev[1], self.bins.max(1)),
            space: ParameterSpace {
                temperatures_k: self.temperatures_k,
                densities_cm3: self.densities_cm3,
                times_s: vec![0.0],
            },
            ranks: self.ranks.max(1),
            gpus: self.gpus,
            max_queue_len: self.max_queue_len.max(1),
            granularity,
            gpu_rule: self.rule.into(),
            gpu_precision: precision,
            cpu_integrator: Integrator::paper_cpu(),
            async_window: self.async_window.max(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::HybridRunner;

    #[test]
    fn default_spec_materializes() {
        let cfg = RunSpec {
            max_z: 4,
            bins: 16,
            ..RunSpec::default()
        }
        .into_config()
        .unwrap();
        assert_eq!(cfg.grid.bins(), 16);
        assert_eq!(cfg.space.len(), 1);
    }

    #[test]
    fn json_roundtrip_and_run() {
        let json = r#"{
            "max_z": 4,
            "bins": 24,
            "temperatures_k": [2e6, 4e6],
            "gpus": 1,
            "rule": "simpson",
            "panels": 32
        }"#;
        let spec = RunSpec::from_json(json).unwrap();
        assert_eq!(spec.rule, RuleSpec::Simpson { panels: 32 });
        let cfg = spec.into_config().unwrap();
        assert_eq!(cfg.space.len(), 2);
        let report = HybridRunner::new(cfg).run();
        assert_eq!(report.spectra.len(), 2);
        assert!(report.spectra.iter().all(|s| s.total() > 0.0));
    }

    #[test]
    fn bad_fields_are_rejected_with_messages() {
        let mut spec = RunSpec::default();
        spec.granularity = "atom".into();
        assert!(spec.clone().into_config().unwrap_err().contains("granularity"));
        spec.granularity = "ion".into();
        spec.precision = "quad".into();
        assert!(spec.clone().into_config().unwrap_err().contains("precision"));
        spec.precision = "double".into();
        spec.max_z = 99;
        assert!(spec.clone().into_config().unwrap_err().contains("max_z"));
        spec.max_z = 8;
        spec.temperatures_k.clear();
        assert!(spec.into_config().is_err());
    }

    #[test]
    fn serialization_is_stable() {
        let spec = RunSpec::default();
        let json = serde_json::to_string(&spec).unwrap();
        let back = RunSpec::from_json(&json).unwrap();
        // serde_json's default float parsing can drop the last ulp of the
        // band edges; everything else roundtrips exactly.
        assert!((spec.band_ev[0] - back.band_ev[0]).abs() < 1e-9);
        assert!((spec.band_ev[1] - back.band_ev[1]).abs() < 1e-9);
        let (mut a, mut b) = (spec, back);
        a.band_ev = [0.0, 1.0];
        b.band_ev = [0.0, 1.0];
        assert_eq!(a, b);
    }
}
