//! The per-task cost model feeding cost-aware placement.
//!
//! The scheduler's weighted policy (`hybrid_sched::SchedPolicy::
//! CostAware`) needs an *a-priori* estimate of how much work an ion
//! task carries. The dominant work of the RRC hot path is one bin
//! integral per (level, in-window bin) pair — the fused path and the
//! SIMT kernel both iterate exactly that set — so the estimate here
//! counts it exactly, reusing the same `level_window` /
//! `window_bin_range` helpers the execution paths use. The absolute
//! scale is irrelevant (the scheduler compares backlogs and calibrates
//! seconds-per-unit online from observed completions); what matters is
//! that the *ratios* track reality, and bins-touched tracks the fused
//! path's work measure one-to-one.

use std::ops::Range;

use atomdb::AtomDatabase;
use rrc_spectral::calculator::{level_window, window_bin_range};
use rrc_spectral::params::GridPoint;

/// Estimated work units of one ion task: the number of (level,
/// in-window bin) integrals the task will evaluate, plus one unit per
/// level for the per-level setup (integrand preparation), floored at 1
/// so even an out-of-window task reserves nonzero weight.
///
/// An Fe-like ion with dozens of deeply bound levels sweeps wide bin
/// windows and costs orders of magnitude more than ground-state H —
/// exactly the skew that breaks count-based placement.
#[must_use]
pub fn ion_task_cost(
    db: &AtomDatabase,
    ion_index: usize,
    level_range: Range<usize>,
    point: &GridPoint,
    bins: &[(f64, f64)],
) -> u64 {
    let levels = db.levels_by_index(ion_index);
    let range = level_range.start.min(levels.len())..level_range.end.min(levels.len());
    let kt = point.kt_ev();
    let mut units = 0u64;
    for level in &levels[range] {
        let (threshold, cutoff) = level_window(level.binding_energy_ev, kt);
        let (skip, end, _) = window_bin_range(bins, threshold, cutoff);
        units += 1 + (end - skip) as u64;
    }
    units.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomdb::DatabaseConfig;
    use rrc_spectral::grid::EnergyGrid;

    fn db() -> AtomDatabase {
        AtomDatabase::generate(DatabaseConfig::default())
    }

    fn point() -> GridPoint {
        GridPoint {
            temperature_k: 1.0e7,
            density_cm3: 1.0,
            time_s: 0.0,
            index: 0,
        }
    }

    #[test]
    fn ion_costs_are_strongly_skewed_across_the_periodic_table() {
        // The skew that breaks count-based placement: level count
        // varies 4x across ions, and — more importantly — deeply bound
        // levels of stripped heavy ions fall entirely outside the
        // 10-45 Å waveband (zero in-window bins) while light-ion
        // windows blanket it. Costs must therefore spread far wider
        // than the level counts alone.
        let db = db();
        let grid = EnergyGrid::paper_waveband(128);
        let bins = grid.bin_pairs();
        let p = point();
        let costs: Vec<u64> = (0..db.ions().len())
            .map(|i| {
                let n = db.levels_by_index(i).len();
                ion_task_cost(&db, i, 0..n, &p, &bins)
            })
            .collect();
        let max = *costs.iter().max().unwrap();
        let min = *costs.iter().min().unwrap();
        assert!(min >= 1);
        assert!(
            max >= 10 * min,
            "expected strong skew across ions: min {min}, max {max}"
        );
    }

    #[test]
    fn empty_or_out_of_range_tasks_still_cost_one_unit() {
        let db = db();
        let grid = EnergyGrid::paper_waveband(128);
        let bins = grid.bin_pairs();
        let p = point();
        assert_eq!(ion_task_cost(&db, 0, 0..0, &p, &bins), 1);
        // A range past the level list clamps instead of panicking.
        let n = db.levels_by_index(0).len();
        assert_eq!(
            ion_task_cost(&db, 0, n + 5..n + 9, &p, &bins),
            1,
            "clamped empty range"
        );
    }

    #[test]
    fn cost_scales_with_level_count() {
        let db = db();
        let grid = EnergyGrid::paper_waveband(128);
        let bins = grid.bin_pairs();
        let p = point();
        // Pick an ion with several levels; more levels never cost less.
        let (i, _) = db
            .ions()
            .iter()
            .enumerate()
            .max_by_key(|(i, _)| db.levels_by_index(*i).len())
            .unwrap();
        let n = db.levels_by_index(i).len();
        assert!(n >= 2, "need a multi-level ion");
        let one = ion_task_cost(&db, i, 0..1, &p, &bins);
        let all = ion_task_cost(&db, i, 0..n, &p, &bins);
        assert!(all > one);
    }

    #[test]
    fn hotter_plasma_widens_windows_and_cost() {
        let db = db();
        let grid = EnergyGrid::paper_waveband(128);
        let bins = grid.bin_pairs();
        let (i, _) = db
            .ions()
            .iter()
            .enumerate()
            .max_by_key(|(i, _)| db.levels_by_index(*i).len())
            .unwrap();
        let n = db.levels_by_index(i).len();
        let cold = GridPoint {
            temperature_k: 1.0e5,
            density_cm3: 1.0,
            time_s: 0.0,
            index: 0,
        };
        let hot = GridPoint {
            temperature_k: 1.0e8,
            density_cm3: 1.0,
            time_s: 0.0,
            index: 0,
        };
        let cold_cost = ion_task_cost(&db, i, 0..n, &cold, &bins);
        let hot_cost = ion_task_cost(&db, i, 0..n, &hot, &bins);
        assert!(
            hot_cost >= cold_cost,
            "wider 40kT window cannot shrink the bin count: {cold_cost} vs {hot_cost}"
        );
    }
}
