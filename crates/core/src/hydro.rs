//! Synthetic hydrodynamic snapshots.
//!
//! Paper Fig. 1: "The parameter space is often given by a result of
//! astrophysical simulation or a configuration file." This module is
//! that upstream simulation, in miniature: the Sedov–Taylor self-similar
//! blast wave — the canonical analytic supernova-remnant solution —
//! sampled into the (temperature, density, time) grid points the
//! spectral pipeline consumes, plus per-tracer plasma histories for the
//! NEI pipeline.

use rrc_spectral::ParameterSpace;

/// Physical setup of a Sedov–Taylor blast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SedovBlast {
    /// Explosion energy in erg (canonical supernova: 1e51).
    pub energy_erg: f64,
    /// Ambient hydrogen number density, cm^-3.
    pub ambient_cm3: f64,
    /// Adiabatic index (monatomic: 5/3).
    pub gamma: f64,
}

impl Default for SedovBlast {
    fn default() -> Self {
        SedovBlast {
            energy_erg: 1e51,
            ambient_cm3: 1.0,
            gamma: 5.0 / 3.0,
        }
    }
}

/// Mean particle mass of a fully ionized cosmic plasma, grams.
const MU_M_H: f64 = 0.6 * 1.6726e-24;
/// Boltzmann constant, erg/K.
const K_B_ERG: f64 = 1.380_649e-16;

impl SedovBlast {
    /// Shock radius at time `t_s` (seconds), cm:
    /// `R = xi (E t^2 / rho)^(1/5)` with `xi ~ 1.15` for gamma = 5/3.
    #[must_use]
    pub fn shock_radius_cm(&self, t_s: f64) -> f64 {
        let rho = self.ambient_cm3 * 1.4 * 1.6726e-24; // g/cm^3
        1.15 * (self.energy_erg * t_s * t_s / rho).powf(0.2)
    }

    /// Shock velocity at time `t_s`, cm/s (`dR/dt = 2R/5t`).
    #[must_use]
    pub fn shock_velocity_cm_s(&self, t_s: f64) -> f64 {
        if t_s <= 0.0 {
            return 0.0;
        }
        0.4 * self.shock_radius_cm(t_s) / t_s
    }

    /// Immediate post-shock temperature at time `t_s`, kelvin
    /// (strong-shock jump: `T = 3 mu m_H v^2 / 16 k`).
    #[must_use]
    pub fn postshock_temperature_k(&self, t_s: f64) -> f64 {
        let v = self.shock_velocity_cm_s(t_s);
        3.0 * MU_M_H * v * v / (16.0 * K_B_ERG)
    }

    /// Immediate post-shock electron density, cm^-3 (strong-shock
    /// compression of 4 for gamma = 5/3, times ~1.2 electrons per H).
    #[must_use]
    pub fn postshock_density_cm3(&self) -> f64 {
        let compression = (self.gamma + 1.0) / (self.gamma - 1.0);
        self.ambient_cm3 * compression * 1.2
    }

    /// Interior profile at fraction `x = r/R` of the shock radius
    /// (`0 < x <= 1`), as `(temperature, electron density)` at time
    /// `t_s`. Uses the standard approximate interior scalings: density
    /// drops steeply toward the centre, temperature rises to keep
    /// pressure roughly flat.
    #[must_use]
    pub fn interior(&self, x: f64, t_s: f64) -> (f64, f64) {
        let x = x.clamp(1e-3, 1.0);
        let t_shock = self.postshock_temperature_k(t_s);
        let n_shock = self.postshock_density_cm3();
        // rho/rho_shock ~ x^{9/(gamma-1)/2}-ish; use the common x^9
        // fit for gamma = 5/3 truncated so the centre stays finite.
        let density_factor = x.powf(9.0).max(1e-4);
        // Pressure ~ flat in the interior: T ~ P/rho.
        let temperature = (t_shock / density_factor).min(t_shock * 1e4);
        (temperature, n_shock * density_factor)
    }

    /// Sample the remnant at `t_s` into a [`ParameterSpace`]: `shells`
    /// radial shells between the centre and the shock. Every shell is
    /// one grid point of the spectral pipeline.
    #[must_use]
    pub fn snapshot(&self, t_s: f64, shells: usize) -> ParameterSpace {
        let shells = shells.max(1);
        let mut temperatures = Vec::with_capacity(shells);
        let mut densities = Vec::with_capacity(shells);
        for i in 0..shells {
            let x = (i as f64 + 0.5) / shells as f64;
            let (t, _n) = self.interior(x, t_s);
            temperatures.push(t);
        }
        // ParameterSpace is a grid; to keep one point per shell we put
        // the density axis at a single representative value and fold the
        // per-shell density into the tracer histories instead.
        densities.push(self.postshock_density_cm3());
        ParameterSpace {
            temperatures_k: temperatures,
            densities_cm3: densities,
            times_s: vec![t_s],
        }
    }

    /// The plasma history of a tracer swept up by the shock at
    /// `t_sweep` and observed until `t_end`: cold ambient gas before,
    /// post-shock conditions after (adiabatic decay of the remnant
    /// sampled at `samples` epochs).
    #[must_use]
    pub fn tracer_history(&self, t_sweep: f64, t_end: f64, samples: usize) -> nei::PlasmaHistory {
        let samples = samples.max(2);
        let mut points = vec![nei::PlasmaSample {
            time_s: 0.0,
            temperature_k: 1e4, // ambient ISM
            electron_density: self.ambient_cm3 * 1.2,
        }];
        // The sweep-up jump.
        points.push(nei::PlasmaSample {
            time_s: (t_sweep * (1.0 - 1e-6)).max(1e-3),
            temperature_k: 1e4,
            electron_density: self.ambient_cm3 * 1.2,
        });
        for k in 0..samples {
            let t = t_sweep + (t_end - t_sweep) * k as f64 / (samples - 1) as f64;
            points.push(nei::PlasmaSample {
                time_s: t.max(t_sweep),
                temperature_k: self.postshock_temperature_k(t.max(t_sweep)),
                electron_density: self.postshock_density_cm3(),
            });
        }
        // Deduplicate identical/non-increasing times defensively.
        points.dedup_by(|b, a| b.time_s <= a.time_s);
        nei::PlasmaHistory::new(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const YEAR_S: f64 = 3.156e7;

    #[test]
    fn shock_radius_grows_as_t_to_two_fifths() {
        let blast = SedovBlast::default();
        let r1 = blast.shock_radius_cm(100.0 * YEAR_S);
        let r2 = blast.shock_radius_cm(3200.0 * YEAR_S);
        let exponent = (r2 / r1).ln() / 32f64.ln();
        assert!((exponent - 0.4).abs() < 1e-9, "exponent {exponent}");
    }

    #[test]
    fn young_remnant_is_x_ray_hot() {
        // A few hundred years old: tens of millions of kelvin — the
        // regime of the paper's spectra.
        let blast = SedovBlast::default();
        let t = blast.postshock_temperature_k(400.0 * YEAR_S);
        assert!(t > 1e6 && t < 1e9, "T = {t:.3e} K");
    }

    #[test]
    fn remnant_cools_as_it_expands() {
        let blast = SedovBlast::default();
        let young = blast.postshock_temperature_k(100.0 * YEAR_S);
        let old = blast.postshock_temperature_k(10_000.0 * YEAR_S);
        assert!(old < young / 10.0);
    }

    #[test]
    fn compression_is_four_for_monatomic_gas() {
        let blast = SedovBlast::default();
        assert!((blast.postshock_density_cm3() / (1.2 * 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn interior_is_hotter_and_thinner_than_the_rim() {
        let blast = SedovBlast::default();
        let t = 1000.0 * YEAR_S;
        let (t_in, n_in) = blast.interior(0.3, t);
        let (t_rim, n_rim) = blast.interior(1.0, t);
        assert!(t_in > t_rim);
        assert!(n_in < n_rim);
    }

    #[test]
    fn snapshot_yields_one_point_per_shell() {
        let blast = SedovBlast::default();
        let space = blast.snapshot(500.0 * YEAR_S, 12);
        assert_eq!(space.len(), 12);
        assert!(space.points().all(|p| p.temperature_k > 0.0));
    }

    #[test]
    fn tracer_history_is_monotonic_and_shocked() {
        let blast = SedovBlast::default();
        let history = blast.tracer_history(200.0 * YEAR_S, 2000.0 * YEAR_S, 8);
        let samples = history.samples();
        for pair in samples.windows(2) {
            assert!(pair[0].time_s < pair[1].time_s);
        }
        // Before the sweep: ambient; after: X-ray hot.
        let (t_before, _) = history.at(100.0 * YEAR_S);
        let (t_after, _) = history.at(300.0 * YEAR_S);
        assert!(t_before < 2e4);
        assert!(t_after > 1e6);
    }

    #[test]
    fn tracer_history_drives_the_nei_solver() {
        let blast = SedovBlast::default();
        let history = blast.tracer_history(200.0 * YEAR_S, 5000.0 * YEAR_S, 6);
        let solver = nei::LsodaSolver::default();
        let mut x = vec![0.0; 9];
        x[0] = 1.0;
        history.integrate(&solver, 8, &mut x, 0.0, 5000.0 * YEAR_S, 4);
        let sum: f64 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-7);
        // The shock must have ionized oxygen measurably.
        assert!(x[0] < 0.9, "neutral fraction {}", x[0]);
    }
}
