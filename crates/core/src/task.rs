//! Task definitions: the paper's two scheduling granularities.

/// The unit of work handed to the scheduler.
///
/// Paper §III-B: "both the energy level and the ion ... can be used to
/// define the task scope". Ion granularity batches all of an ion's
/// levels (tens of thousands of integrals) into one kernel launch and
/// one result copy; Level granularity launches per level. Fig. 3 shows
/// Ion winning by ~2× — the headline result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One task = one ion (coarse; the paper's recommendation).
    Ion,
    /// One task = one energy level of one ion (fine; the baseline).
    Level,
}

/// One schedulable task, with the bookkeeping both execution paths
/// need: identity (for result routing) and work/transfer measures (for
/// the cost model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// Grid-point index the task belongs to.
    pub point: usize,
    /// Ion index within the database enumeration.
    pub ion_index: usize,
    /// For [`Granularity::Level`] tasks, which level of the ion
    /// (index into the ion's level list); `None` for ion tasks.
    pub level: Option<u16>,
    /// Work measure: integrand evaluations the task performs on the
    /// full-size (paper-scale) grid.
    pub evals: u64,
    /// Host-to-device bytes (parameters; small).
    pub bytes_in: u64,
    /// Device-to-host bytes (the per-bin emissivity array).
    pub bytes_out: u64,
}

impl TaskSpec {
    /// Work of this task relative to `mean_evals` — the scale factor the
    /// calibration applies to mean service times.
    #[must_use]
    pub fn relative_work(&self, mean_evals: f64) -> f64 {
        if mean_evals <= 0.0 {
            1.0
        } else {
            self.evals as f64 / mean_evals
        }
    }
}

/// Where a task ended up running, with its virtual-time cost — the
/// per-task record the experiment drivers aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Ran on the GPU with this device index.
    Gpu {
        /// Device index.
        device: usize,
    },
    /// Fell back to the submitting rank's CPU core.
    Cpu,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_work_scales_linearly() {
        let t = TaskSpec {
            point: 0,
            ion_index: 1,
            level: None,
            evals: 300,
            bytes_in: 64,
            bytes_out: 800,
        };
        assert!((t.relative_work(100.0) - 3.0).abs() < 1e-12);
        assert!((t.relative_work(300.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_mean_defaults_to_unity() {
        let t = TaskSpec {
            point: 0,
            ion_index: 0,
            level: Some(2),
            evals: 10,
            bytes_in: 1,
            bytes_out: 1,
        };
        assert_eq!(t.relative_work(0.0), 1.0);
    }
}
