//! The discrete-event replica of the hybrid runtime.
//!
//! Replays, on a virtual clock, exactly the structure of the real
//! runtime: 24 rank processes each owning one grid point's task list;
//! the shared-memory scheduler (same [`hybrid_sched::policy`]
//! function); per-GPU FIFO queues drained serially (Fermi) or with a
//! concurrency window (Hyper-Q); a host/PCIe stage shared by all
//! devices; and CPU fallback with memory contention across active
//! ranks. Service times come from [`crate::calib`].
//!
//! Everything the paper measures falls out of the run:
//! makespan (Fig. 3, Fig. 4, Table II), the task split between GPU and
//! CPU (Fig. 5, Table I), and each device's time-weighted load
//! histogram (Fig. 6, Table I's "load ≥ 3" column).

use desim::{LoadHistogram, ResourceId, Simulation, TimeSeries};
use hybrid_sched::policy::{select_device_with, select_device_work_aware, Selection, TieBreak};

use crate::calib::Calibration;
use crate::task::Granularity;
use crate::workload::SpectralWorkload;

/// One task as the virtual-time model sees it: three service times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesTask {
    /// Host-side preparation seconds on the rank before the task can be
    /// submitted anywhere (or before its CPU fallback starts).
    pub prep_s: f64,
    /// Seconds on the stage serialized across devices (host + PCIe).
    pub shared_s: f64,
    /// Seconds of device-exclusive compute.
    pub exclusive_s: f64,
    /// Seconds on an uncontended CPU core if the task falls back.
    pub cpu_s: f64,
}

/// Configuration of one virtual-time run.
#[derive(Debug, Clone)]
pub struct DesConfig {
    /// Per-rank task lists (rank = MPI process; the paper assigns one
    /// grid point per rank).
    pub rank_tasks: Vec<Vec<DesTask>>,
    /// Number of GPU devices (0 = pure CPU/MPI run).
    pub gpus: usize,
    /// Maximum queue length per device (paper's `lMAX`).
    pub max_queue_len: u64,
    /// Tasks concurrently *active* per device (1 = Fermi serial;
    /// >1 models Kepler Hyper-Q).
    pub concurrent_per_gpu: usize,
    /// CPU contention coefficient (see
    /// [`Calibration::contention_alpha`]).
    pub contention_alpha: f64,
    /// Outstanding GPU tasks a rank may have in flight before it blocks.
    /// `1` is the paper's synchronous mode ("the CPU will be blocked
    /// until the result is back"); larger windows implement the
    /// asynchronous queuing the paper's §V names as future work.
    pub async_window: usize,
    /// Tie-breaking rule at equal load (paper: by history count).
    pub tie_break: TieBreak,
    /// Select devices by outstanding *work* instead of task count — the
    /// improved balancing scheme the paper's §V lists as ongoing work.
    pub work_aware: bool,
}

/// Results of one virtual-time run.
#[derive(Debug, Clone)]
pub struct DesReport {
    /// Virtual seconds until the last task completed.
    pub makespan_s: f64,
    /// Tasks executed on GPUs.
    pub gpu_tasks: u64,
    /// Tasks that fell back to CPUs.
    pub cpu_tasks: u64,
    /// `gpu_tasks / total * 100` (paper Fig. 5 / Table I).
    pub gpu_ratio_percent: f64,
    /// Per-device time-weighted load histograms (paper Fig. 6).
    pub device_load: Vec<LoadHistogram>,
    /// Per-device history task counts.
    pub device_history: Vec<u64>,
    /// Queue-depth trajectory of device 0 (change points), for timeline
    /// plots alongside Fig. 6's aggregate histogram.
    pub device0_timeline: TimeSeries,
}

struct World {
    loads: Vec<u64>,
    /// Outstanding device work in nanoseconds of exclusive service.
    outstanding_work: Vec<u64>,
    histories: Vec<u64>,
    load_hist: Vec<LoadHistogram>,
    device0_timeline: TimeSeries,
    devices: Vec<ResourceId>,
    bus: Option<ResourceId>,
    max_queue_len: u64,
    contention_alpha: f64,
    cpu_active: usize,
    gpu_tasks: u64,
    cpu_tasks: u64,
    rank_tasks: Vec<std::collections::VecDeque<DesTask>>,
    async_window: usize,
    tie_break: TieBreak,
    work_aware: bool,
    /// Outstanding GPU submissions per rank.
    outstanding: Vec<usize>,
    /// Ranks that hit the window and wait for a completion.
    blocked: Vec<bool>,
}

/// Run the model to completion and report.
///
/// # Panics
/// Panics if `rank_tasks` is empty.
#[must_use]
pub fn run(config: DesConfig) -> DesReport {
    assert!(!config.rank_tasks.is_empty(), "need at least one rank");
    let gpus = config.gpus;
    let world = World {
        loads: vec![0; gpus],
        outstanding_work: vec![0; gpus],
        histories: vec![0; gpus],
        load_hist: vec![LoadHistogram::new(); gpus],
        device0_timeline: TimeSeries::new(),
        devices: Vec::new(),
        bus: None,
        max_queue_len: config.max_queue_len.max(1),
        contention_alpha: config.contention_alpha,
        cpu_active: 0,
        gpu_tasks: 0,
        cpu_tasks: 0,
        async_window: config.async_window.max(1),
        tie_break: config.tie_break,
        work_aware: config.work_aware,
        outstanding: vec![0; config.rank_tasks.len()],
        blocked: vec![false; config.rank_tasks.len()],
        rank_tasks: config
            .rank_tasks
            .into_iter()
            .map(std::collections::VecDeque::from)
            .collect(),
    };
    let mut sim = Simulation::new(world);
    if gpus > 0 {
        sim.world.bus = Some(sim.create_resource(1));
        for _ in 0..gpus {
            let id = sim.create_resource(config.concurrent_per_gpu.max(1));
            sim.world.devices.push(id);
        }
        for hist in &mut sim.world.load_hist {
            hist.record(0.0, 0);
        }
    }
    let ranks = sim.world.rank_tasks.len();
    for rank in 0..ranks {
        sim.schedule(0.0, move |sim| rank_next(sim, rank));
    }
    let makespan = sim.run();

    let world = &mut sim.world;
    for (d, hist) in world.load_hist.iter_mut().enumerate() {
        hist.record(makespan, world.loads[d] as u32);
    }
    let total = world.gpu_tasks + world.cpu_tasks;
    DesReport {
        makespan_s: makespan,
        gpu_tasks: world.gpu_tasks,
        cpu_tasks: world.cpu_tasks,
        gpu_ratio_percent: if total == 0 {
            0.0
        } else {
            100.0 * world.gpu_tasks as f64 / total as f64
        },
        device_load: std::mem::take(&mut world.load_hist),
        device_history: world.histories.clone(),
        device0_timeline: std::mem::take(&mut world.device0_timeline),
    }
}

/// The rank state machine: take the next task, run `SCHE-ALLOC`,
/// follow either the GPU chain (device queue → shared stage → exclusive
/// compute → `SCHE-FREE`) or the CPU fallback, then recurse.
fn rank_next(sim: &mut Simulation<World>, rank: usize) {
    let Some(task) = sim.world.rank_tasks[rank].pop_front() else {
        return; // rank finished its subspace
    };
    if task.prep_s > 0.0 {
        // Prepare on the rank, then submit (prep must finish before the
        // scheduler is consulted — the paper's "MPI processes will
        // prepare tasks, and dispatch each task").
        let mut submitted = task;
        submitted.prep_s = 0.0;
        sim.schedule(task.prep_s, move |sim| {
            sim.world.rank_tasks[rank].push_front(submitted);
            rank_next(sim, rank);
        });
        return;
    }
    let selection = if sim.world.work_aware {
        select_device_work_aware(
            &sim.world.loads,
            &sim.world.outstanding_work,
            &sim.world.histories,
            sim.world.max_queue_len,
        )
    } else {
        select_device_with(
            &sim.world.loads,
            &sim.world.histories,
            sim.world.max_queue_len,
            sim.world.tie_break,
        )
    };
    match selection {
        Selection::Device(d) => {
            let now = sim.now();
            let world = &mut sim.world;
            world.loads[d] += 1;
            world.outstanding_work[d] += (task.exclusive_s * 1e9) as u64;
            world.histories[d] += 1;
            world.load_hist[d].record(now, world.loads[d] as u32);
            if d == 0 {
                world.device0_timeline.record(now, world.loads[0] as f64);
            }
            world.outstanding[rank] += 1;
            let window = world.async_window;
            let proceed_now = world.outstanding[rank] < window;
            if proceed_now {
                // Asynchronous mode: the rank moves on while the task is
                // queued; it blocks only when the window fills.
                sim.schedule(0.0, move |sim| rank_next(sim, rank));
            } else {
                sim.world.blocked[rank] = true;
            }
            let device = sim.world.devices[d];
            sim.acquire(device, move |sim| {
                let bus = sim.world.bus.expect("gpus > 0 on this path");
                sim.acquire(bus, move |sim| {
                    sim.schedule(task.shared_s, move |sim| {
                        let bus = sim.world.bus.expect("gpus > 0 on this path");
                        sim.release(bus);
                        sim.schedule(task.exclusive_s, move |sim| {
                            let now = sim.now();
                            let world = &mut sim.world;
                            world.loads[d] -= 1;
                            world.outstanding_work[d] = world.outstanding_work[d]
                                .saturating_sub((task.exclusive_s * 1e9) as u64);
                            world.load_hist[d].record(now, world.loads[d] as u32);
                            if d == 0 {
                                world.device0_timeline.record(now, world.loads[0] as f64);
                            }
                            world.gpu_tasks += 1;
                            world.outstanding[rank] -= 1;
                            let resume = world.blocked[rank];
                            world.blocked[rank] = false;
                            let device = world.devices[d];
                            sim.release(device);
                            if resume {
                                rank_next(sim, rank);
                            }
                        });
                    });
                });
            });
        }
        Selection::AllBusy => {
            let world = &mut sim.world;
            world.cpu_active += 1;
            let factor = 1.0 + world.contention_alpha * (world.cpu_active - 1) as f64;
            sim.schedule(task.cpu_s * factor, move |sim| {
                sim.world.cpu_active -= 1;
                sim.world.cpu_tasks += 1;
                rank_next(sim, rank);
            });
        }
    }
}

/// Build the spectral-workload configuration: one rank per grid point,
/// service times from the calibration, optional Romberg complexity
/// scaling of the GPU compute (`romberg_k`; the CPU fallback stays
/// QAGS, see [`crate::calib`]).
#[must_use]
pub fn spectral_config(
    workload: &SpectralWorkload,
    calib: &Calibration,
    granularity: Granularity,
    gpus: usize,
    max_queue_len: u64,
    romberg_k: Option<u32>,
) -> DesConfig {
    let svc = calib.gpu_service(workload, granularity);
    let cpu_mean = calib.cpu_task_s(workload, granularity);
    let prep_mean = calib.host_prep_s(workload, granularity);
    let mean_evals = workload.mean_evals(granularity);
    let factor = romberg_k.map_or(1.0, Calibration::romberg_factor);
    let rank_tasks = (0..workload.points)
        .map(|point| {
            workload
                .point_tasks(point, granularity)
                .into_iter()
                .map(|t| {
                    let rel = t.relative_work(mean_evals);
                    let prep = prep_mean * rel;
                    DesTask {
                        prep_s: prep,
                        // Transfers move the same per-task result array
                        // regardless of the ion's level count; only the
                        // compute scales with work.
                        shared_s: svc.shared_s,
                        exclusive_s: svc.exclusive_s * rel * factor,
                        // The serial 800 s/point anchor includes the
                        // preparation, so the fallback compute is the
                        // remainder.
                        cpu_s: (cpu_mean * rel - prep).max(cpu_mean * rel * 0.5),
                    }
                })
                .collect()
        })
        .collect();
    DesConfig {
        rank_tasks,
        gpus,
        max_queue_len,
        concurrent_per_gpu: 1,
        contention_alpha: calib.contention_alpha(),
        async_window: 1,
        tie_break: TieBreak::History,
        work_aware: false,
    }
}

/// Build a scaled NEI configuration: `tasks_per_rank` identical tasks
/// per rank with the Table II service anchors. The paper runs 10⁸
/// tasks; simulating a 1/`scale` subset and multiplying the makespan
/// back is exact in the steady-state regime (tasks ≫ ranks × queue
/// length), which holds by orders of magnitude.
#[must_use]
pub fn nei_config(
    calib: &Calibration,
    ranks: usize,
    tasks_per_rank: usize,
    gpus: usize,
    max_queue_len: u64,
) -> DesConfig {
    let svc = calib.nei_gpu_service();
    let task = DesTask {
        prep_s: 0.0, // the Table II anchors already include staging
        shared_s: svc.shared_s,
        exclusive_s: svc.exclusive_s,
        cpu_s: calib.nei_cpu_task_s(),
    };
    DesConfig {
        rank_tasks: vec![vec![task; tasks_per_rank]; ranks.max(1)],
        gpus,
        max_queue_len,
        concurrent_per_gpu: 1,
        // The NEI CPU anchor is already the contended 24-rank number.
        contention_alpha: 0.0,
        async_window: 1,
        tie_break: TieBreak::History,
        work_aware: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomdb::{AtomDatabase, DatabaseConfig};

    fn workload() -> SpectralWorkload {
        let db = AtomDatabase::generate(DatabaseConfig::default());
        SpectralWorkload::paper(&db)
    }

    fn uniform_config(ranks: usize, per_rank: usize, gpus: usize, qlen: u64) -> DesConfig {
        let task = DesTask {
            prep_s: 0.0,
            shared_s: 0.001,
            exclusive_s: 0.002,
            cpu_s: 0.3,
        };
        DesConfig {
            rank_tasks: vec![vec![task; per_rank]; ranks],
            gpus,
            max_queue_len: qlen,
            concurrent_per_gpu: 1,
            contention_alpha: 0.0338,
            async_window: 1,
            tie_break: TieBreak::History,
            work_aware: false,
        }
    }

    #[test]
    fn conserves_tasks() {
        let report = run(uniform_config(8, 50, 2, 4));
        assert_eq!(report.gpu_tasks + report.cpu_tasks, 400);
        let hist_total: u64 = report.device_history.iter().sum();
        assert_eq!(hist_total, report.gpu_tasks);
    }

    #[test]
    fn pure_cpu_run_matches_contention_model() {
        // No GPUs: every task on CPU at full contention. 24 ranks * 10
        // tasks * 0.3 s * factor / 24 ranks.
        let report = run(uniform_config(24, 10, 0, 4));
        assert_eq!(report.gpu_tasks, 0);
        assert_eq!(report.cpu_tasks, 240);
        let factor = 1.0 + 0.0338 * 23.0;
        let expected = 10.0 * 0.3 * factor;
        assert!(
            (report.makespan_s - expected).abs() / expected < 1e-9,
            "{} vs {}",
            report.makespan_s,
            expected
        );
    }

    #[test]
    fn single_rank_single_gpu_is_serial_chain() {
        let report = run(uniform_config(1, 20, 1, 4));
        assert_eq!(report.gpu_tasks, 20);
        let expected = 20.0 * 0.003;
        assert!((report.makespan_s - expected).abs() < 1e-9);
    }

    #[test]
    fn more_gpus_never_slow_the_run_down_much() {
        let t1 = run(uniform_config(24, 100, 1, 8)).makespan_s;
        let t2 = run(uniform_config(24, 100, 2, 8)).makespan_s;
        let t4 = run(uniform_config(24, 100, 4, 8)).makespan_s;
        assert!(t2 <= t1 * 1.01);
        assert!(t4 <= t2 * 1.01);
        // And 2 GPUs genuinely beat 1 (exclusive stage dominates here).
        assert!(t2 < t1 * 0.75, "t1={t1} t2={t2}");
    }

    #[test]
    fn queue_bound_is_respected() {
        let report = run(uniform_config(24, 50, 2, 3));
        for hist in &report.device_load {
            assert!(hist.max_level() <= 3, "load exceeded qlen");
        }
    }

    #[test]
    fn tiny_queue_pushes_work_to_cpu() {
        let small = run(uniform_config(24, 50, 1, 1));
        let large = run(uniform_config(24, 50, 1, 12));
        assert!(small.cpu_tasks > large.cpu_tasks);
        assert!(small.gpu_ratio_percent < large.gpu_ratio_percent);
    }

    #[test]
    fn device0_timeline_matches_histogram_mean() {
        let report = run(uniform_config(24, 100, 2, 6));
        let hist_mean = report.device_load[0].mean();
        let ts_mean = report.device0_timeline.mean(0.0, report.makespan_s);
        assert!(
            (hist_mean - ts_mean).abs() < 0.05 * hist_mean.max(1.0),
            "histogram {hist_mean} vs timeline {ts_mean}"
        );
        assert!(!report.device0_timeline.is_empty());
    }

    #[test]
    fn deterministic_repeat() {
        let a = run(uniform_config(24, 50, 3, 6));
        let b = run(uniform_config(24, 50, 3, 6));
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.gpu_tasks, b.gpu_tasks);
        assert_eq!(a.device_history, b.device_history);
    }

    #[test]
    fn spectral_serial_baseline_reproduces_800s_per_point() {
        // 1 rank, 0 GPUs, 1 point: the serial APEC anchor.
        let w = workload();
        let calib = Calibration::paper();
        let mut cfg = spectral_config(&w, &calib, Granularity::Ion, 0, 1, None);
        cfg.rank_tasks.truncate(1);
        let report = run(cfg);
        assert!(
            (report.makespan_s - 800.0).abs() / 800.0 < 1e-9,
            "{}",
            report.makespan_s
        );
    }

    #[test]
    fn spectral_mpi_baseline_reproduces_13_5x() {
        let w = workload();
        let calib = Calibration::paper();
        let cfg = spectral_config(&w, &calib, Granularity::Ion, 0, 1, None);
        let report = run(cfg);
        let speedup = 800.0 * 24.0 / report.makespan_s;
        assert!((speedup - 13.5).abs() < 0.5, "speedup {speedup}");
    }

    #[test]
    fn spectral_one_gpu_lands_near_fig3_anchor() {
        let w = workload();
        let calib = Calibration::paper();
        let cfg = spectral_config(&w, &calib, Granularity::Ion, 1, 12, None);
        let report = run(cfg);
        let speedup = 800.0 * 24.0 / report.makespan_s;
        // The anchor is 196.4; queueing effects may move the emergent
        // value a little, but it must land in the neighbourhood.
        assert!(speedup > 150.0 && speedup < 230.0, "speedup {speedup}");
        assert!(report.gpu_ratio_percent > 90.0);
    }

    #[test]
    fn async_window_keeps_results_conserved() {
        let mut cfg = uniform_config(8, 50, 2, 4);
        cfg.async_window = 4;
        let report = run(cfg);
        assert_eq!(report.gpu_tasks + report.cpu_tasks, 400);
    }

    #[test]
    fn async_mode_helps_when_tasks_are_long() {
        // Long GPU tasks with meaningful prep: in synchronous mode ranks
        // idle while waiting; an async window overlaps prep with device
        // time (the paper's SV future-work scenario).
        let task = DesTask {
            prep_s: 0.05,
            shared_s: 0.005,
            exclusive_s: 0.2,
            cpu_s: 10.0,
        };
        // Rank-bound setup: few ranks, plenty of devices — synchronous
        // ranks leave devices idle while they block.
        let base = DesConfig {
            rank_tasks: vec![vec![task; 50]; 2],
            gpus: 4,
            max_queue_len: 8,
            concurrent_per_gpu: 1,
            contention_alpha: 0.0,
            async_window: 1,
            tie_break: TieBreak::History,
            work_aware: false,
        };
        let mut async_cfg = base.clone();
        async_cfg.async_window = 8;
        let sync_t = run(base).makespan_s;
        let async_t = run(async_cfg).makespan_s;
        assert!(
            async_t < sync_t * 0.7,
            "async {async_t} should beat sync {sync_t}"
        );
    }

    #[test]
    fn nei_config_is_uniform_and_scaled() {
        let calib = Calibration::paper();
        let cfg = nei_config(&calib, 24, 100, 2, 8);
        assert_eq!(cfg.rank_tasks.len(), 24);
        assert_eq!(cfg.rank_tasks[0].len(), 100);
        let report = run(cfg);
        assert_eq!(report.gpu_tasks + report.cpu_tasks, 2400);
    }
}
