//! Calibration of the virtual-time model against the paper's anchors.
//!
//! We cannot time a 2011 Xeon/Tesla testbed, so the DES service times
//! are *derived* from the paper's own published numbers, then every
//! other curve (queue-length sweeps, task ratios, load histograms,
//! mid-range GPU counts) is **emergent** from the simulation:
//!
//! * serial APEC: 800 s per grid point on one E5-2640 core, 496 ion
//!   tasks per point → 1.613 s per mean ion task;
//! * 24-rank MPI speedup of 13.5 (not 24) → a memory-contention model
//!   `t_eff = t * (1 + alpha * (active - 1))` with `alpha = 0.0338`;
//! * Fig. 3 endpoints: 1-GPU and 4-GPU speedups pin the two components
//!   of GPU task service — the **shared** stage (host dispatch + PCIe,
//!   serialized across devices) and the **exclusive** stage (on-device
//!   compute, parallel across devices). With devices serially draining
//!   their queues (Fermi), the 1-GPU run costs `N*(shared+exclusive)`
//!   and the 4-GPU run saturates the shared stage at `N*shared`;
//! * Romberg complexity (Fig. 6 / Table I): the GPU's per-task compute
//!   scales by `2^(k-7)` (at `k = 7` the 2^7+1 evaluations per bin
//!   match the Simpson-64 baseline's 129); the CPU fallback stays QAGS,
//!   whose adaptive cost does not scale with `k` — this asymmetry is
//!   what pushes tasks back to the CPU at high `k` (Table I);
//! * Table II (NEI): same construction from its 1-GPU and 4-GPU
//!   anchors.

use crate::task::Granularity;
use crate::workload::SpectralWorkload;

/// Paper-derived anchor constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Seconds one grid point takes on one serial CPU core (paper §I).
    pub serial_point_s: f64,
    /// Speedup of the 24-rank MPI version over serial (paper §IV).
    pub mpi_speedup: f64,
    /// Rank/core count of the testbed.
    pub ranks: usize,
    /// Fig. 3 Ion-granularity speedups at 1 and 4 GPUs.
    pub ion_speedup: (f64, f64),
    /// Fig. 3 Level-granularity speedups at 1 and 4 GPUs.
    pub level_speedup: (f64, f64),
    /// Table II NEI: per-task MPI-only CPU seconds and the 1-/4-GPU
    /// total seconds at paper scale (10⁸ tasks).
    pub nei_mpi_total_s: f64,
    /// Table II: 1-GPU and 4-GPU total times in seconds.
    pub nei_gpu_total_s: (f64, f64),
    /// Paper-scale NEI task count.
    pub nei_tasks: u64,
}

/// Host-side preparation seconds per mean Ion task (building the
/// level/cross-section arrays and staging buffers before submission).
/// Fitted to Fig. 4's queue-length sensitivity: with negligible rank-side
/// latency two queued tasks would already saturate a device and the
/// maximum queue length would not matter; the paper's ~2x gap between
/// queue lengths 2 and 12 pins this at tens of milliseconds.
pub const HOST_PREP_ION_S: f64 = 0.025;

/// One task's GPU service split into the stage serialized across
/// devices (host dispatch + PCIe bus) and the device-exclusive stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuService {
    /// Shared-stage seconds at mean task size.
    pub shared_s: f64,
    /// Device-exclusive seconds at mean task size.
    pub exclusive_s: f64,
}

impl GpuService {
    /// Total service at mean task size.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.shared_s + self.exclusive_s
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::paper()
    }
}

impl Calibration {
    /// The constants as published in the paper.
    #[must_use]
    pub fn paper() -> Calibration {
        Calibration {
            serial_point_s: 800.0,
            mpi_speedup: 13.5,
            ranks: 24,
            ion_speedup: (196.4, 311.4),
            level_speedup: (97.9, 158.5),
            nei_mpi_total_s: 8784.0,
            nei_gpu_total_s: (3137.0, 582.0),
            nei_tasks: 100_000_000,
        }
    }

    /// The CPU memory-contention coefficient `alpha` such that 24 active
    /// ranks are only `mpi_speedup`× faster than one:
    /// `ranks / mpi_speedup = 1 + alpha * (ranks - 1)`.
    #[must_use]
    pub fn contention_alpha(&self) -> f64 {
        if self.ranks <= 1 {
            return 0.0;
        }
        (self.ranks as f64 / self.mpi_speedup - 1.0) / (self.ranks as f64 - 1.0)
    }

    /// Effective CPU slowdown factor with `active` ranks computing
    /// concurrently.
    #[must_use]
    pub fn contention_factor(&self, active: usize) -> f64 {
        1.0 + self.contention_alpha() * (active.saturating_sub(1)) as f64
    }

    /// Serial seconds of the mean task at `granularity` on one
    /// uncontended CPU core (QAGS path).
    #[must_use]
    pub fn cpu_task_s(&self, workload: &SpectralWorkload, granularity: Granularity) -> f64 {
        let tasks_per_point = workload.total_tasks(granularity) as f64 / workload.points as f64;
        self.serial_point_s / tasks_per_point
    }

    /// GPU service of the mean task at `granularity`, derived from the
    /// Fig. 3 anchors (see module docs).
    #[must_use]
    pub fn gpu_service(&self, workload: &SpectralWorkload, granularity: Granularity) -> GpuService {
        let (s1, s4) = match granularity {
            Granularity::Ion => self.ion_speedup,
            Granularity::Level => self.level_speedup,
        };
        let serial_total = self.serial_point_s * workload.points as f64;
        let n = workload.total_tasks(granularity) as f64;
        let total = serial_total / s1 / n; // 1 GPU: N*(shared+exclusive)
        let shared = (serial_total / s4 / n).min(total * 0.95); // 4 GPUs: N*shared
        GpuService {
            shared_s: shared,
            exclusive_s: total - shared,
        }
    }

    /// Host-side preparation time of the mean task at `granularity`
    /// (scales with the task's data volume, i.e. its level count).
    #[must_use]
    pub fn host_prep_s(&self, workload: &SpectralWorkload, granularity: Granularity) -> f64 {
        let ion_mean = workload.mean_evals(Granularity::Ion);
        let mean = workload.mean_evals(granularity);
        if ion_mean <= 0.0 {
            return 0.0;
        }
        HOST_PREP_ION_S * mean / ion_mean
    }

    /// GPU compute scale factor of Romberg level `k` relative to the
    /// Simpson-64 baseline (`2^(k-7)`; paper Table I's "computation
    /// amount/task 2^k").
    #[must_use]
    pub fn romberg_factor(k: u32) -> f64 {
        2f64.powi(k as i32 - 7)
    }

    /// NEI per-task CPU seconds (the pure-MPI path, contention already
    /// folded in because the anchor *is* the 24-rank measurement).
    #[must_use]
    pub fn nei_cpu_task_s(&self) -> f64 {
        self.nei_mpi_total_s * self.ranks as f64 / self.nei_tasks as f64
    }

    /// NEI GPU service from the Table II anchors.
    #[must_use]
    pub fn nei_gpu_service(&self) -> GpuService {
        let n = self.nei_tasks as f64;
        let total = self.nei_gpu_total_s.0 / n;
        let shared = (self.nei_gpu_total_s.1 / n).min(total * 0.95);
        GpuService {
            shared_s: shared,
            exclusive_s: total - shared,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomdb::{AtomDatabase, DatabaseConfig};

    fn workload() -> SpectralWorkload {
        let db = AtomDatabase::generate(DatabaseConfig::default());
        SpectralWorkload::paper(&db)
    }

    #[test]
    fn contention_matches_mpi_anchor() {
        let c = Calibration::paper();
        // 24 ranks at factor f have aggregate speedup 24/f = 13.5.
        let f = c.contention_factor(24);
        assert!((24.0 / f - 13.5).abs() < 1e-9);
        assert_eq!(c.contention_factor(1), 1.0);
    }

    #[test]
    fn cpu_ion_task_is_about_1_6_seconds() {
        let c = Calibration::paper();
        let t = c.cpu_task_s(&workload(), Granularity::Ion);
        assert!((t - 800.0 / 496.0).abs() < 1e-9, "{t}");
    }

    #[test]
    fn ion_gpu_service_matches_fig3_endpoints() {
        let c = Calibration::paper();
        let w = workload();
        let svc = c.gpu_service(&w, Granularity::Ion);
        let n = w.total_tasks(Granularity::Ion) as f64;
        let serial_total = 800.0 * 24.0;
        // 1 GPU: N * total = serial/196.4.
        assert!((n * svc.total_s() - serial_total / 196.4).abs() < 1e-6);
        // 4 GPUs (shared-stage bound): N * shared = serial/311.4.
        assert!((n * svc.shared_s - serial_total / 311.4).abs() < 1e-6);
        // Milli-second scale sanity.
        assert!(svc.total_s() > 5e-3 && svc.total_s() < 12e-3, "{svc:?}");
    }

    #[test]
    fn level_service_is_smaller_but_overhead_heavier() {
        let c = Calibration::paper();
        let w = workload();
        let ion = c.gpu_service(&w, Granularity::Ion);
        let level = c.gpu_service(&w, Granularity::Level);
        assert!(level.total_s() < ion.total_s());
        // Overhead (shared) fraction is the fine-granularity disease.
        let level_frac = level.shared_s / level.total_s();
        assert!(level_frac > 0.4, "shared fraction {level_frac}");
    }

    #[test]
    fn romberg_factor_doubles_per_level() {
        assert_eq!(Calibration::romberg_factor(7), 1.0);
        assert_eq!(Calibration::romberg_factor(9), 4.0);
        assert_eq!(Calibration::romberg_factor(13), 64.0);
    }

    #[test]
    fn nei_anchors_roundtrip() {
        let c = Calibration::paper();
        assert!((c.nei_cpu_task_s() - 8784.0 * 24.0 / 1e8).abs() < 1e-12);
        let svc = c.nei_gpu_service();
        assert!((1e8 * svc.total_s() - 3137.0).abs() < 1e-6);
        assert!((1e8 * svc.shared_s - 582.0).abs() < 1e-6);
        // GPU task is ~67x cheaper than its CPU fallback.
        let ratio = c.nei_cpu_task_s() / svc.total_s();
        assert!(ratio > 30.0 && ratio < 120.0, "ratio {ratio}");
    }

    #[test]
    fn gpu_beats_cpu_per_task_by_fig3_magnitude() {
        let c = Calibration::paper();
        let w = workload();
        let cpu = c.cpu_task_s(&w, Granularity::Ion);
        let gpu = c.gpu_service(&w, Granularity::Ion).total_s();
        // Serial CPU vs serial-through-1-GPU: the Fig. 3 196x.
        assert!((cpu / gpu - 196.4).abs() < 1.0, "{}", cpu / gpu);
    }
}
