//! Device-resident spectra with delta recalculation.
//!
//! The batch pipeline recomputes every per-ion partial from scratch
//! and folds on the host for each plasma state. Real query traffic
//! (parameter sweeps, fan-outs of *similar* states) changes `(T, n_e)`
//! by small amounts between requests, so [`ResidentSpectrum`] keeps
//! the per-ion partials **resident** across requests and answers
//! `recalc(ΔT, Δn_e)` by re-integrating only the *affected ion set* —
//! the ions whose in-window contribution can have changed beyond a
//! tolerance, per [`rrc_spectral::delta::classify_ion`]'s analytic
//! bound over the hydrogenic level windows. Untouched ions' resident
//! partials are reused verbatim (the same `Arc`'d bits), and the
//! abundance-weighted fold runs in one
//! [`gpu_sim::WeightedFoldKernel`] pass, so only the folded spectrum
//! crosses the simulated PCIe link.
//!
//! ## State lifecycle
//!
//! - **Cold** → [`ResidentSpectrum::compute`] fans every ion out
//!   through the engine (cost-aware placement, packing, stealing, and
//!   the resilience ladder all apply), then *installs* the partials:
//!   each GPU-computed partial gets a [`DevicePtr`] allocation on its
//!   home device, modeling the partial staying on-board; CPU-path
//!   partials stay host-side with no device allocation.
//! - **Warm** → [`ResidentSpectrum::recalc`] classifies every ion
//!   between the state its resident partial was computed at and the
//!   requested state. Reusable ions keep their partial *and* its
//!   `computed_at` anchor (so drift across a sweep accumulates into
//!   the bound and eventually forces a refresh — the bound is always
//!   against the bits actually resident, never against the previous
//!   request). The rest are re-fanned-out and their old residency
//!   freed/re-allocated.
//! - **Invalidated** → any resident partial whose home device is lost
//!   poisons the whole state: residency on *live* devices is freed
//!   (the lost device's allocations died with it), the state drops,
//!   and the request is served by a full recompute — which the
//!   engine's recovery ladder routes around the dead device.
//!   [`Drop`] likewise frees all live-device residency, so a
//!   `ResidentSpectrum` can never strand simulated device memory past
//!   its lifetime.
//!
//! ## Determinism contract
//!
//! The fold accumulates ions in ascending index order per bin and bins
//! are independent, so the fold is bitwise launch-geometry invariant;
//! with unit weights it is bitwise equal to the ascending-ion host
//! `assemble` sum. Under `deterministic_kernel`, partials themselves
//! are placement-invariant, so at tolerance zero (where only provably
//! bitwise-identical ions are reused) a delta recalc is **bitwise
//! equal** to a full recompute across any GPU count and scheduling
//! policy. At a nonzero tolerance every reused ion deviates by at most
//! the classifier's bound and summands are nonnegative, so each
//! assembled bin deviates by at most the tolerance, relatively.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;

use gpu_sim::{DevicePtr, LaunchConfig, WeightedFoldKernel};
use rrc_spectral::{classify_ion, EnergyGrid, GridPoint};

use crate::engine::{Engine, ExecPath, IonJob};

/// Default tolerance: the maximum per-bin relative deviation a delta
/// recalc may introduce versus a full recompute.
pub const DEFAULT_TOLERANCE: f64 = 1e-12;

/// Scale between one fold multiply-add and one integrand evaluation in
/// the device cost model: a fused MAC streams resident data with no
/// `exp`, so it is charged at 1/16 of an integrand eval.
const FOLD_EVAL_SCALE: u64 = 16;

/// Shared resident-state counters, owned by the [`Engine`] (so they
/// survive into [`crate::engine::EngineReport`]) and bumped by every
/// [`ResidentSpectrum`] attached to it.
#[derive(Debug, Default)]
pub struct ResidentCounters {
    delta_recalcs: AtomicU64,
    full_recomputes: AtomicU64,
    reused_ions: AtomicU64,
    recomputed_ions: AtomicU64,
    affected_max: AtomicU64,
    invalidations: AtomicU64,
    bytes: AtomicU64,
    bytes_peak: AtomicU64,
}

impl ResidentCounters {
    /// Delta recalculations served from resident state.
    #[must_use]
    pub fn delta_recalcs(&self) -> u64 {
        self.delta_recalcs.load(Ordering::Relaxed)
    }

    /// Full recomputations (cold computes and invalidation recoveries).
    #[must_use]
    pub fn full_recomputes(&self) -> u64 {
        self.full_recomputes.load(Ordering::Relaxed)
    }

    /// Ions reused verbatim across all delta recalcs.
    #[must_use]
    pub fn reused_ions(&self) -> u64 {
        self.reused_ions.load(Ordering::Relaxed)
    }

    /// Ions re-integrated across all delta recalcs.
    #[must_use]
    pub fn recomputed_ions(&self) -> u64 {
        self.recomputed_ions.load(Ordering::Relaxed)
    }

    /// Largest single affected-ion set a delta recalc re-integrated.
    #[must_use]
    pub fn affected_max(&self) -> u64 {
        self.affected_max.load(Ordering::Relaxed)
    }

    /// Resident-state invalidations caused by device loss.
    #[must_use]
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Bytes of partial state currently resident on devices.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Peak resident bytes over the engine's life.
    #[must_use]
    pub fn bytes_peak(&self) -> u64 {
        self.bytes_peak.load(Ordering::Relaxed)
    }

    fn add_bytes(&self, bytes: u64) {
        let now = self.bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.bytes_peak.fetch_max(now, Ordering::Relaxed);
    }

    fn sub_bytes(&self, bytes: u64) {
        self.bytes.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// What a [`ResidentSpectrum::compute`] / [`ResidentSpectrum::recalc`]
/// request did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecalcSummary {
    /// Whether this was a full recompute (cold, forced, or after
    /// invalidation) rather than a delta recalc.
    pub full: bool,
    /// Whether resident state was invalidated by device loss first.
    pub invalidated: bool,
    /// Ions re-integrated by this request.
    pub recomputed: usize,
    /// Ions whose resident partials were reused verbatim.
    pub reused: usize,
}

/// Failure of a resident request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidentError {
    /// The engine refused the fan-out (shutting down).
    EngineClosed,
    /// This many ions stayed unanswered after the re-fanout budget
    /// (possible only with CPU fallback disabled in the resilience
    /// config).
    Unanswered(usize),
}

impl std::fmt::Display for ResidentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResidentError::EngineClosed => write!(f, "engine is shutting down"),
            ResidentError::Unanswered(n) => {
                write!(f, "{n} ion tasks unanswered after re-fanout budget")
            }
        }
    }
}

impl std::error::Error for ResidentError {}

/// One ion's resident partial: the bits, the plasma state they were
/// integrated at, and — when the integration ran on a device — the
/// on-board allocation modeling the partial staying resident there.
struct IonResidency {
    partial: Arc<Vec<f64>>,
    computed_at: GridPoint,
    home: Option<usize>,
    ptr: Option<DevicePtr>,
}

struct ResidentState {
    /// The most recently requested plasma state.
    point: GridPoint,
    /// One residency per ion, ascending ion order.
    ions: Vec<IonResidency>,
    /// The folded spectrum at `point` (the only data that crossed the
    /// simulated PCIe link).
    folded: Vec<f64>,
}

/// The device-resident spectrum handle (see module docs). Borrows the
/// engine, so the borrow checker guarantees it is dropped — and its
/// device allocations freed — before [`Engine::shutdown`].
pub struct ResidentSpectrum<'e> {
    engine: &'e Engine,
    grid: EnergyGrid,
    bins: Arc<Vec<(f64, f64)>>,
    tolerance: f64,
    fanout_retries: u32,
    weights: Vec<f64>,
    state: Option<ResidentState>,
}

impl<'e> ResidentSpectrum<'e> {
    /// A cold resident spectrum over `grid` with the
    /// [`DEFAULT_TOLERANCE`] and unit abundance weights.
    #[must_use]
    pub fn new(engine: &'e Engine, grid: EnergyGrid) -> ResidentSpectrum<'e> {
        let bins = Arc::new(grid.bin_pairs());
        let ions = engine.config().db.ions().len();
        ResidentSpectrum {
            engine,
            grid,
            bins,
            tolerance: DEFAULT_TOLERANCE,
            fanout_retries: 2,
            weights: vec![1.0; ions],
            state: None,
        }
    }

    /// Set the delta tolerance (0 ⇒ only provably bitwise-identical
    /// ions are ever reused; the recalc is then bitwise equal to a
    /// full recompute under `deterministic_kernel`).
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> ResidentSpectrum<'e> {
        self.tolerance = tolerance.max(0.0);
        self
    }

    /// The delta tolerance.
    #[must_use]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Set one ion's abundance weight for the fold (default 1.0).
    /// Invalidates nothing: the next fold picks the new weight up.
    ///
    /// # Panics
    /// Panics if `ion_index` is out of range.
    pub fn set_weight(&mut self, ion_index: usize, weight: f64) {
        self.weights[ion_index] = weight;
    }

    /// The folded spectrum of the last request, if any.
    #[must_use]
    pub fn spectrum(&self) -> Option<&[f64]> {
        self.state.as_ref().map(|s| s.folded.as_slice())
    }

    /// The plasma state of the last request, if any.
    #[must_use]
    pub fn point(&self) -> Option<GridPoint> {
        self.state.as_ref().map(|s| s.point)
    }

    /// Number of ions with partials resident on some device.
    #[must_use]
    pub fn resident_ions(&self) -> usize {
        self.state
            .as_ref()
            .map_or(0, |s| s.ions.iter().filter(|r| r.ptr.is_some()).count())
    }

    /// Full recompute at `point`: drop any resident state, fan every
    /// ion out through the engine, install residency, and fold.
    ///
    /// # Errors
    /// [`ResidentError`] when the engine refuses or drops the fan-out.
    pub fn compute(&mut self, point: &GridPoint) -> Result<RecalcSummary, ResidentError> {
        self.compute_summarized(point, false)
    }

    /// Delta recalculation at `point`. Falls back to a full recompute
    /// when there is no resident state or when device loss invalidated
    /// it; otherwise re-integrates only the affected ion set and
    /// reuses every other resident partial verbatim.
    ///
    /// # Errors
    /// [`ResidentError`] when the engine refuses or drops the fan-out.
    pub fn recalc(&mut self, point: &GridPoint) -> Result<RecalcSummary, ResidentError> {
        let counters = self.engine.resident_counters();
        let Some(state) = &self.state else {
            return self.compute_summarized(point, false);
        };
        if state
            .ions
            .iter()
            .any(|r| r.home.is_some_and(|d| self.engine.device_lost(d)))
        {
            // A home device died: its resident partials are gone, so
            // the whole state is suspect. Free live residency and
            // recover with a full recompute (the engine's ladder
            // routes around the dead device).
            counters.invalidations.fetch_add(1, Ordering::Relaxed);
            self.invalidate();
            return self.compute_summarized(point, true);
        }

        // Classify every ion between the state its resident bits were
        // actually computed at and the requested state.
        let db = &self.engine.config().db;
        let affected: Vec<usize> = state
            .ions
            .iter()
            .enumerate()
            .filter(|(ion, r)| {
                !classify_ion(db, *ion, &r.computed_at, point, &self.bins).reusable(self.tolerance)
            })
            .map(|(ion, _)| ion)
            .collect();

        let fresh = self.fan_out(point, &affected)?;
        let state = self.state.as_mut().expect("state checked above");
        let counters = self.engine.resident_counters();
        for (ion, (partial, home)) in fresh {
            let r = &mut state.ions[ion];
            Self::release(self.engine, counters, r);
            *r = Self::install(self.engine, counters, self.bins.len(), partial, home, point);
        }
        state.point = *point;
        let reused = state.ions.len() - affected.len();
        counters.delta_recalcs.fetch_add(1, Ordering::Relaxed);
        counters
            .recomputed_ions
            .fetch_add(affected.len() as u64, Ordering::Relaxed);
        counters
            .reused_ions
            .fetch_add(reused as u64, Ordering::Relaxed);
        counters
            .affected_max
            .fetch_max(affected.len() as u64, Ordering::Relaxed);
        self.fold();
        Ok(RecalcSummary {
            full: false,
            invalidated: false,
            recomputed: affected.len(),
            reused,
        })
    }

    /// Drop all resident state, freeing device allocations on live
    /// devices (a lost device's allocations died with the device).
    pub fn invalidate(&mut self) {
        let Some(mut state) = self.state.take() else {
            return;
        };
        let counters = self.engine.resident_counters();
        for r in &mut state.ions {
            Self::release(self.engine, counters, r);
        }
    }

    fn compute_summarized(
        &mut self,
        point: &GridPoint,
        invalidated: bool,
    ) -> Result<RecalcSummary, ResidentError> {
        let ions = self.engine.config().db.ions().len();
        let all: Vec<usize> = (0..ions).collect();
        let fresh = self.fan_out(point, &all)?;
        self.invalidate();
        let counters = self.engine.resident_counters();
        let residencies = fresh
            .into_iter()
            .map(|(_, (partial, home))| {
                Self::install(self.engine, counters, self.bins.len(), partial, home, point)
            })
            .collect();
        counters.full_recomputes.fetch_add(1, Ordering::Relaxed);
        self.state = Some(ResidentState {
            point: *point,
            ions: residencies,
            folded: Vec::new(),
        });
        self.fold();
        Ok(RecalcSummary {
            full: true,
            invalidated,
            recomputed: ions,
            reused: 0,
        })
    }

    /// Fan `ions` out through the engine and collect one partial per
    /// ion, re-fanning unanswered ions out up to `fanout_retries`
    /// times (mirroring the service batcher's recovery discipline).
    #[allow(clippy::type_complexity)]
    fn fan_out(
        &self,
        point: &GridPoint,
        ions: &[usize],
    ) -> Result<BTreeMap<usize, (Arc<Vec<f64>>, Option<usize>)>, ResidentError> {
        let db = &self.engine.config().db;
        let mut got: BTreeMap<usize, (Arc<Vec<f64>>, Option<usize>)> = BTreeMap::new();
        let mut pending: Vec<usize> = ions.to_vec();
        let mut refanouts = 0u32;
        while !pending.is_empty() {
            let (tx, rx) = channel();
            for &ion in &pending {
                let levels = db.levels_by_index(ion).len();
                let job = IonJob {
                    ion_index: ion,
                    level_range: 0..levels,
                    point: *point,
                    grid: self.grid.clone(),
                    bins: Arc::clone(&self.bins),
                    tag: ion as u64,
                    deadline: f64::INFINITY,
                    reply: tx.clone(),
                };
                if self.engine.submit(job).is_err() {
                    return Err(ResidentError::EngineClosed);
                }
            }
            drop(tx);
            for outcome in rx {
                let home = match outcome.path {
                    ExecPath::Gpu(d) => Some(d),
                    ExecPath::WorkerCpu | ExecPath::CallerCpu => None,
                };
                got.insert(outcome.ion_index, (Arc::new(outcome.partial), home));
            }
            pending.retain(|ion| !got.contains_key(ion));
            if !pending.is_empty() {
                refanouts += 1;
                if refanouts > self.fanout_retries {
                    return Err(ResidentError::Unanswered(pending.len()));
                }
            }
        }
        Ok(got)
    }

    /// Install one freshly computed partial as resident state: a
    /// GPU-computed partial gets an on-board allocation on its home
    /// device (skipped when the device is already lost or out of
    /// memory — the partial then lives host-side only).
    fn install(
        engine: &Engine,
        counters: &ResidentCounters,
        nbins: usize,
        partial: Arc<Vec<f64>>,
        home: Option<usize>,
        point: &GridPoint,
    ) -> IonResidency {
        let bytes = 8 * nbins as u64;
        let ptr = home.and_then(|d| {
            let device = &engine.devices()[d];
            if device.faults().is_lost() {
                return None;
            }
            let ptr = device.malloc(bytes).ok();
            if ptr.is_some() {
                counters.add_bytes(bytes);
            }
            ptr
        });
        IonResidency {
            partial,
            computed_at: *point,
            home: if ptr.is_some() { home } else { None },
            ptr,
        }
    }

    /// Free one residency's device allocation, if it still has a live
    /// home (a lost device's memory died with the device).
    fn release(engine: &Engine, counters: &ResidentCounters, r: &mut IonResidency) {
        if let (Some(d), Some(ptr)) = (r.home, r.ptr.take()) {
            counters.sub_bytes(ptr.bytes);
            if !engine.device_lost(d) {
                engine.devices()[d].free(ptr);
            }
        }
        r.home = None;
    }

    /// Fold all resident partials (ascending ion order, abundance
    /// weights) with the fused [`WeightedFoldKernel`], charging the
    /// pass to the live device holding the most resident partials.
    /// Only the folded spectrum is copied back over the simulated
    /// PCIe link.
    fn fold(&mut self) {
        let Some(state) = &mut self.state else {
            return;
        };
        let views: Vec<&[f64]> = state.ions.iter().map(|r| r.partial.as_slice()).collect();
        let kernel = WeightedFoldKernel {
            partials: &views,
            weights: &self.weights,
        };
        let nbins = self.bins.len();
        let cfg = if self.engine.config().deterministic_kernel {
            LaunchConfig::new(1, 1)
        } else {
            LaunchConfig::cover(nbins)
        };
        let mut folded = vec![0.0f64; nbins];
        let ops = kernel.execute(cfg, &mut folded);
        // Charge the fold to the device with the most resident
        // partials (cost model only — the fold itself is bitwise
        // launch- and device-invariant). The weight table rides in
        // host→device; the folded spectrum is the only copy-back.
        let mut residents_per_device = vec![0u64; self.engine.gpus()];
        for r in &state.ions {
            if let Some(d) = r.home {
                residents_per_device[d] += 1;
            }
        }
        let fold_device = residents_per_device
            .iter()
            .enumerate()
            .filter(|&(d, &n)| n > 0 && !self.engine.device_lost(d))
            .max_by_key(|&(_, &n)| n)
            .map(|(d, _)| d);
        if let Some(d) = fold_device {
            let _ = self.engine.devices()[d].charge_task(
                ops / FOLD_EVAL_SCALE,
                8 * self.weights.len() as u64,
                8 * nbins as u64,
            );
        }
        state.folded = folded;
    }
}

impl Drop for ResidentSpectrum<'_> {
    fn drop(&mut self) {
        self.invalidate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::resilience::ResilienceConfig;
    use atomdb::AtomDatabase;
    use gpu_sim::{DeviceRule, Precision};
    use hybrid_sched::SchedPolicy;
    use quadrature::MathMode;
    use rrc_spectral::{emissivity_into_mode, Integrator};

    fn small_config(gpus: usize, policy: SchedPolicy) -> EngineConfig {
        let db = AtomDatabase::generate(atomdb::DatabaseConfig {
            max_z: 6,
            ..atomdb::DatabaseConfig::default()
        });
        EngineConfig {
            db: Arc::new(db),
            workers: 3,
            gpus,
            max_queue_len: 4,
            policy,
            gpu_rule: DeviceRule::Simpson { panels: 64 },
            gpu_precision: Precision::Double,
            cpu_integrator: Integrator::Simpson { panels: 64 },
            fused: true,
            async_window: 1,
            queue_depth: 8,
            deterministic_kernel: true,
            math: MathMode::Exact,
            pack_threshold: 0,
            pack_max: 8,
            resilience: ResilienceConfig::default(),
            tuning: hybrid_sched::TuningConfig::default(),
        }
    }

    fn grid() -> EnergyGrid {
        EnergyGrid::linear(50.0, 2000.0, 48)
    }

    fn point(t: f64) -> GridPoint {
        GridPoint {
            temperature_k: t,
            density_cm3: 1.0,
            time_s: 0.0,
            index: 0,
        }
    }

    /// Host reference: per-ion partials via the same fused Simpson
    /// path, folded ascending with unit weights.
    fn reference(config: &EngineConfig, grid: &EnergyGrid, p: &GridPoint) -> Vec<f64> {
        let mut folded = vec![0.0f64; grid.bins()];
        let mut ws = quadrature::QagsWorkspace::new();
        for ion in 0..config.db.ions().len() {
            let levels = config.db.levels_by_index(ion).len();
            let mut partial = vec![0.0f64; grid.bins()];
            emissivity_into_mode(
                &config.db,
                ion,
                0..levels,
                p,
                grid,
                config.cpu_integrator,
                &mut ws,
                &mut partial,
                config.math,
            );
            for (slot, v) in folded.iter_mut().zip(&partial) {
                *slot += 1.0 * v;
            }
        }
        folded
    }

    fn assert_bitwise(got: &[f64], want: &[f64], ctx: &str) {
        assert_eq!(got.len(), want.len(), "{ctx}: length");
        for (b, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: bin {b}");
        }
    }

    /// Satellite property (b): at tolerance zero a delta recalc is
    /// bitwise equal to a full recompute — across 0/1/2 GPUs and both
    /// scheduling policies — and both match the host reference fold.
    #[test]
    fn tolerance_zero_recalc_is_bitwise_full_recompute() {
        let grid = grid();
        let sweep = [point(1.0e7), point(1.0e7 * (1.0 + 1e-15)), point(1.4e7)];
        for gpus in [0usize, 1, 2] {
            for policy in [SchedPolicy::CostAware, SchedPolicy::PaperCount] {
                let config = small_config(gpus, policy);
                let refs: Vec<Vec<f64>> =
                    sweep.iter().map(|p| reference(&config, &grid, p)).collect();
                let engine = Engine::start(config);
                {
                    let mut rs = ResidentSpectrum::new(&engine, grid.clone()).with_tolerance(0.0);
                    for (i, p) in sweep.iter().enumerate() {
                        let summary = if i == 0 {
                            rs.compute(p).expect("compute")
                        } else {
                            rs.recalc(p).expect("recalc")
                        };
                        if i > 0 {
                            assert!(!summary.full, "warm recalc stays a delta");
                        }
                        let ctx = format!("gpus {gpus} {policy:?} step {i}");
                        assert_bitwise(rs.spectrum().expect("folded"), &refs[i], &ctx);
                    }
                }
                let report = engine.shutdown();
                assert_eq!(report.leaked_grants, 0, "gpus {gpus} {policy:?}");
                assert_eq!(report.resident_bytes, 0, "residency freed on drop");
            }
        }
    }

    /// A tiny temperature step at the default tolerance reuses most
    /// ions and stays within 1e-12 of the full recompute per bin.
    #[test]
    fn delta_recalc_reuses_and_stays_within_tolerance() {
        let config = small_config(2, SchedPolicy::CostAware);
        let grid = grid();
        let p0 = point(1.0e7);
        let p1 = point(1.0e7 * (1.0 + 1e-15));
        let full = reference(&config, &grid, &p1);
        let engine = Engine::start(config);
        {
            let mut rs = ResidentSpectrum::new(&engine, grid.clone());
            rs.compute(&p0).expect("compute");
            let summary = rs.recalc(&p1).expect("recalc");
            assert!(summary.reused > 0, "tiny step must reuse some ions");
            assert!(!summary.full);
            for (b, (g, w)) in rs.spectrum().expect("folded").iter().zip(&full).enumerate() {
                let rel = if *w == 0.0 {
                    (g - w).abs()
                } else {
                    (g - w).abs() / w
                };
                assert!(rel <= 1e-12, "bin {b}: rel {rel:e}");
            }
        }
        let report = engine.shutdown();
        assert_eq!(report.resident_delta_recalcs, 1);
        assert_eq!(report.resident_full_recomputes, 1);
        assert!(report.resident_reused_ions > 0);
        assert_eq!(report.leaked_grants, 0);
    }

    /// Satellite property (c): device loss mid-sweep invalidates the
    /// resident state, the next request full-recomputes correctly, and
    /// no grants leak.
    #[test]
    fn device_loss_invalidates_and_recovers() {
        let config = small_config(2, SchedPolicy::CostAware);
        let grid = grid();
        let p0 = point(1.0e7);
        let p1 = point(1.0e7 * (1.0 + 1e-15));
        let full = reference(&config, &grid, &p1);
        let engine = Engine::start(config);
        {
            let mut rs = ResidentSpectrum::new(&engine, grid.clone()).with_tolerance(0.0);
            rs.compute(&p0).expect("compute");
            assert!(
                rs.resident_ions() > 0,
                "two healthy GPUs must hold some residency"
            );
            let bytes_before = engine.resident_counters().bytes();
            assert!(bytes_before > 0);
            // Lose every device that holds resident state, at a point
            // of our choosing — deterministic chaos.
            for d in 0..engine.gpus() {
                engine.device_faults(d).expect("device").force_lose();
            }
            let summary = rs.recalc(&p1).expect("recalc after loss");
            assert!(summary.invalidated, "loss must invalidate");
            assert!(summary.full, "recovery is a full recompute");
            assert_bitwise(rs.spectrum().expect("folded"), &full, "post-loss");
            assert_eq!(rs.resident_ions(), 0, "all devices lost ⇒ nothing resident");
        }
        let report = engine.shutdown();
        assert_eq!(report.resident_invalidations, 1);
        assert_eq!(report.resident_full_recomputes, 2);
        assert_eq!(report.leaked_grants, 0);
        assert_eq!(report.resident_bytes, 0);
    }

    /// Residency is accounted on the devices: installing partials
    /// allocates on-board memory, invalidation returns it.
    #[test]
    fn residency_shows_up_in_device_memory() {
        let config = small_config(2, SchedPolicy::CostAware);
        let grid = grid();
        let engine = Engine::start(config);
        let mut rs = ResidentSpectrum::new(&engine, grid.clone());
        rs.compute(&point(1.0e7)).expect("compute");
        let resident = rs.resident_ions() as u64;
        assert!(resident > 0);
        let expected = resident * 8 * grid.bins() as u64;
        assert_eq!(engine.resident_counters().bytes(), expected);
        let held: u64 = (0..engine.gpus())
            .map(|d| engine.devices()[d].memory_used())
            .sum();
        assert!(
            held >= expected,
            "device memory ({held}) must include residency ({expected})"
        );
        rs.invalidate();
        assert_eq!(engine.resident_counters().bytes(), 0);
        assert!(rs.spectrum().is_none(), "invalidation drops the fold");
    }

    /// Abundance weights reweight the fold without recomputation and
    /// match the host weighted sum bitwise.
    #[test]
    fn weighted_fold_matches_host_weighted_sum() {
        let config = small_config(1, SchedPolicy::CostAware);
        let db = Arc::clone(&config.db);
        let grid = grid();
        let p = point(1.0e7);
        let engine = Engine::start(config.clone());
        let mut rs = ResidentSpectrum::new(&engine, grid.clone());
        for ion in 0..db.ions().len() {
            rs.set_weight(ion, 0.5 + ion as f64 * 0.25);
        }
        rs.compute(&p).expect("compute");
        let mut want = vec![0.0f64; grid.bins()];
        let mut ws = quadrature::QagsWorkspace::new();
        for ion in 0..db.ions().len() {
            let levels = db.levels_by_index(ion).len();
            let mut partial = vec![0.0f64; grid.bins()];
            emissivity_into_mode(
                &db,
                ion,
                0..levels,
                &p,
                &grid,
                config.cpu_integrator,
                &mut ws,
                &mut partial,
                config.math,
            );
            let w = 0.5 + ion as f64 * 0.25;
            for (slot, v) in want.iter_mut().zip(&partial) {
                *slot += w * v;
            }
        }
        assert_bitwise(rs.spectrum().expect("folded"), &want, "weighted");
    }
}
