//! The hybrid CPU/GPU spectral-calculation framework — the paper's
//! primary contribution.
//!
//! Two execution paths share one scheduling policy
//! ([`hybrid_sched::policy`]):
//!
//! * [`engine`] / [`runtime`] — the **real** runtime: a resident
//!   [`engine::Engine`] whose worker threads pull coarse-grained ion
//!   tasks from a bounded queue, ask the shared-memory scheduler for a
//!   device, and run the RRC kernel on `gpu-sim` devices with QAGS CPU
//!   fallback. [`runtime::HybridRunner`] is its batch client (paper
//!   Fig. 7/8 and all correctness tests); the `rrc-service` crate is
//!   its long-lived query-service client.
//! * [`desmodel`] — the **virtual-time replica**: the same ranks /
//!   scheduler / devices / PCIe bus / contended CPU cores replayed on
//!   [`desim`] with service times from [`calib`]. Produces the paper's
//!   timing results (Fig. 3–6, Tables I–II) deterministically.
//!
//! [`task`] defines the two task granularities the paper compares (one
//! *ion* vs one *energy level*); [`workload`] materializes the paper's
//! test workload (24 grid points × 496 ions); [`experiments`] contains
//! one driver per paper table/figure.

pub mod calib;
pub mod cost;
pub mod desmodel;
pub mod engine;
pub mod experiments;
pub mod hydro;
pub mod pool;
pub mod resident;
pub mod resilience;
pub mod runtime;
pub mod spec;
pub mod task;
pub mod workload;

pub use calib::Calibration;
pub use cost::ion_task_cost;
pub use desmodel::{DesConfig, DesReport};
pub use engine::{Engine, EngineConfig, EngineReport, ExecPath, IonJob, IonOutcome};
pub use hybrid_sched::SchedPolicy;
pub use hydro::SedovBlast;
pub use pool::WorkspacePool;
pub use resident::{RecalcSummary, ResidentError, ResidentSpectrum};
pub use resilience::ResilienceConfig;
pub use runtime::{HybridConfig, HybridRunner, RunReport};
pub use spec::{RuleSpec, RunSpec};
pub use task::{Granularity, TaskSpec};
pub use workload::SpectralWorkload;
