//! Neighbor-seeded delta recalc at the service tier: a cache miss
//! whose quantization bucket has a cached neighbor within the
//! configured radius is answered by reusing the neighbor's partials —
//! when (and only when) the classified delta bound passes the
//! configured tolerance.
//!
//! The quantizer drops 16 mantissa bits here, so adjacent buckets are
//! ~2^-36 apart in relative value; the classified per-ion bound for
//! that step is ~1e-9, comfortably inside a 1e-8 tolerance and
//! hopelessly outside a 1e-14 one — which is exactly the accept/reject
//! pair these tests probe.

use std::sync::Arc;

use atomdb::{AtomDatabase, DatabaseConfig};
use rrc_service::{
    ElementSelection, ServiceConfig, SpectralService, SpectrumRequest, SpectrumResponse,
};
use rrc_spectral::{EnergyGrid, GridPoint, Integrator, SerialCalculator};

const DROP_BITS: u32 = 16;

fn db() -> Arc<AtomDatabase> {
    Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z: 6,
        ..DatabaseConfig::default()
    }))
}

fn grid() -> EnergyGrid {
    EnergyGrid::linear(50.0, 2000.0, 48)
}

fn config(radius: u32, tolerance: f64) -> ServiceConfig {
    let mut cfg = ServiceConfig::deterministic(db(), vec![grid()]);
    cfg.quantize_drop_bits = DROP_BITS;
    cfg.neighbor_radius = radius;
    cfg.neighbor_tolerance = tolerance;
    cfg
}

/// The representative temperature of the bucket holding `t`, shifted
/// `offset` buckets up the positive axis.
fn bucket_temperature(t: f64, offset: u64) -> f64 {
    let mask = !0u64 << DROP_BITS;
    f64::from_bits((t.to_bits() & mask) + offset * (1u64 << DROP_BITS))
}

fn request_at(temperature_k: f64) -> SpectrumRequest {
    SpectrumRequest::new(
        GridPoint {
            temperature_k,
            // 1.0 has an all-zero low mantissa: its own representative.
            density_cm3: 1.0,
            time_s: 0.0,
            index: 0,
        },
        ElementSelection::All,
        0,
    )
}

fn submit(service: &SpectralService, request: SpectrumRequest) -> SpectrumResponse {
    service
        .submit(request)
        .expect("admitted")
        .wait()
        .expect("answered")
}

/// Serial reference at the (already-representative) request point.
fn reference(database: &AtomDatabase, request: &SpectrumRequest) -> Vec<f64> {
    let serial =
        SerialCalculator::new(database.clone(), grid(), Integrator::Simpson { panels: 64 });
    let mut out = vec![0.0f64; grid().bins()];
    for (ion_index, _) in database.ions().iter().enumerate() {
        let spectrum = serial.ion_spectrum(ion_index, &request.point);
        for (acc, v) in out.iter_mut().zip(spectrum.bins()) {
            *acc += v;
        }
    }
    out
}

#[test]
fn adjacent_bucket_seeds_a_delta_recalc_within_tolerance() {
    let database = db();
    let service = SpectralService::start(config(1, 1e-8));
    // Warm the cache at one bucket, then query the next bucket up.
    let warm = submit(&service, request_at(bucket_temperature(1e7, 0)));
    assert!(warm.ions_computed > 0, "cold bucket computes");
    let near = request_at(bucket_temperature(1e7, 1));
    let seeded = submit(&service, near.clone());
    assert_eq!(
        seeded.ions_computed, 0,
        "adjacent-bucket miss must be fully neighbor-seeded"
    );
    let metrics = service.metrics();
    assert_eq!(metrics.neighbor_hits, warm.ions_computed);
    // Reused bits stand in for the neighbor's state; the classified
    // bound caps the per-bin relative deviation from a fresh compute.
    let want = reference(&database, &near);
    for (i, (got, want)) in seeded.bins.iter().zip(&want).enumerate() {
        let scale = want.abs().max(f64::MIN_POSITIVE);
        assert!(
            ((got - want) / scale).abs() <= 1e-8,
            "bin {i}: {got} vs {want}"
        );
    }
    // Seeding re-inserted under the missed key: a repeat is a plain
    // cache hit, no further neighbor scanning.
    let repeat = submit(&service, near);
    assert_eq!(repeat.ions_computed, 0);
    assert_eq!(service.metrics().neighbor_hits, metrics.neighbor_hits);
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0);
}

#[test]
fn tight_tolerance_rejects_the_neighbor_and_recomputes() {
    let database = db();
    // 1e-14 sits below the classifier's noise floor: every cross-bucket
    // bound is rejected and the miss takes the cold path.
    let service = SpectralService::start(config(1, 1e-14));
    let warm = submit(&service, request_at(bucket_temperature(1e7, 0)));
    let near = request_at(bucket_temperature(1e7, 1));
    let fresh = submit(&service, near.clone());
    assert_eq!(
        fresh.ions_computed, warm.ions_computed,
        "rejected neighbors must not suppress the compute"
    );
    let metrics = service.metrics();
    assert_eq!(metrics.neighbor_hits, 0);
    assert!(metrics.neighbor_rejects > 0, "candidates were considered");
    // The cold path keeps the bitwise guarantee.
    let want = reference(&database, &near);
    for (i, (got, want)) in fresh.bins.iter().zip(&want).enumerate() {
        assert_eq!(got.to_bits(), want.to_bits(), "bin {i}: {got} vs {want}");
    }
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0);
}

#[test]
fn radius_zero_disables_the_scan() {
    let service = SpectralService::start(config(0, 1e-8));
    let warm = submit(&service, request_at(bucket_temperature(1e7, 0)));
    let fresh = submit(&service, request_at(bucket_temperature(1e7, 1)));
    assert_eq!(fresh.ions_computed, warm.ions_computed);
    let metrics = service.metrics();
    assert_eq!((metrics.neighbor_hits, metrics.neighbor_rejects), (0, 0));
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0);
}
