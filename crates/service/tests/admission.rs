//! SLO-driven admission: the two shed gates are typed and counted
//! separately (`shed_infeasible` at the deadline gate vs
//! `shed_queue_full` at the capacity gate), an infeasible deadline is
//! refused *before* any fan-out, bulk saturation never sheds
//! interactive traffic, and per-class latency accounting splits by
//! priority.

use std::sync::Arc;

use atomdb::{AtomDatabase, DatabaseConfig};
use desim::{Deadline, Priority, VirtualClock};
use rrc_service::{
    ElementSelection, ServiceConfig, ServiceError, SpectralService, SpectrumRequest, Ticket,
};
use rrc_spectral::{EnergyGrid, GridPoint};

fn db() -> Arc<AtomDatabase> {
    Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z: 6,
        ..DatabaseConfig::default()
    }))
}

fn config() -> ServiceConfig {
    ServiceConfig::deterministic(db(), vec![EnergyGrid::linear(50.0, 2000.0, 32)])
}

fn request(i: usize) -> SpectrumRequest {
    SpectrumRequest::new(
        GridPoint {
            temperature_k: 8.0e6 + 5.0e5 * i as f64,
            density_cm3: 1.0,
            time_s: 0.0,
            index: i,
        },
        ElementSelection::All,
        0,
    )
}

/// An already-expired deadline is refused with the typed error at the
/// SLO gate, before the request touches any queue or fan-out — and the
/// refusal lands in `shed_infeasible`, not `shed_queue_full`.
#[test]
fn expired_deadline_sheds_typed_before_any_fanout() {
    let clock = VirtualClock::manual();
    let mut cfg = config();
    cfg.clock = clock.clone();
    let service = SpectralService::start(cfg);
    clock.advance(2.0);

    for i in 0..3 {
        let outcome = service.submit(request(i).with_deadline(Deadline::at(1.0)));
        assert!(
            matches!(outcome, Err(ServiceError::DeadlineInfeasible)),
            "expired deadline must shed typed, got Ok? {}",
            outcome.is_ok()
        );
    }
    let metrics = service.metrics();
    assert_eq!(metrics.shed_infeasible, 3, "{metrics:?}");
    assert_eq!(metrics.shed_queue_full, 0, "{metrics:?}");
    assert_eq!(metrics.shed, 3, "shed is the sum of the split counters");
    assert_eq!(metrics.submitted, 0, "the gate fires before the queue");
    assert_eq!(metrics.batches, 0, "zero wasted fan-outs");

    // The gate only prices deadlines: a deadline-free request sails in.
    let response = service
        .submit(request(9))
        .expect("no deadline, no SLO gate")
        .wait()
        .expect("answered");
    assert!(response.bins.iter().any(|&b| b > 0.0));
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0);
}

/// Once the cost model has a measured time scale, a deadline with zero
/// remaining budget is priced as infeasible even though it has not
/// technically expired.
#[test]
fn warmed_estimate_sheds_zero_budget_deadline() {
    let clock = VirtualClock::manual();
    let mut cfg = config();
    cfg.clock = clock.clone();
    let service = SpectralService::start(cfg);

    // Cold start is deliberately optimistic (estimate 0 until the
    // first measured settle), so warm until the gate has a scale.
    let mut shed = false;
    for i in 0..50 {
        let _ = service
            .submit(request(i))
            .expect("warming request admitted")
            .wait()
            .expect("warming request answered");
        match service.submit(request(i).with_deadline(clock.deadline_in(0.0))) {
            Err(ServiceError::DeadlineInfeasible) => {
                shed = true;
                break;
            }
            Err(e) => panic!("only the SLO gate may refuse here, got {e}"),
            Ok(ticket) => {
                let _ = ticket.wait();
            }
        }
    }
    assert!(
        shed,
        "a warmed estimate must price a zero budget as infeasible"
    );
    let metrics = service.metrics();
    assert_eq!(metrics.shed_infeasible, 1, "{metrics:?}");
    assert_eq!(metrics.shed_queue_full, 0, "{metrics:?}");

    // A generous budget clears the same gate.
    let response = service
        .submit(request(99).with_deadline(clock.deadline_in(1.0e6)))
        .expect("feasible deadline admitted")
        .wait()
        .expect("answered");
    assert!(response.bins.iter().any(|&b| b > 0.0));
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0);
}

/// A burst past the class queue's capacity sheds with `Overloaded`,
/// and every such refusal lands in `shed_queue_full` — the capacity
/// gate and the SLO gate never blur into one counter.
#[test]
fn queue_full_sheds_are_counted_separately() {
    let mut cfg = config();
    cfg.request_queue_depth = 1;
    cfg.bulk_queue_depth = 1;
    cfg.max_batch = 1;
    let service = SpectralService::start(cfg);

    let mut tickets: Vec<Ticket> = Vec::new();
    let mut refused = 0u64;
    for i in 0..64 {
        match service.submit(request(i)) {
            Ok(ticket) => tickets.push(ticket),
            Err(ServiceError::Overloaded) => refused += 1,
            Err(e) => panic!("only the capacity gate may refuse here, got {e}"),
        }
    }
    for ticket in tickets {
        let _ = ticket.wait().expect("admitted requests are answered");
    }
    assert!(
        refused >= 1,
        "a 64-burst into a depth-1 queue must shed at least once"
    );
    let metrics = service.metrics();
    assert_eq!(metrics.shed_queue_full, refused, "{metrics:?}");
    assert_eq!(metrics.shed_infeasible, 0, "{metrics:?}");
    assert_eq!(metrics.shed, refused);
    assert_eq!(metrics.submitted + refused, 64);
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0);
}

/// Saturating the bulk queue sheds bulk only: interactive requests keep
/// their own bound, and the per-class latency split records responses
/// under the right tier.
#[test]
fn bulk_saturation_never_sheds_interactive() {
    let mut cfg = config();
    cfg.request_queue_depth = 64;
    cfg.bulk_queue_depth = 1;
    cfg.max_batch = 1;
    let service = SpectralService::start(cfg);

    let mut bulk_tickets: Vec<Ticket> = Vec::new();
    let mut bulk_refused = 0u64;
    for i in 0..32 {
        match service.submit(request(i % 4).with_priority(Priority::Bulk)) {
            Ok(ticket) => bulk_tickets.push(ticket),
            Err(ServiceError::Overloaded) => bulk_refused += 1,
            Err(e) => panic!("unexpected refusal {e}"),
        }
    }
    // Interactive has its own queue: every submit must be admitted no
    // matter how saturated bulk is.
    let interactive_tickets: Vec<Ticket> = (0..4)
        .map(|i| {
            service
                .submit(request(10 + i).with_priority(Priority::Interactive))
                .expect("interactive must never shed on bulk saturation")
        })
        .collect();
    let bulk_answered = bulk_tickets.len() as u64;
    for ticket in bulk_tickets {
        let _ = ticket.wait().expect("admitted bulk answered");
    }
    for ticket in interactive_tickets {
        let _ = ticket.wait().expect("interactive answered");
    }
    let metrics = service.metrics();
    assert_eq!(metrics.shed_queue_full, bulk_refused, "{metrics:?}");
    assert!(bulk_refused >= 1, "a 32-burst into depth 1 must shed bulk");
    let interactive = &metrics.per_priority[Priority::Interactive.index()];
    let bulk = &metrics.per_priority[Priority::Bulk.index()];
    assert_eq!(interactive.count, 4, "{metrics:?}");
    assert_eq!(bulk.count, bulk_answered, "{metrics:?}");
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0);
}
