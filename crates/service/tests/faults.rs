//! Service behavior under injected device faults: the degradation
//! ladder keeps answers bitwise correct when the CPU fallback is on,
//! and surfaces a typed [`ServiceError::DeviceFailed`] — distinct from
//! admission-control `Overloaded` — when it is off and the fan-out
//! retry budget runs dry.

use std::sync::Arc;
use std::time::Duration;

use atomdb::{AtomDatabase, DatabaseConfig};
use gpu_sim::FaultPlan;
use hybrid_sched::HealthConfig;
use hybrid_spectral::ResilienceConfig;
use rrc_service::{
    ElementSelection, ServiceConfig, ServiceError, SpectralService, SpectrumRequest,
};
use rrc_spectral::{EnergyGrid, GridPoint, Integrator, SerialCalculator};

fn db() -> Arc<AtomDatabase> {
    Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z: 6,
        ..DatabaseConfig::default()
    }))
}

fn request(i: usize) -> SpectrumRequest {
    SpectrumRequest::new(
        GridPoint {
            temperature_k: 8.0e6 + 5.0e5 * i as f64,
            density_cm3: 1.0,
            time_s: 0.0,
            index: i,
        },
        ElementSelection::All,
        0,
    )
}

fn reference(database: &AtomDatabase, grid: &EnergyGrid, req: &SpectrumRequest) -> Vec<f64> {
    let serial = SerialCalculator::new(
        database.clone(),
        grid.clone(),
        Integrator::Simpson { panels: 64 },
    );
    let mut out = vec![0.0f64; grid.bins()];
    for (ion_index, ion) in database.ions().iter().enumerate() {
        if !req.elements.selects(ion.z) {
            continue;
        }
        let spectrum = serial.ion_spectrum(ion_index, &req.point);
        for (acc, v) in out.iter_mut().zip(spectrum.bins()) {
            *acc += v;
        }
    }
    out
}

/// Heavy mixed faults with the CPU fallback armed: every request is
/// still answered, bitwise identical to the serial reference, and no
/// request sees `DeviceFailed`.
#[test]
fn faulty_devices_degrade_to_cpu_with_bitwise_parity() {
    let database = db();
    let grid = EnergyGrid::linear(50.0, 2000.0, 48);
    let mut cfg = ServiceConfig::deterministic(Arc::clone(&database), vec![grid.clone()]);
    cfg.cache_capacity = 0;
    cfg.engine.resilience = ResilienceConfig {
        faults: (0..2)
            .map(|d| {
                FaultPlan::seeded(31 + d)
                    .launch_error_rate(0.2)
                    .kernel_panic_rate(0.1)
                    .dma_error_rate(0.1)
            })
            .collect(),
        backoff: Duration::from_micros(20),
        backoff_cap: Duration::from_micros(200),
        ..ResilienceConfig::default()
    };
    let service = SpectralService::start(cfg);
    for i in 0..4 {
        let req = request(i);
        let response = service
            .submit(req.clone())
            .expect("admitted")
            .wait()
            .expect("answered despite faults");
        let want = reference(&database, &grid, &req);
        for (bin, (a, b)) in response.bins.iter().zip(&want).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "request {i} bin {bin}: {a} vs {b}"
            );
        }
    }
    let metrics = service.metrics();
    assert_eq!(metrics.device_failures, 0);
    assert_eq!(metrics.scheduler_health.len(), 2);
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0);
    assert!(
        report.engine.task_faults > 0,
        "fault plan at 20% launch errors must have fired"
    );
}

/// With the CPU fallback disabled, zero retries, and a device that
/// refuses every launch but never quarantines, dropped ion partials
/// exhaust the service's fan-out budget and the request is refused
/// with the typed `DeviceFailed` — and the counters record both the
/// re-fan-outs and the refusal.
#[test]
fn exhausted_retry_budget_surfaces_typed_device_failed() {
    let database = db();
    let grid = EnergyGrid::linear(50.0, 2000.0, 32);
    let mut cfg = ServiceConfig::deterministic(database, vec![grid]);
    cfg.cache_capacity = 0;
    cfg.fanout_retries = 1;
    cfg.engine.gpus = 1;
    cfg.engine.max_queue_len = 64;
    cfg.engine.resilience = ResilienceConfig {
        faults: vec![FaultPlan::seeded(7).launch_error_rate(1.0)],
        max_retries: 0,
        backoff: Duration::ZERO,
        cpu_fallback_on_fault: false,
        // Keep the sick device eligible forever so every fan-out lands
        // on it and is dropped (the quarantine ladder would otherwise
        // divert the retries to the healthy CPU path).
        health: HealthConfig {
            quarantine_after: u32::MAX,
            error_rate_threshold: 2.0,
            ..HealthConfig::default()
        },
        ..ResilienceConfig::default()
    };
    let service = SpectralService::start(cfg);
    let outcome = service
        .submit(request(0))
        .expect("admitted — failure is post-admission")
        .wait();
    assert!(
        matches!(outcome, Err(ServiceError::DeviceFailed)),
        "want DeviceFailed, got {:?}",
        outcome.map(|r| (r.ions_computed, r.ions_from_cache))
    );
    let metrics = service.metrics();
    assert!(metrics.device_failures >= 1, "{metrics:?}");
    assert!(metrics.fanout_retried_ions >= 1, "{metrics:?}");
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0);
}
