//! Property tests of the service's central guarantee: a response is
//! **bitwise identical** to the serial reference calculator — with the
//! cache on or off, with 0 or 2 simulated GPUs, for whole-database and
//! element-subset selections, and across repeated (cache-hitting)
//! queries.
//!
//! The serial reference folds ion partials the same way the service
//! does (ascending ion order into a zeroed accumulator), and the
//! engine's deterministic single-chunk kernel with a shared Simpson
//! bin rule makes each partial placement-invariant; together the
//! whole response is reproducible to the bit.

use std::sync::Arc;

use atomdb::{AtomDatabase, DatabaseConfig};
use rrc_service::{
    ElementSelection, ServiceConfig, SpectralService, SpectrumRequest, SpectrumResponse,
};
use rrc_spectral::{EnergyGrid, GridPoint, Integrator, SerialCalculator};

fn db() -> Arc<AtomDatabase> {
    Arc::new(AtomDatabase::generate(DatabaseConfig {
        max_z: 8,
        ..DatabaseConfig::default()
    }))
}

fn grids() -> Vec<EnergyGrid> {
    vec![
        EnergyGrid::linear(50.0, 2000.0, 48),
        EnergyGrid::linear(100.0, 5000.0, 96),
    ]
}

fn config(gpus: usize, cache_capacity: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::deterministic(db(), grids());
    cfg.engine.gpus = gpus;
    cfg.cache_capacity = cache_capacity;
    cfg
}

fn points(n: usize) -> Vec<GridPoint> {
    (0..n)
        .map(|i| GridPoint {
            temperature_k: 8.0e6 + 7.3e5 * i as f64,
            density_cm3: 1.0 + 0.5 * (i % 3) as f64,
            time_s: 0.0,
            index: i,
        })
        .collect()
}

/// The serial reference for one request: per-ion spectra summed in
/// ascending ion order — the service's documented fold.
fn reference(
    db: &AtomDatabase,
    serial: &SerialCalculator,
    request: &SpectrumRequest,
    grid: &EnergyGrid,
) -> Vec<f64> {
    let mut out = vec![0.0f64; grid.bins()];
    for (ion_index, ion) in db.ions().iter().enumerate() {
        if !request.elements.selects(ion.z) {
            continue;
        }
        let spectrum = serial.ion_spectrum(ion_index, &request.point);
        for (acc, v) in out.iter_mut().zip(spectrum.bins()) {
            *acc += v;
        }
    }
    out
}

fn assert_bitwise(context: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{context}: bin count");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{context}: bin {i}: {a} vs {b}");
    }
}

fn run_matrix(gpus: usize, cache_capacity: usize) {
    let database = db();
    let all_grids = grids();
    let service = SpectralService::start(config(gpus, cache_capacity));
    let selections = [
        ElementSelection::All,
        ElementSelection::Elements(vec![1, 2]),
        ElementSelection::Elements(vec![6, 8]),
        ElementSelection::Elements(vec![3]),
    ];
    // Two passes over the same requests: pass 2 is answered from the
    // cache when it is on, and must not change a single bit.
    let mut first_pass: Vec<(usize, Vec<f64>)> = Vec::new();
    for pass in 0..2 {
        let mut case = 0;
        for (grid_id, grid) in all_grids.iter().enumerate() {
            let serial = SerialCalculator::new(
                (*database).clone(),
                grid.clone(),
                Integrator::Simpson { panels: 64 },
            );
            for point in points(3) {
                for selection in &selections {
                    let request = SpectrumRequest::new(point, selection.clone(), grid_id);
                    let response: SpectrumResponse = service
                        .submit(request.clone())
                        .expect("admitted")
                        .wait()
                        .expect("answered");
                    let want = reference(&database, &serial, &request, grid);
                    let context =
                        format!("gpus={gpus} cache={cache_capacity} pass={pass} case={case}");
                    assert_bitwise(&context, &response.bins, &want);
                    if pass == 0 {
                        first_pass.push((case, response.bins));
                    } else {
                        let (_, ref earlier) = first_pass[case];
                        assert_bitwise(&format!("{context} (vs pass 0)"), &response.bins, earlier);
                        if cache_capacity > 0 {
                            assert_eq!(
                                response.ions_computed, 0,
                                "{context}: repeat must be all cache hits"
                            );
                        }
                    }
                    case += 1;
                }
            }
        }
    }
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0, "grants must all be freed");
    if cache_capacity > 0 {
        assert!(
            report.cache.hits > 0,
            "repeated queries must hit: {:?}",
            report.cache
        );
    } else {
        assert_eq!(report.cache.hits, 0);
    }
    if gpus > 0 {
        assert!(
            report.engine.gpu_tasks > 0,
            "devices configured but never used"
        );
    } else {
        assert_eq!(report.engine.gpu_tasks, 0);
    }
}

#[test]
fn bitwise_parity_two_gpus_cache_on() {
    run_matrix(2, 4096);
}

#[test]
fn bitwise_parity_two_gpus_cache_off() {
    run_matrix(2, 0);
}

#[test]
fn bitwise_parity_zero_gpus_cache_on() {
    run_matrix(0, 4096);
}

#[test]
fn bitwise_parity_zero_gpus_cache_off() {
    run_matrix(0, 0);
}

/// Batched requests sharing one plasma state must see the identical
/// partials as requests submitted alone.
#[test]
fn coalesced_batch_matches_solo_submissions() {
    let database = db();
    let grid = grids().remove(0);
    let serial = SerialCalculator::new(
        (*database).clone(),
        grid.clone(),
        Integrator::Simpson { panels: 64 },
    );
    let service = SpectralService::start(config(2, 4096));
    let point = points(1)[0];
    // A burst sharing the state: one All + two overlapping subsets,
    // submitted before any response is consumed, so the batcher can
    // coalesce them into one fan-out.
    let burst = [
        ElementSelection::All,
        ElementSelection::Elements(vec![1, 6]),
        ElementSelection::Elements(vec![6, 8]),
    ];
    let tickets: Vec<_> = burst
        .iter()
        .map(|selection| {
            service
                .submit(SpectrumRequest::new(point, selection.clone(), 0))
                .expect("admitted")
        })
        .collect();
    for (selection, ticket) in burst.iter().zip(tickets) {
        let response = ticket.wait().expect("answered");
        let request = SpectrumRequest::new(point, selection.clone(), 0);
        let want = reference(&database, &serial, &request, &grid);
        assert_bitwise(&format!("burst {selection:?}"), &response.bins, &want);
    }
    let report = service.shutdown();
    assert_eq!(report.engine.leaked_grants, 0);
}
