//! Request/response types of the spectral query service.

use rrc_spectral::GridPoint;

/// Which ions of the database a request wants in its spectrum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElementSelection {
    /// Every ion of every element.
    All,
    /// Only ions whose element has one of these atomic numbers
    /// (duplicates and unknown elements are ignored).
    Elements(Vec<u8>),
}

impl ElementSelection {
    /// Whether an ion of element `z` is selected.
    #[must_use]
    pub fn selects(&self, z: u8) -> bool {
        match self {
            ElementSelection::All => true,
            ElementSelection::Elements(zs) => zs.contains(&z),
        }
    }
}

/// One spectral query: a plasma state, an element selection, and the
/// id of one of the service's registered energy grids.
#[derive(Debug, Clone)]
pub struct SpectrumRequest {
    /// Plasma state to evaluate at (`index` is caller metadata and
    /// does not affect the result).
    pub point: GridPoint,
    /// Ions to include.
    pub elements: ElementSelection,
    /// Index into the grids the service was configured with.
    pub grid_id: usize,
}

/// The answer to one [`SpectrumRequest`].
#[derive(Debug, Clone)]
pub struct SpectrumResponse {
    /// Per-bin emissivity on the requested grid, summed over the
    /// selected ions in ascending ion order (a fixed order, so the
    /// same request always folds partials identically).
    pub bins: Vec<f64>,
    /// Echo of [`SpectrumRequest::grid_id`].
    pub grid_id: usize,
    /// Ion partials computed for this response (engine tasks or
    /// caller-runs fallbacks).
    pub ions_computed: u64,
    /// Ion partials served from the cache.
    pub ions_from_cache: u64,
    /// `true` when the request was answered on the submitting thread
    /// by the caller-runs overload policy instead of the batcher.
    pub caller_ran: bool,
}

/// Why the service refused or abandoned a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control: the request queue is at capacity and the
    /// shed policy is active. The caller may retry later.
    Overloaded,
    /// The request named a grid id the service was not configured with.
    UnknownGrid,
    /// The service is shutting down (or has shut down).
    Closed,
    /// The engine could not complete one of the request's ion partials
    /// within the service's fan-out retry budget — devices failed or
    /// were quarantined and CPU fallback was disabled. Distinct from
    /// [`ServiceError::Overloaded`]: the request was admitted and
    /// computation was attempted.
    DeviceFailed,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded => write!(f, "request queue full (load shed)"),
            ServiceError::UnknownGrid => write!(f, "unknown energy grid id"),
            ServiceError::Closed => write!(f, "service closed"),
            ServiceError::DeviceFailed => {
                write!(f, "device failure exhausted the fan-out retry budget")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// What to do with a request that arrives while the request queue is
/// at its bound (paper Algorithm 1's full-queue CPU fallback, lifted
/// to the request tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Refuse with [`ServiceError::Overloaded`]; the queue bound is a
    /// hard backpressure signal to the caller.
    #[default]
    Shed,
    /// Compute the whole request synchronously on the submitting
    /// thread with the CPU integrator (the QAGS-fallback analogue);
    /// always answers, at the cost of the caller's own cycles.
    CallerRuns,
}

/// A pending answer. The batcher delivers exactly one result per
/// admitted request.
pub struct Ticket {
    pub(crate) rx: std::sync::mpsc::Receiver<Result<SpectrumResponse, ServiceError>>,
}

impl Ticket {
    /// Block until the response arrives.
    ///
    /// # Errors
    /// [`ServiceError::Closed`] if the service dropped the request
    /// during shutdown.
    pub fn wait(self) -> Result<SpectrumResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Closed))
    }

    /// Non-blocking poll: `None` while the answer is still pending.
    #[must_use]
    pub fn poll(&self) -> Option<Result<SpectrumResponse, ServiceError>> {
        self.rx.try_recv().ok()
    }

    /// A ticket that is already resolved (used by the caller-runs
    /// admission path, which computes before returning).
    pub(crate) fn resolved(result: Result<SpectrumResponse, ServiceError>) -> Ticket {
        let (tx, rx) = std::sync::mpsc::channel();
        let _ = tx.send(result);
        Ticket { rx }
    }
}
