//! Request/response types of the spectral query service.

use desim::{Deadline, Priority};
use rrc_spectral::GridPoint;

/// Which ions of the database a request wants in its spectrum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElementSelection {
    /// Every ion of every element.
    All,
    /// Only ions whose element has one of these atomic numbers
    /// (duplicates and unknown elements are ignored).
    Elements(Vec<u8>),
}

impl ElementSelection {
    /// Whether an ion of element `z` is selected.
    #[must_use]
    pub fn selects(&self, z: u8) -> bool {
        match self {
            ElementSelection::All => true,
            ElementSelection::Elements(zs) => zs.contains(&z),
        }
    }
}

/// One spectral query: a plasma state, an element selection, and the
/// id of one of the service's registered energy grids — plus the SLO
/// metadata (priority class and optional deadline) that rides with the
/// request through every scheduling layer. Neither SLO field affects
/// the numerical answer; they only steer admission and ordering.
#[derive(Debug, Clone)]
pub struct SpectrumRequest {
    /// Plasma state to evaluate at (`index` is caller metadata and
    /// does not affect the result).
    pub point: GridPoint,
    /// Ions to include.
    pub elements: ElementSelection,
    /// Index into the grids the service was configured with.
    pub grid_id: usize,
    /// Priority class: interactive requests dequeue ahead of bulk
    /// under the weighted-fair policy.
    pub priority: Priority,
    /// Absolute completion deadline on the service's clock. `None`
    /// (the default) means no SLO: never shed at admission, dequeued
    /// after every deadlined peer of the same class.
    pub deadline: Option<Deadline>,
}

impl SpectrumRequest {
    /// A deadline-free interactive request — the common case; set
    /// [`priority`](Self::priority) / [`deadline`](Self::deadline) to
    /// attach an SLO.
    #[must_use]
    pub fn new(point: GridPoint, elements: ElementSelection, grid_id: usize) -> SpectrumRequest {
        SpectrumRequest {
            point,
            elements,
            grid_id,
            priority: Priority::default(),
            deadline: None,
        }
    }

    /// This request with `priority`.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> SpectrumRequest {
        self.priority = priority;
        self
    }

    /// This request with an absolute `deadline`.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> SpectrumRequest {
        self.deadline = Some(deadline);
        self
    }

    /// The EDF staging key: the absolute deadline in clock seconds,
    /// [`f64::INFINITY`] when the request carries none.
    #[must_use]
    pub fn deadline_secs(&self) -> f64 {
        self.deadline.map_or(f64::INFINITY, |d| d.at_s)
    }
}

/// The answer to one [`SpectrumRequest`].
#[derive(Debug, Clone)]
pub struct SpectrumResponse {
    /// Per-bin emissivity on the requested grid, summed over the
    /// selected ions in ascending ion order (a fixed order, so the
    /// same request always folds partials identically).
    pub bins: Vec<f64>,
    /// Echo of [`SpectrumRequest::grid_id`].
    pub grid_id: usize,
    /// Ion partials computed for this response (engine tasks or
    /// caller-runs fallbacks).
    pub ions_computed: u64,
    /// Ion partials served from the cache.
    pub ions_from_cache: u64,
    /// `true` when the request was answered on the submitting thread
    /// by the caller-runs overload policy instead of the batcher.
    pub caller_ran: bool,
}

/// Why the service refused or abandoned a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control: the request queue is at capacity and the
    /// shed policy is active. The caller may retry later.
    Overloaded,
    /// The request named a grid id the service was not configured with.
    UnknownGrid,
    /// The service is shutting down (or has shut down).
    Closed,
    /// The engine could not complete one of the request's ion partials
    /// within the service's fan-out retry budget — devices failed or
    /// were quarantined and CPU fallback was disabled. Distinct from
    /// [`ServiceError::Overloaded`]: the request was admitted and
    /// computation was attempted.
    DeviceFailed,
    /// SLO-driven admission: the request's remaining deadline budget
    /// cannot cover the cost model's estimate of its compute time, so
    /// it was shed *before* any fan-out. Distinct from
    /// [`ServiceError::Overloaded`] (a capacity refusal — retrying
    /// later can succeed); an infeasible deadline needs a larger
    /// budget, not a retry.
    DeadlineInfeasible,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded => write!(f, "request queue full (load shed)"),
            ServiceError::UnknownGrid => write!(f, "unknown energy grid id"),
            ServiceError::Closed => write!(f, "service closed"),
            ServiceError::DeviceFailed => {
                write!(f, "device failure exhausted the fan-out retry budget")
            }
            ServiceError::DeadlineInfeasible => {
                write!(f, "remaining deadline budget below the cost estimate")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// What to do with a request that arrives while the request queue is
/// at its bound (paper Algorithm 1's full-queue CPU fallback, lifted
/// to the request tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Refuse with [`ServiceError::Overloaded`]; the queue bound is a
    /// hard backpressure signal to the caller.
    #[default]
    Shed,
    /// Compute the whole request synchronously on the submitting
    /// thread with the CPU integrator (the QAGS-fallback analogue);
    /// always answers, at the cost of the caller's own cycles.
    CallerRuns,
}

/// A pending answer. The batcher delivers exactly one result per
/// admitted request.
pub struct Ticket {
    pub(crate) rx: std::sync::mpsc::Receiver<Result<SpectrumResponse, ServiceError>>,
}

impl Ticket {
    /// Block until the response arrives.
    ///
    /// # Errors
    /// [`ServiceError::Closed`] if the service dropped the request
    /// during shutdown.
    pub fn wait(self) -> Result<SpectrumResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Closed))
    }

    /// Non-blocking poll: `None` while the answer is still pending.
    #[must_use]
    pub fn poll(&self) -> Option<Result<SpectrumResponse, ServiceError>> {
        self.rx.try_recv().ok()
    }

    /// A ticket that is already resolved (used by the caller-runs
    /// admission path, which computes before returning).
    pub(crate) fn resolved(result: Result<SpectrumResponse, ServiceError>) -> Ticket {
        let (tx, rx) = std::sync::mpsc::channel();
        let _ = tx.send(result);
        Ticket { rx }
    }
}
