//! The spectral query service: admission → batching → engine fan-out →
//! cache fill → response assembly.
//!
//! One batcher thread drains the bounded request queue. Each drain
//! takes everything immediately available (up to `max_batch`), groups
//! the requests by quantized plasma state + grid ([`StateKey`]), and
//! per group fans the *union* of the requested ions out to the
//! resident [`Engine`] — one [`IonJob`] per ion that the cache cannot
//! already answer. Computed partials are wrapped in `Arc`s, stored in
//! the cache, and every request of the group is answered by summing
//! its selected ions **in ascending ion order**. Because the fold
//! order is fixed and cached partials are the identical allocations
//! the engine produced, a cache hit changes *which* computation
//! produced the bits but never the bits themselves (with the
//! engine's deterministic kernel configured — see
//! [`hybrid_spectral::engine`]).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use atomdb::AtomDatabase;
use desim::{Priority, VirtualClock};
use gpu_sim::{DeviceRule, Precision};
use hybrid_sched::{Knob, SchedulerSnapshot, TunerDim};
use hybrid_spectral::engine::{Engine, EngineConfig, EngineReport, IonJob, IonOutcome};
use mpi_sim::TryPushError;
use rrc_spectral::{EnergyGrid, Integrator};

use crate::api::{AdmissionPolicy, ServiceError, SpectrumRequest, SpectrumResponse, Ticket};
use crate::cache::{CacheKey, CacheStats, ShardedLruCache};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::pqueue::PriorityQueues;
use crate::quantize::{Quantizer, StateKey};

/// Configuration of a [`SpectralService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The resident engine backing the service.
    pub engine: EngineConfig,
    /// Energy grids a request may name by index ([`SpectrumRequest::grid_id`]).
    pub grids: Vec<EnergyGrid>,
    /// Total per-ion cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Cache shard count (clamped to `[1, cache_capacity]`).
    pub cache_shards: usize,
    /// Mantissa bits dropped when quantizing plasma states (0 = exact
    /// keys, no state snapping).
    pub quantize_drop_bits: u32,
    /// What to do with requests that arrive while the queue is full.
    pub admission: AdmissionPolicy,
    /// Interactive-class request-queue capacity — the service-tier
    /// admission bound for latency-sensitive traffic.
    pub request_queue_depth: usize,
    /// Bulk-class request-queue capacity. Separate from the
    /// interactive bound so a bulk sweep saturating its own queue
    /// sheds bulk, never interactive.
    pub bulk_queue_depth: usize,
    /// Weighted-fair service ratio: interactive requests dequeued per
    /// bulk one while both classes are backlogged (floored at 1 — bulk
    /// never starves).
    pub interactive_weight: u32,
    /// The clock request deadlines are measured against. Production
    /// uses [`VirtualClock::real`]; deterministic tests install a
    /// manual clock and advance it explicitly.
    pub clock: VirtualClock,
    /// Most requests one batch may coalesce.
    pub max_batch: usize,
    /// How many times a batch re-fans-out ion partials the engine
    /// failed to answer (device faults with CPU fallback disabled)
    /// before affected requests are refused with
    /// [`ServiceError::DeviceFailed`]. The engine's own per-task retry
    /// ladder runs *inside* each fan-out; this budget bounds the
    /// service's attempts above it.
    pub fanout_retries: u32,
    /// Chebyshev radius (in quantization buckets, on the temperature ×
    /// density plane) searched for a cached **neighbor** when an ion
    /// misses the cache. A neighbor's partial is reused — a delta
    /// recalc seeded from the neighbor instead of a cold compute —
    /// only when [`rrc_spectral::classify_ion`] bounds the relative
    /// change between the neighbor's representative state and the
    /// requested one by [`ServiceConfig::neighbor_tolerance`]. `0`
    /// disables the scan entirely (as does exact quantization,
    /// `quantize_drop_bits == 0`, where buckets have no width and
    /// hence no meaningful neighbors).
    pub neighbor_radius: u32,
    /// Largest classified relative-change bound at which a cached
    /// neighbor partial may stand in for a fresh computation. At `0.0`
    /// only provably bitwise-identical states reuse (which cannot
    /// happen across distinct buckets), so the scan never changes
    /// response bits.
    pub neighbor_tolerance: f64,
}

impl ServiceConfig {
    /// A bitwise-deterministic service over `db` and `grids`: the
    /// engine runs the fused kernel in single-chunk mode with the same
    /// Simpson bin rule on both the device and the CPU fallback, so an
    /// answer is identical no matter where (or whether cached) each
    /// ion partial was computed.
    #[must_use]
    pub fn deterministic(db: Arc<AtomDatabase>, grids: Vec<EnergyGrid>) -> ServiceConfig {
        let workers = 4;
        ServiceConfig {
            engine: EngineConfig {
                db,
                workers,
                gpus: 2,
                max_queue_len: 6,
                policy: hybrid_sched::SchedPolicy::CostAware,
                gpu_rule: DeviceRule::Simpson { panels: 64 },
                gpu_precision: Precision::Double,
                cpu_integrator: Integrator::Simpson { panels: 64 },
                fused: true,
                async_window: 1,
                queue_depth: 2 * workers,
                deterministic_kernel: true,
                math: quadrature::MathMode::Exact,
                pack_threshold: 0,
                pack_max: 8,
                resilience: hybrid_spectral::ResilienceConfig::default(),
                tuning: hybrid_sched::TuningConfig::default(),
            },
            grids,
            cache_capacity: 4096,
            cache_shards: 8,
            quantize_drop_bits: 0,
            admission: AdmissionPolicy::Shed,
            request_queue_depth: 64,
            bulk_queue_depth: 64,
            interactive_weight: 4,
            clock: VirtualClock::real(),
            max_batch: 16,
            fanout_retries: 2,
            neighbor_radius: 0,
            neighbor_tolerance: hybrid_spectral::resident::DEFAULT_TOLERANCE,
        }
    }
}

/// Everything [`SpectralService::shutdown`] reports after draining.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// The drained engine's counters (task split, device accounting,
    /// leaked grants — must be zero).
    pub engine: EngineReport,
    /// Cache effectiveness counters.
    pub cache: CacheStats,
    /// Service counters and latency quantiles.
    pub metrics: MetricsSnapshot,
}

struct QueuedRequest {
    request: SpectrumRequest,
    submitted_at: Instant,
    reply: Sender<Result<SpectrumResponse, ServiceError>>,
}

struct Shared {
    grids: Vec<EnergyGrid>,
    bin_tables: Vec<Arc<Vec<(f64, f64)>>>,
    fanout_retries: u32,
    neighbor_radius: u32,
    neighbor_tolerance: f64,
    queue: PriorityQueues<QueuedRequest>,
    clock: VirtualClock,
    engine: Engine,
    cache: ShardedLruCache,
    metrics: Arc<ServiceMetrics>,
}

impl Shared {
    /// The live batch bound — the controller's `MaxBatch` knob, seeded
    /// from [`ServiceConfig::max_batch`] at start and retuned each
    /// decision epoch when the engine runs with tuning enabled.
    fn max_batch(&self) -> usize {
        (self.engine.tuner_knobs().max_batch() as usize).max(1)
    }

    /// The live quantizer — built from the controller's `DropBits`
    /// knob, seeded from [`ServiceConfig::quantize_drop_bits`] at
    /// start. The tuner may only *lower* the dropped bits (its
    /// dimension is bounded by the configured value), so a tuned
    /// service never answers lossier than it was configured to.
    /// Callers snapshot once per batch/request so key, representative,
    /// and neighbor scans stay mutually consistent.
    fn quantizer(&self) -> Quantizer {
        Quantizer::new(self.engine.tuner_knobs().drop_bits() as u32)
    }
}

/// The running service. Submit from any thread; shut down (or drop)
/// to drain the queue, stop the batcher, and tear the engine down.
pub struct SpectralService {
    shared: Option<Arc<Shared>>,
    admission: AdmissionPolicy,
    batcher: Option<std::thread::JoinHandle<()>>,
}

impl SpectralService {
    /// Bring the service up: engine, cache, metrics, batcher thread.
    ///
    /// # Panics
    /// Panics if `config.grids` is empty — a service with no grid can
    /// answer nothing.
    #[must_use]
    pub fn start(config: ServiceConfig) -> SpectralService {
        assert!(!config.grids.is_empty(), "service needs at least one grid");
        let bin_tables = config
            .grids
            .iter()
            .map(|g| Arc::new(g.bin_pairs()))
            .collect();
        let engine = Engine::start(config.engine);
        // Seed the service-tier knobs with the configured values, then
        // hand the dimensions to the resident controller (when tuning):
        // batch size probes up to the admission bound, and quantizer
        // drop bits — only when the profile is lossy to begin with —
        // probe *downward* from the configured value, so the
        // deterministic exact-key profile never grows a lossy knob.
        let knobs = engine.tuner_knobs();
        knobs.set(Knob::MaxBatch, config.max_batch.max(1) as u64);
        knobs.set(Knob::DropBits, u64::from(config.quantize_drop_bits));
        if let Some(tuner) = engine.tuner() {
            tuner.add_dim(TunerDim {
                knob: Knob::MaxBatch,
                min: 1,
                max: config.request_queue_depth.max(config.max_batch).max(1) as u64,
                step: 1,
            });
            if config.quantize_drop_bits > 0 {
                tuner.add_dim(TunerDim {
                    knob: Knob::DropBits,
                    min: 0,
                    max: u64::from(config.quantize_drop_bits),
                    step: 1,
                });
            }
        }
        let metrics = Arc::new(ServiceMetrics::new());
        {
            // Point the controller's decision-epoch signal at the live
            // end-to-end latency: mean seconds per response delivered
            // since the previous epoch (lower = better). Until the
            // first response lands the reader yields `None` and the
            // engine falls back to its internal modeled-seconds signal.
            let metrics = Arc::clone(&metrics);
            let last = Mutex::new((0u64, 0.0f64));
            engine.set_tuner_signal(move || {
                let total = metrics.snapshot().total;
                let sum_s = total.mean_s * total.count as f64;
                let mut guard = last.lock().ok()?;
                let (count0, sum0) = *guard;
                let delivered = total.count.saturating_sub(count0);
                if delivered == 0 {
                    return None;
                }
                *guard = (total.count, sum_s);
                Some(((sum_s - sum0) / delivered as f64).max(0.0))
            });
        }
        let shared = Arc::new(Shared {
            bin_tables,
            fanout_retries: config.fanout_retries,
            neighbor_radius: config.neighbor_radius,
            neighbor_tolerance: config.neighbor_tolerance.max(0.0),
            queue: PriorityQueues::new(
                [
                    config.request_queue_depth.max(1),
                    config.bulk_queue_depth.max(1),
                ],
                config.interactive_weight,
            ),
            clock: config.clock,
            engine,
            cache: ShardedLruCache::new(config.cache_capacity, config.cache_shards),
            metrics,
            grids: config.grids,
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("service-batcher".into())
                .spawn(move || batcher_loop(&shared))
                .expect("spawn service batcher")
        };
        SpectralService {
            shared: Some(shared),
            admission: config.admission,
            batcher: Some(batcher),
        }
    }

    fn shared(&self) -> &Arc<Shared> {
        self.shared
            .as_ref()
            .expect("service is live until consumed")
    }

    /// Submit one request. Returns a [`Ticket`] for the response, or an
    /// admission/validation error.
    ///
    /// Admission runs two gates in order. First the **SLO gate**: a
    /// request carrying a [`desim::Deadline`] whose remaining budget
    /// cannot cover the cost model's blended compute estimate is shed
    /// with [`ServiceError::DeadlineInfeasible`] *before* touching any
    /// queue — an impossible deadline must waste zero fan-outs. Then
    /// the **capacity gate**: the request's class queue either accepts
    /// it or the configured [`AdmissionPolicy`] decides.
    ///
    /// # Errors
    /// [`ServiceError::UnknownGrid`] for an out-of-range grid id;
    /// [`ServiceError::DeadlineInfeasible`] from the SLO gate;
    /// [`ServiceError::Overloaded`] when the class queue is full under
    /// the shed policy; [`ServiceError::Closed`] during shutdown. Under
    /// the caller-runs policy a full queue computes the answer on this
    /// thread and returns an already-resolved ticket.
    pub fn submit(&self, request: SpectrumRequest) -> Result<Ticket, ServiceError> {
        let shared = self.shared();
        if request.grid_id >= shared.grids.len() {
            return Err(ServiceError::UnknownGrid);
        }
        if let Some(deadline) = request.deadline {
            let estimate = estimate_request_seconds(shared, &request);
            if deadline.remaining(&shared.clock) < estimate {
                shared.metrics.on_shed_infeasible();
                return Err(ServiceError::DeadlineInfeasible);
            }
        }
        let priority = request.priority;
        let (tx, rx) = channel();
        let queued = QueuedRequest {
            request,
            submitted_at: Instant::now(),
            reply: tx,
        };
        match shared.queue.try_push(priority, queued) {
            Ok(()) => {
                shared.metrics.on_submitted(shared.queue.len());
                Ok(Ticket { rx })
            }
            Err(TryPushError::Closed(_)) => Err(ServiceError::Closed),
            Err(TryPushError::Full(queued)) => match self.admission {
                AdmissionPolicy::Shed => {
                    shared.metrics.on_shed_queue_full();
                    Err(ServiceError::Overloaded)
                }
                AdmissionPolicy::CallerRuns => {
                    let start = queued.submitted_at;
                    let response = caller_run(shared, &queued.request);
                    shared
                        .metrics
                        .on_caller_run(priority, start.elapsed().as_secs_f64());
                    Ok(Ticket::resolved(Ok(response)))
                }
            },
        }
    }

    /// Current request-queue occupancy across both priority classes.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.shared().queue.len()
    }

    /// Current occupancy of one priority class's queue.
    #[must_use]
    pub fn class_queue_len(&self, priority: Priority) -> usize {
        self.shared().queue.class_len(priority)
    }

    /// The interactive-class request-queue capacity (admission bound).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared().queue.capacity(Priority::Interactive)
    }

    /// The clock this service measures request deadlines against.
    #[must_use]
    pub fn clock(&self) -> &VirtualClock {
        &self.shared().clock
    }

    /// Live metrics snapshot, including the scheduler's steal counters
    /// and weighted backlogs.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let shared = self.shared();
        shared
            .metrics
            .snapshot()
            .with_scheduler(&shared.engine.scheduler_snapshot())
            .with_cache(&shared.cache)
    }

    /// Live cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.shared().cache.stats()
    }

    /// Live scheduler load/history view of the backing engine.
    #[must_use]
    pub fn scheduler_snapshot(&self) -> SchedulerSnapshot {
        self.shared().engine.scheduler_snapshot()
    }

    /// Graceful shutdown: refuse new requests, answer everything
    /// already queued, join the batcher, drain the engine, report.
    #[must_use]
    pub fn shutdown(mut self) -> ServiceReport {
        self.do_shutdown().expect("service not yet shut down")
    }

    fn do_shutdown(&mut self) -> Option<ServiceReport> {
        let shared = self.shared.take()?;
        shared.queue.close();
        if let Some(handle) = self.batcher.take() {
            handle.join().expect("service batcher panicked");
        }
        let shared = Arc::try_unwrap(shared)
            .ok()
            .expect("batcher joined; no other holders of the service state");
        let cache = shared.cache.stats();
        let metrics = shared
            .metrics
            .snapshot()
            .with_scheduler(&shared.engine.scheduler_snapshot())
            .with_cache(&shared.cache);
        let engine = shared.engine.shutdown();
        Some(ServiceReport {
            engine,
            cache,
            metrics,
        })
    }
}

impl Drop for SpectralService {
    /// Dropping without [`SpectralService::shutdown`] still drains and
    /// joins — queued requests are answered, grants are freed.
    fn drop(&mut self) {
        let _ = self.do_shutdown();
    }
}

/// The ions of the database a request selects, ascending. Public
/// because the shard router must partition exactly this set: the
/// sharded fold reproduces the single-engine response bitwise only
/// when both tiers agree on which ions a request names and in which
/// order their partials are summed.
#[must_use]
pub fn selected_ions(db: &AtomDatabase, request: &SpectrumRequest) -> Vec<usize> {
    db.ions()
        .iter()
        .enumerate()
        .filter(|(_, ion)| request.elements.selects(ion.z))
        .map(|(i, _)| i)
        .collect()
}

/// Sum `ions`' partials (ascending order is the caller's contract)
/// into a fresh bin vector. Public for the shard router: gathering
/// per-ion partials from shards and folding them **here**, in the same
/// ascending order starting from the same zero vector, is what makes a
/// sharded response bitwise identical to the single-engine one —
/// floating-point addition is non-associative, so folding per-shard
/// pre-sums instead would change the bits.
///
/// # Panics
/// Panics if any of `ions` has no entry in `partials`.
#[must_use]
pub fn assemble(
    bins: usize,
    ions: &[usize],
    partials: &BTreeMap<usize, Arc<Vec<f64>>>,
) -> Vec<f64> {
    let mut out = vec![0.0f64; bins];
    for ion in ions {
        let partial = &partials[ion];
        for (acc, v) in out.iter_mut().zip(partial.iter()) {
            *acc += v;
        }
    }
    out
}

/// Try to answer a cache miss for `ion` at bucket `key` from a cached
/// **neighbor** bucket: scan the surrounding rings nearest-first, and
/// for each cached candidate classify the delta between the neighbor's
/// representative plasma state (where its bits were computed) and the
/// requested one. A candidate whose classified bound passes the
/// configured tolerance is adopted — its `Arc` is re-inserted under the
/// missed key (so the bucket answers exactly like any other hit from
/// now on) and returned. Probing uses [`ShardedLruCache::peek`] so the
/// speculative scan neither skews hit-rate statistics nor refreshes
/// entries the scan rejects.
fn neighbor_seed(
    shared: &Shared,
    quantizer: &Quantizer,
    ion: usize,
    key: &StateKey,
) -> Option<Arc<Vec<f64>>> {
    if shared.neighbor_radius == 0 {
        return None;
    }
    let db = &shared.engine.config().db;
    let bins = &shared.bin_tables[key.grid_id];
    let target = quantizer.representative(key);
    for neighbor in quantizer.neighbors(key, shared.neighbor_radius) {
        let Some(partial) = shared.cache.peek(&CacheKey {
            ion_index: ion,
            state: neighbor,
        }) else {
            continue;
        };
        let origin = quantizer.representative(&neighbor);
        let class = rrc_spectral::classify_ion(db, ion, &origin, &target, bins);
        if class.reusable(shared.neighbor_tolerance) {
            shared.metrics.on_neighbor_hit();
            shared.cache.insert(
                CacheKey {
                    ion_index: ion,
                    state: *key,
                },
                Arc::clone(&partial),
            );
            return Some(partial);
        }
        shared.metrics.on_neighbor_reject();
    }
    None
}

/// The caller-runs admission path: resolve the whole request on the
/// submitting thread via [`Engine::compute_inline`], still consulting
/// and filling the shared cache (so an overloaded burst of repeated
/// queries stays cheap).
fn caller_run(shared: &Shared, request: &SpectrumRequest) -> SpectrumResponse {
    let db = &shared.engine.config().db;
    let quantizer = shared.quantizer();
    let key = quantizer.state_key(&request.point, request.grid_id);
    let point = quantizer.representative(&key);
    let grid = &shared.grids[request.grid_id];
    let ions = selected_ions(db, request);
    let mut partials: BTreeMap<usize, Arc<Vec<f64>>> = BTreeMap::new();
    let mut computed = 0u64;
    for &ion in &ions {
        let cache_key = CacheKey {
            ion_index: ion,
            state: key,
        };
        let partial = match shared.cache.get(&cache_key) {
            Some(hit) => hit,
            None => match neighbor_seed(shared, &quantizer, ion, &key) {
                Some(seeded) => seeded,
                None => {
                    let levels = db.levels_by_index(ion).len();
                    let outcome = shared.engine.compute_inline(ion, 0..levels, &point, grid);
                    computed += 1;
                    let value = Arc::new(outcome.partial);
                    shared.cache.insert(cache_key, Arc::clone(&value));
                    value
                }
            },
        };
        partials.insert(ion, partial);
    }
    SpectrumResponse {
        bins: assemble(grid.bins(), &ions, &partials),
        grid_id: request.grid_id,
        ions_computed: computed,
        ions_from_cache: ions.len() as u64 - computed,
        caller_ran: true,
    }
}

/// The optimistic wall-seconds estimate SLO admission prices a request
/// at: blended per-ion cost units rescaled by the fastest observed
/// device rate, summed over the selected ions, divided by the device
/// count (the fan-out runs ions in parallel). Optimistic on purpose —
/// admission must only shed requests that are infeasible even under
/// the best placement. Before the first measured settle the estimate
/// is 0 (no absolute time scale yet → admit).
fn estimate_request_seconds(shared: &Shared, request: &SpectrumRequest) -> f64 {
    let db = &shared.engine.config().db;
    let bins = &shared.bin_tables[request.grid_id];
    let serial: f64 = selected_ions(db, request)
        .into_iter()
        .map(|ion| {
            let levels = db.levels_by_index(ion).len();
            shared
                .engine
                .estimate_task_seconds(ion, 0..levels, &request.point, bins)
        })
        .sum();
    serial / shared.engine.gpus().max(1) as f64
}

fn batcher_loop(shared: &Shared) {
    while let Some((_, first)) = shared.queue.pop() {
        let mut batch = vec![first];
        while batch.len() < shared.max_batch() {
            match shared.queue.try_pop() {
                Some((_, next)) => batch.push(next),
                None => break,
            }
        }
        let picked_at = Instant::now();
        for queued in &batch {
            shared
                .metrics
                .on_picked_up(picked_at.duration_since(queued.submitted_at).as_secs_f64());
        }
        shared.metrics.on_batch(batch.len());
        process_batch(shared, batch, picked_at);
    }
}

fn process_batch(shared: &Shared, batch: Vec<QueuedRequest>, picked_at: Instant) {
    let db = &shared.engine.config().db;
    // One quantizer snapshot per batch: a mid-batch DropBits retune
    // must not split a group between key and representative.
    let quantizer = shared.quantizer();
    // Group requests sharing a quantized plasma state + grid; BTreeMap
    // so group processing order is deterministic.
    let mut groups: BTreeMap<StateKey, Vec<usize>> = BTreeMap::new();
    for (i, queued) in batch.iter().enumerate() {
        let key = quantizer.state_key(&queued.request.point, queued.request.grid_id);
        groups.entry(key).or_default().push(i);
    }

    for (key, members) in groups {
        let point = quantizer.representative(&key);
        let grid = &shared.grids[key.grid_id];
        let bins = &shared.bin_tables[key.grid_id];

        // Per-request ion lists and their union — one fan-out serves
        // every member of the group.
        let member_ions: Vec<Vec<usize>> = members
            .iter()
            .map(|&i| selected_ions(db, &batch[i].request))
            .collect();
        let union: BTreeSet<usize> = member_ions.iter().flatten().copied().collect();
        // The group's earliest deadline rides on every fanned-out ion:
        // one fan-out serves all members, so EDF staging must honour
        // the most urgent of them (INFINITY when none carries an SLO).
        let group_deadline = members
            .iter()
            .map(|&i| batch[i].request.deadline_secs())
            .fold(f64::INFINITY, f64::min);

        let mut partials: BTreeMap<usize, Arc<Vec<f64>>> = BTreeMap::new();
        let mut computed: BTreeSet<usize> = BTreeSet::new();
        let mut pending: Vec<usize> = Vec::new();
        for &ion in &union {
            let cache_key = CacheKey {
                ion_index: ion,
                state: key,
            };
            match shared
                .cache
                .get(&cache_key)
                .or_else(|| neighbor_seed(shared, &quantizer, ion, &key))
            {
                Some(hit) => {
                    partials.insert(ion, hit);
                }
                None => {
                    computed.insert(ion);
                    pending.push(ion);
                }
            }
        }

        // Fan the cache-missing ions out to the engine. Under the
        // engine's recovery ladder every job normally answers (retry →
        // reassign → CPU fallback), but with CPU fallback disabled a
        // job that exhausts its device retries is dropped without a
        // reply; re-fan the unanswered ions out up to `fanout_retries`
        // times before refusing the affected requests.
        let mut refanouts = 0u32;
        while !pending.is_empty() {
            let (tx, rx) = channel();
            for &ion in &pending {
                let levels = db.levels_by_index(ion).len();
                let job = IonJob {
                    ion_index: ion,
                    level_range: 0..levels,
                    point,
                    grid: grid.clone(),
                    bins: Arc::clone(bins),
                    tag: ion as u64,
                    deadline: group_deadline,
                    reply: tx.clone(),
                };
                assert!(
                    shared.engine.submit(job).is_ok(),
                    "engine outlives the batcher"
                );
            }
            drop(tx);
            let outcomes: Vec<IonOutcome> = rx.iter().collect();
            for outcome in outcomes {
                let value = Arc::new(outcome.partial);
                shared.cache.insert(
                    CacheKey {
                        ion_index: outcome.ion_index,
                        state: key,
                    },
                    Arc::clone(&value),
                );
                partials.insert(outcome.ion_index, value);
            }
            pending.retain(|ion| !partials.contains_key(ion));
            if pending.is_empty() || refanouts >= shared.fanout_retries {
                break;
            }
            refanouts += 1;
            shared.metrics.on_fanout_retry(pending.len() as u64);
        }
        let failed: BTreeSet<usize> = pending.into_iter().collect();

        for (&i, ions) in members.iter().zip(&member_ions) {
            let queued = &batch[i];
            if ions.iter().any(|ion| failed.contains(ion)) {
                shared.metrics.on_device_failure();
                let _ = queued.reply.send(Err(ServiceError::DeviceFailed));
                continue;
            }
            let from_cache = ions.iter().filter(|ion| !computed.contains(ion)).count();
            let response = SpectrumResponse {
                bins: assemble(grid.bins(), ions, &partials),
                grid_id: key.grid_id,
                ions_computed: (ions.len() - from_cache) as u64,
                ions_from_cache: from_cache as u64,
                caller_ran: false,
            };
            let _ = queued.reply.send(Ok(response));
            let now = Instant::now();
            shared.metrics.on_responded(
                queued.request.priority,
                now.duration_since(picked_at).as_secs_f64(),
                now.duration_since(queued.submitted_at).as_secs_f64(),
            );
        }
    }
}
