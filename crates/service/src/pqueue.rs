//! Priority-tiered request admission: one bounded queue per
//! [`Priority`] class and a weighted-fair dequeue across them.
//!
//! A single shared queue lets a bulk precompute sweep bury interactive
//! traffic — head-of-line blocking at the admission edge. Splitting the
//! classes gives each its **own** capacity bound (bulk saturating its
//! queue sheds bulk, never interactive) and lets the dequeue side
//! enforce a service ratio: when both classes are backlogged, the
//! batcher takes `interactive_weight` interactive requests for every
//! bulk one, so bulk work keeps flowing (no starvation) while
//! interactive latency stays bounded by its own arrival rate, not the
//! bulk backlog.
//!
//! Close-and-drain semantics mirror [`mpi_sim::BoundedQueue`]: after
//! [`PriorityQueues::close`], pushes are refused with the item returned,
//! while pops drain whatever is still queued before reporting
//! end-of-stream.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

use desim::Priority;
use mpi_sim::TryPushError;

struct PqInner<T> {
    queues: [VecDeque<T>; 2],
    closed: bool,
    /// Consecutive interactive dequeues while bulk was waiting — the
    /// weighted-fair credit counter.
    streak: u32,
}

/// Per-priority bounded queues with weighted-fair dequeue (module
/// docs).
pub struct PriorityQueues<T> {
    inner: Mutex<PqInner<T>>,
    available: Condvar,
    caps: [usize; 2],
    interactive_weight: u32,
}

impl<T> PriorityQueues<T> {
    /// Queues bounded at `caps[class.index()]` items each (floored at
    /// 1), serving `interactive_weight` interactive requests per bulk
    /// one when both classes are backlogged (floored at 1).
    #[must_use]
    pub fn new(caps: [usize; 2], interactive_weight: u32) -> PriorityQueues<T> {
        PriorityQueues {
            inner: Mutex::new(PqInner {
                queues: [VecDeque::new(), VecDeque::new()],
                closed: false,
                streak: 0,
            }),
            available: Condvar::new(),
            caps: caps.map(|c| c.max(1)),
            interactive_weight: interactive_weight.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PqInner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueue `item` into its class queue without blocking.
    ///
    /// # Errors
    /// [`TryPushError::Full`] when the class queue is at its bound,
    /// [`TryPushError::Closed`] after [`close`](Self::close); the item
    /// rides back inside the error either way.
    pub fn try_push(&self, priority: Priority, item: T) -> Result<(), TryPushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(TryPushError::Closed(item));
        }
        let idx = priority.index();
        if inner.queues[idx].len() >= self.caps[idx] {
            return Err(TryPushError::Full(item));
        }
        inner.queues[idx].push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// The weighted-fair choice over the current occupancy: which class
    /// the next dequeue should take, `None` when both queues are empty.
    fn pick(&self, inner: &mut PqInner<T>) -> Option<Priority> {
        let has_interactive = !inner.queues[0].is_empty();
        let has_bulk = !inner.queues[1].is_empty();
        if has_interactive && (!has_bulk || inner.streak < self.interactive_weight) {
            inner.streak = if has_bulk { inner.streak + 1 } else { 0 };
            Some(Priority::Interactive)
        } else if has_bulk {
            inner.streak = 0;
            Some(Priority::Bulk)
        } else {
            None
        }
    }

    /// Dequeue the next request under the weighted-fair policy,
    /// blocking while both queues are empty. `None` means closed *and*
    /// fully drained.
    pub fn pop(&self) -> Option<(Priority, T)> {
        let mut inner = self.lock();
        loop {
            if let Some(class) = self.pick(&mut inner) {
                let item = inner.queues[class.index()]
                    .pop_front()
                    .expect("pick saw a non-empty queue");
                return Some((class, item));
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeue without blocking: `None` when both queues are empty
    /// (whether or not the queues are closed).
    pub fn try_pop(&self) -> Option<(Priority, T)> {
        let mut inner = self.lock();
        let class = self.pick(&mut inner)?;
        let item = inner.queues[class.index()]
            .pop_front()
            .expect("pick saw a non-empty queue");
        Some((class, item))
    }

    /// Total queued items across both classes.
    #[must_use]
    pub fn len(&self) -> usize {
        let inner = self.lock();
        inner.queues.iter().map(VecDeque::len).sum()
    }

    /// Queued items of one class.
    #[must_use]
    pub fn class_len(&self, priority: Priority) -> usize {
        self.lock().queues[priority.index()].len()
    }

    /// Whether both class queues are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound of one class queue.
    #[must_use]
    pub fn capacity(&self, priority: Priority) -> usize {
        self.caps[priority.index()]
    }

    /// Refuse new pushes from now on; queued items keep draining.
    /// Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Whether [`close`](Self::close) has run.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_class_bounds_are_independent() {
        let q: PriorityQueues<u32> = PriorityQueues::new([2, 1], 4);
        assert!(q.try_push(Priority::Interactive, 1).is_ok());
        assert!(q.try_push(Priority::Interactive, 2).is_ok());
        assert!(matches!(
            q.try_push(Priority::Interactive, 3),
            Err(TryPushError::Full(3))
        ));
        // Bulk's bound is its own: interactive being full is irrelevant.
        assert!(q.try_push(Priority::Bulk, 10).is_ok());
        assert!(matches!(
            q.try_push(Priority::Bulk, 11),
            Err(TryPushError::Full(11))
        ));
        assert_eq!(q.len(), 3);
        assert_eq!(q.class_len(Priority::Interactive), 2);
        assert_eq!(q.class_len(Priority::Bulk), 1);
    }

    #[test]
    fn weighted_fair_serves_bulk_through_interactive_pressure() {
        let q: PriorityQueues<u32> = PriorityQueues::new([64, 64], 3);
        for i in 0..12 {
            q.try_push(Priority::Interactive, i).unwrap();
        }
        for i in 100..104 {
            q.try_push(Priority::Bulk, i).unwrap();
        }
        let order: Vec<Priority> = (0..16).map(|_| q.try_pop().unwrap().0).collect();
        // 3 interactive per bulk while both are backlogged.
        assert_eq!(
            order[..4].iter().filter(|p| **p == Priority::Bulk).count(),
            1
        );
        let bulk_served = order.iter().filter(|p| **p == Priority::Bulk).count();
        assert_eq!(bulk_served, 4, "bulk never starves");
        assert_eq!(
            order[3],
            Priority::Bulk,
            "the 4th dequeue is bulk's weighted turn"
        );
    }

    #[test]
    fn interactive_only_traffic_never_waits_on_credits() {
        let q: PriorityQueues<u32> = PriorityQueues::new([8, 8], 2);
        for i in 0..6 {
            q.try_push(Priority::Interactive, i).unwrap();
        }
        for i in 0..6 {
            assert_eq!(q.try_pop(), Some((Priority::Interactive, i)));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_refuses_pushes_but_drains_pops() {
        let q: PriorityQueues<u32> = PriorityQueues::new([4, 4], 4);
        q.try_push(Priority::Bulk, 7).unwrap();
        q.close();
        assert!(q.is_closed());
        assert!(matches!(
            q.try_push(Priority::Interactive, 1),
            Err(TryPushError::Closed(1))
        ));
        assert_eq!(q.pop(), Some((Priority::Bulk, 7)));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_on_close() {
        let q = std::sync::Arc::new(PriorityQueues::<u32>::new([4, 4], 4));
        let popper = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                let first = q.pop();
                let second = q.pop();
                (first, second)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(Priority::Interactive, 42).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        let (first, second) = popper.join().unwrap();
        assert_eq!(first, Some((Priority::Interactive, 42)));
        assert_eq!(second, None);
    }
}
