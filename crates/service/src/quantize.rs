//! Plasma-state quantization for batching and cache keys.
//!
//! Two requests can share one ion fan-out (and one cache line) only if
//! they agree on the plasma state *exactly* — floating-point equality,
//! not closeness, because the service guarantees bitwise-reproducible
//! answers. Quantization widens "exactly" in a controlled way: masking
//! the low `drop_bits` of the f64 mantissa snaps nearby states to a
//! shared representative, and **the representative is what gets
//! computed**, so every request in the bucket still receives the
//! bitwise-identical spectrum of the same (slightly snapped) state.
//!
//! `drop_bits = 0` is the exact mode: the key is the state's own bit
//! pattern and no snapping occurs. Each dropped bit roughly doubles
//! the bucket width (~2^(drop-52) relative), trading state resolution
//! for batching and cache hit-rate.

use rrc_spectral::GridPoint;

/// Mantissa-masking quantizer for f64 plasma-state coordinates.
#[derive(Debug, Clone, Copy, Default)]
pub struct Quantizer {
    /// Low mantissa bits to zero (clamped to the 52-bit mantissa).
    pub drop_bits: u32,
}

impl Quantizer {
    /// A quantizer dropping `drop_bits` mantissa bits.
    #[must_use]
    pub fn new(drop_bits: u32) -> Quantizer {
        Quantizer {
            drop_bits: drop_bits.min(52),
        }
    }

    /// The key bits of `value` (its representative's bit pattern).
    #[must_use]
    pub fn quantize(&self, value: f64) -> u64 {
        let mask = !0u64 << self.drop_bits;
        value.to_bits() & mask
    }

    /// The representative value of a key produced by
    /// [`Quantizer::quantize`].
    #[must_use]
    pub fn dequantize(&self, bits: u64) -> f64 {
        f64::from_bits(bits)
    }

    /// The batching/cache key of a plasma state on one grid.
    ///
    /// This is **the** stable key derivation shared by every tier: the
    /// service batcher groups requests by it, the per-ion caches key on
    /// it, and the shard router's route cache, affinity placement, and
    /// hot-state tracker all consume the same key (via
    /// [`StateKey::stable_hash`] where a digest is needed). Deriving
    /// the key anywhere else would let two tiers disagree on
    /// quantization; don't.
    #[must_use]
    pub fn state_key(&self, point: &GridPoint, grid_id: usize) -> StateKey {
        StateKey {
            // Temperature is quantized directly (kT is a fixed positive
            // multiple of it, so bucketing T buckets kT identically and
            // the representative reconstructs without a division
            // round-off).
            kt_q: self.quantize(point.temperature_k),
            density_q: self.quantize(point.density_cm3),
            grid_id,
        }
    }

    /// The representative plasma state of `key` — what the batcher
    /// actually computes (and caches) for every request in the bucket.
    #[must_use]
    pub fn representative(&self, key: &StateKey) -> GridPoint {
        GridPoint {
            temperature_k: self.dequantize(key.kt_q),
            density_cm3: self.dequantize(key.density_q),
            time_s: 0.0,
            index: 0,
        }
    }

    /// The key of the bucket `offset` steps away from `bits` along one
    /// axis, in **value order** (negative offsets go toward -∞), or
    /// `None` when the walk saturates past the finite range (an
    /// exponent-boundary neighbor would be ±inf/NaN) or off either end
    /// of the monotone line.
    ///
    /// Works on the monotone integer mapping of IEEE-754 totally
    /// ordered doubles (sign bit flipped for positives, all bits
    /// flipped for negatives), where every quantization bucket is one
    /// aligned `2^drop_bits`-wide interval — so "the k-th neighbor" is
    /// plain integer arithmetic even across the ±0 sign boundary.
    fn axis_neighbor(&self, bits: u64, offset: i64) -> Option<u64> {
        const SIGN: u64 = 1u64 << 63;
        let to_monotone = |b: u64| if b & SIGN != 0 { !b } else { b | SIGN };
        let from_monotone = |m: u64| if m & SIGN != 0 { m & !SIGN } else { !m };
        let step = 1u64 << self.drop_bits;
        // Align onto the bucket's monotone start (negative-axis keys
        // map to the *top* of their bucket interval).
        let base = to_monotone(bits) & !(step - 1);
        let m = if offset >= 0 {
            base.checked_add((offset as u64).checked_mul(step)?)?
        } else {
            base.checked_sub(offset.unsigned_abs().checked_mul(step)?)?
        };
        let candidate = from_monotone(m) & (!0u64 << self.drop_bits);
        // Reject non-finite buckets: saturate at the exponent
        // boundaries instead of wrapping into inf/NaN space.
        if !f64::from_bits(candidate).is_finite() {
            return None;
        }
        Some(candidate)
    }

    /// All state keys within Chebyshev distance `radius` (in buckets)
    /// of `key` on the (temperature × density) plane, same grid,
    /// ordered nearest ring first — the scan order for seeding a cache
    /// miss from a nearby hit. `key` itself is excluded. Empty when
    /// `radius == 0` or in exact mode (`drop_bits == 0`: buckets are
    /// single bit patterns and "neighboring state" has no meaningful
    /// width).
    #[must_use]
    pub fn neighbors(&self, key: &StateKey, radius: u32) -> Vec<StateKey> {
        if self.drop_bits == 0 || radius == 0 {
            return Vec::new();
        }
        let r = i64::from(radius);
        let mut out = Vec::new();
        for ring in 1..=r {
            for dk in -ring..=ring {
                for dd in -ring..=ring {
                    if dk.abs().max(dd.abs()) != ring {
                        continue;
                    }
                    let (Some(kt_q), Some(density_q)) = (
                        self.axis_neighbor(key.kt_q, dk),
                        self.axis_neighbor(key.density_q, dd),
                    ) else {
                        continue;
                    };
                    out.push(StateKey {
                        kt_q,
                        density_q,
                        grid_id: key.grid_id,
                    });
                }
            }
        }
        out
    }
}

/// Quantized plasma state + grid: requests with equal keys are
/// batched together and share cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateKey {
    /// Quantized temperature bits (kT up to the Boltzmann constant).
    pub kt_q: u64,
    /// Quantized electron-density bits.
    pub density_q: u64,
    /// The requested energy grid.
    pub grid_id: usize,
}

impl StateKey {
    /// A seeded, stable 64-bit digest of this key — a pure function of
    /// `(seed, key)`, so restarts reproduce it exactly. Every consumer
    /// that hashes quantized states (the router's rendezvous affinity
    /// weights, replica tie-breaks, and the hot-state sketch rows) goes
    /// through here, so no two tiers can disagree on how a state
    /// digests.
    #[must_use]
    pub fn stable_hash(&self, seed: u64) -> u64 {
        // splitmix64 chain — cheap, stateless, full-avalanche; the
        // same mixer the routing ring and seeded traffic use.
        fn mix(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        }
        mix(seed ^ mix(self.kt_q ^ mix(self.density_q ^ mix(self.grid_id as u64))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_drop_is_exact() {
        let q = Quantizer::new(0);
        for v in [1.0e7, 9.9e6, 1.234_567_890_123e7, 4.2e-3] {
            assert_eq!(q.dequantize(q.quantize(v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn dropped_bits_bucket_neighbors() {
        // 32 dropped bits ≈ 2^-20 relative bucket width; values 1e-9
        // apart land together (away from a bucket edge).
        let q = Quantizer::new(32);
        let a = 1.000_000_001e7;
        let b = 1.000_000_002e7;
        assert_eq!(q.quantize(a), q.quantize(b), "near states share a bucket");
        let far = 1.1e7;
        assert_ne!(q.quantize(a), q.quantize(far));
        // The representative is itself a fixed point of quantization.
        let rep = q.dequantize(q.quantize(a));
        assert_eq!(q.quantize(rep), q.quantize(a));
    }

    fn key_of(q: &Quantizer, t: f64, d: f64) -> StateKey {
        q.state_key(
            &GridPoint {
                temperature_k: t,
                density_cm3: d,
                time_s: 0.0,
                index: 0,
            },
            0,
        )
    }

    #[test]
    fn neighbors_disabled_in_exact_mode_and_at_radius_zero() {
        let exact = Quantizer::new(0);
        let k = key_of(&exact, 1e7, 1.0);
        assert!(exact.neighbors(&k, 3).is_empty(), "drop_bits 0 ⇒ none");
        let q = Quantizer::new(32);
        let k = key_of(&q, 1e7, 1.0);
        assert!(q.neighbors(&k, 0).is_empty(), "radius 0 ⇒ none");
    }

    #[test]
    fn neighbors_are_adjacent_buckets_in_value_order() {
        let q = Quantizer::new(32);
        let k = key_of(&q, 1e7, 1.0);
        let n1 = q.neighbors(&k, 1);
        // Full first ring on the (T, n_e) plane: 8 buckets.
        assert_eq!(n1.len(), 8);
        for n in &n1 {
            assert_eq!(n.grid_id, k.grid_id);
            assert_ne!(*n, k, "self excluded");
            // Every neighbor key is its own bucket's representative.
            assert_eq!(q.quantize(q.dequantize(n.kt_q)), n.kt_q);
            assert_eq!(q.quantize(q.dequantize(n.density_q)), n.density_q);
        }
        // Along one axis the ±1 buckets bracket the center in value.
        let up = q.axis_neighbor(k.kt_q, 1).expect("axis up");
        let down = q.axis_neighbor(k.kt_q, -1).expect("axis down");
        assert!(q.dequantize(down) < q.dequantize(k.kt_q));
        assert!(q.dequantize(k.kt_q) < q.dequantize(up));
        // Adjacency: one bucket up is exactly one mask step in bits.
        assert_eq!(up, k.kt_q + (1u64 << 32));
    }

    #[test]
    fn neighbor_rings_are_ordered_nearest_first() {
        let q = Quantizer::new(30);
        let k = key_of(&q, 1e7, 1.0);
        let n2 = q.neighbors(&k, 2);
        assert_eq!(n2.len(), 8 + 16, "ring 1 then ring 2");
        let dist = |n: &StateKey| {
            let axis = |a: u64, b: u64, step: u64| a.abs_diff(b) / step;
            axis(n.kt_q, k.kt_q, 1 << 30).max(axis(n.density_q, k.density_q, 1 << 30))
        };
        assert!(n2[..8].iter().all(|n| dist(n) == 1));
        assert!(n2[8..].iter().all(|n| dist(n) == 2));
    }

    #[test]
    fn neighbors_cross_the_sign_boundary_in_value_order() {
        // A bucket just above +0: stepping down crosses into negative
        // territory without wrapping — the monotone mapping keeps the
        // walk ordered by value straight through ±0.
        let q = Quantizer::new(20);
        let tiny = f64::from_bits(1u64 << 21); // subnormal, > +0 bucket
        let k = key_of(&q, tiny, 1.0);
        let down: Vec<f64> = (1..=4)
            .map(|i| q.dequantize(q.axis_neighbor(k.kt_q, -i).expect("down")))
            .collect();
        let mut previous = q.dequantize(k.kt_q);
        for v in down {
            assert!(
                v < previous || (v == 0.0 && previous == 0.0 && v.is_sign_negative()),
                "{v:e} !< {previous:e}"
            );
            previous = v;
        }
        assert!(previous < 0.0, "four buckets down is negative");
    }

    #[test]
    fn neighbors_saturate_at_the_exponent_boundary() {
        // The top finite bucket has no upward neighbor (that would be
        // inf/NaN space); the ring just shrinks instead of wrapping.
        let q = Quantizer::new(40);
        let k = key_of(&q, f64::MAX, 1.0);
        assert!(q.axis_neighbor(k.kt_q, 1).is_none(), "up is inf");
        assert!(q.axis_neighbor(k.kt_q, -1).is_some(), "down is finite");
        let ring = q.neighbors(&k, 1);
        assert_eq!(ring.len(), 5, "3 of 8 ring-1 buckets are non-finite");
        for n in &ring {
            assert!(q.dequantize(n.kt_q).is_finite());
            assert!(q.dequantize(n.density_q).is_finite());
        }
    }

    #[test]
    fn stable_hash_is_deterministic_and_seed_sensitive() {
        let q = Quantizer::new(0);
        let a = key_of(&q, 1e7, 1.0);
        let b = key_of(&q, 1.1e7, 1.0);
        // Deterministic: the digest is a pure function of (seed, key),
        // so a restarted tier reproduces every routing decision.
        assert_eq!(a.stable_hash(17), a.stable_hash(17));
        // Both the seed and the key must matter.
        assert_ne!(a.stable_hash(17), a.stable_hash(18));
        assert_ne!(a.stable_hash(17), b.stable_hash(17));
        // Grid id participates too (distinct grids must not collide).
        let c = StateKey { grid_id: 1, ..a };
        assert_ne!(a.stable_hash(17), c.stable_hash(17));
    }

    #[test]
    fn state_key_separates_grid_ids() {
        let q = Quantizer::new(0);
        let p = GridPoint {
            temperature_k: 1e7,
            density_cm3: 1.0,
            time_s: 0.0,
            index: 3,
        };
        assert_ne!(q.state_key(&p, 0), q.state_key(&p, 1));
        // index/time are metadata, not state.
        let p2 = GridPoint { index: 9, ..p };
        assert_eq!(q.state_key(&p, 0), q.state_key(&p2, 0));
    }
}
