//! Plasma-state quantization for batching and cache keys.
//!
//! Two requests can share one ion fan-out (and one cache line) only if
//! they agree on the plasma state *exactly* — floating-point equality,
//! not closeness, because the service guarantees bitwise-reproducible
//! answers. Quantization widens "exactly" in a controlled way: masking
//! the low `drop_bits` of the f64 mantissa snaps nearby states to a
//! shared representative, and **the representative is what gets
//! computed**, so every request in the bucket still receives the
//! bitwise-identical spectrum of the same (slightly snapped) state.
//!
//! `drop_bits = 0` is the exact mode: the key is the state's own bit
//! pattern and no snapping occurs. Each dropped bit roughly doubles
//! the bucket width (~2^(drop-52) relative), trading state resolution
//! for batching and cache hit-rate.

use rrc_spectral::GridPoint;

/// Mantissa-masking quantizer for f64 plasma-state coordinates.
#[derive(Debug, Clone, Copy, Default)]
pub struct Quantizer {
    /// Low mantissa bits to zero (clamped to the 52-bit mantissa).
    pub drop_bits: u32,
}

impl Quantizer {
    /// A quantizer dropping `drop_bits` mantissa bits.
    #[must_use]
    pub fn new(drop_bits: u32) -> Quantizer {
        Quantizer {
            drop_bits: drop_bits.min(52),
        }
    }

    /// The key bits of `value` (its representative's bit pattern).
    #[must_use]
    pub fn quantize(&self, value: f64) -> u64 {
        let mask = !0u64 << self.drop_bits;
        value.to_bits() & mask
    }

    /// The representative value of a key produced by
    /// [`Quantizer::quantize`].
    #[must_use]
    pub fn dequantize(&self, bits: u64) -> f64 {
        f64::from_bits(bits)
    }

    /// The batching/cache key of a plasma state on one grid.
    #[must_use]
    pub fn state_key(&self, point: &GridPoint, grid_id: usize) -> StateKey {
        StateKey {
            // Temperature is quantized directly (kT is a fixed positive
            // multiple of it, so bucketing T buckets kT identically and
            // the representative reconstructs without a division
            // round-off).
            kt_q: self.quantize(point.temperature_k),
            density_q: self.quantize(point.density_cm3),
            grid_id,
        }
    }

    /// The representative plasma state of `key` — what the batcher
    /// actually computes (and caches) for every request in the bucket.
    #[must_use]
    pub fn representative(&self, key: &StateKey) -> GridPoint {
        GridPoint {
            temperature_k: self.dequantize(key.kt_q),
            density_cm3: self.dequantize(key.density_q),
            time_s: 0.0,
            index: 0,
        }
    }
}

/// Quantized plasma state + grid: requests with equal keys are
/// batched together and share cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateKey {
    /// Quantized temperature bits (kT up to the Boltzmann constant).
    pub kt_q: u64,
    /// Quantized electron-density bits.
    pub density_q: u64,
    /// The requested energy grid.
    pub grid_id: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_drop_is_exact() {
        let q = Quantizer::new(0);
        for v in [1.0e7, 9.9e6, 1.234_567_890_123e7, 4.2e-3] {
            assert_eq!(q.dequantize(q.quantize(v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn dropped_bits_bucket_neighbors() {
        // 32 dropped bits ≈ 2^-20 relative bucket width; values 1e-9
        // apart land together (away from a bucket edge).
        let q = Quantizer::new(32);
        let a = 1.000_000_001e7;
        let b = 1.000_000_002e7;
        assert_eq!(q.quantize(a), q.quantize(b), "near states share a bucket");
        let far = 1.1e7;
        assert_ne!(q.quantize(a), q.quantize(far));
        // The representative is itself a fixed point of quantization.
        let rep = q.dequantize(q.quantize(a));
        assert_eq!(q.quantize(rep), q.quantize(a));
    }

    #[test]
    fn state_key_separates_grid_ids() {
        let q = Quantizer::new(0);
        let p = GridPoint {
            temperature_k: 1e7,
            density_cm3: 1.0,
            time_s: 0.0,
            index: 3,
        };
        assert_ne!(q.state_key(&p, 0), q.state_key(&p, 1));
        // index/time are metadata, not state.
        let p2 = GridPoint { index: 9, ..p };
        assert_eq!(q.state_key(&p, 0), q.state_key(&p2, 0));
    }
}
