//! Service-level observability: counters, queue-depth watermark, and
//! per-stage latency histograms.
//!
//! Latency is recorded into [`desim::LatencyHistogram`]s (log-bucketed,
//! nearest-rank quantiles) at three stages of the request lifecycle:
//!
//! * **queue** — submit accepted → batcher picked the request up;
//! * **compute** — batcher pickup → response ready (includes the
//!   engine fan-out and cache fills of the request's batch);
//! * **total** — submit accepted → response delivered (what a caller
//!   observes on [`crate::Ticket::wait`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use desim::{LatencyHistogram, Priority};

/// Shared counters + histograms; every field is updated concurrently.
#[derive(Default)]
pub struct ServiceMetrics {
    submitted: AtomicU64,
    responded: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_infeasible: AtomicU64,
    caller_runs: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    queue_depth_peak: AtomicU64,
    fanout_retried_ions: AtomicU64,
    device_failures: AtomicU64,
    neighbor_hits: AtomicU64,
    neighbor_rejects: AtomicU64,
    queue_latency: Mutex<LatencyHistogram>,
    compute_latency: Mutex<LatencyHistogram>,
    total_latency: Mutex<LatencyHistogram>,
    /// End-to-end latency split by request class, indexed by
    /// [`Priority::index`] — the per-tier SLO view (interactive p95
    /// must hold while bulk absorbs overload).
    priority_latency: [Mutex<LatencyHistogram>; 2],
}

/// Point-in-time copy of the metrics for reporting.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Responses delivered by the batcher.
    pub responded: u64,
    /// Requests refused at admission for any reason (the sum of the
    /// two split counters below).
    pub shed: u64,
    /// Requests refused because their class queue was at capacity
    /// under the shed policy ([`crate::ServiceError::Overloaded`] —
    /// retrying later can succeed).
    pub shed_queue_full: u64,
    /// Requests refused because the remaining deadline budget could
    /// not cover the cost model's estimate
    /// ([`crate::ServiceError::DeadlineInfeasible`] — shed *before*
    /// any fan-out, so an impossible SLO wastes zero compute).
    pub shed_infeasible: u64,
    /// Requests answered inline by the caller-runs admission policy.
    pub caller_runs: u64,
    /// Batches the batcher processed.
    pub batches: u64,
    /// Requests across all batches (mean batch size =
    /// `batched_requests / batches`).
    pub batched_requests: u64,
    /// Highest request-queue occupancy observed at submit time.
    pub queue_depth_peak: u64,
    /// Ion partials the engine left unanswered (device faults with CPU
    /// fallback disabled) that the batcher re-fanned-out.
    pub fanout_retried_ions: u64,
    /// Requests refused with [`crate::ServiceError::DeviceFailed`]
    /// after the fan-out retry budget was exhausted.
    pub device_failures: u64,
    /// Ion cache misses answered by a delta recalc seeded from a
    /// cached neighbor bucket within the configured radius (see
    /// [`crate::ServiceConfig::neighbor_radius`]).
    pub neighbor_hits: u64,
    /// Neighbor candidates found in the cache but rejected because the
    /// classified delta bound exceeded
    /// [`crate::ServiceConfig::neighbor_tolerance`].
    pub neighbor_rejects: u64,
    /// Queue-stage latency quantiles/mean, seconds.
    pub queue: StageLatency,
    /// Compute-stage latency quantiles/mean, seconds.
    pub compute: StageLatency,
    /// End-to-end latency quantiles/mean, seconds.
    pub total: StageLatency,
    /// End-to-end latency split by request class, indexed by
    /// [`Priority::index`] (`[interactive, bulk]`).
    pub per_priority: [StageLatency; 2],
    /// Per-device staged tasks stolen from another device's lane
    /// (filled from the engine's scheduler by
    /// [`crate::SpectralService::metrics`]; empty for a bare
    /// [`ServiceMetrics::snapshot`]).
    pub scheduler_steals: Vec<u64>,
    /// Staged device tasks pulled back to worker CPUs by the fallback
    /// swap.
    pub scheduler_cpu_steals: u64,
    /// Per-device outstanding weighted (cost-unit) backlog at snapshot
    /// time.
    pub scheduler_weighted_loads: Vec<u64>,
    /// Per-device health state (fault ladder) at snapshot time.
    pub scheduler_health: Vec<hybrid_sched::HealthState>,
    /// Healthy/Degraded → Quarantined transitions across all devices.
    pub scheduler_quarantines: u64,
    /// Quarantined → Probation re-admissions across all devices.
    pub scheduler_probations: u64,
    /// Probation → Healthy recoveries across all devices.
    pub scheduler_recoveries: u64,
    /// Mean absolute measured-vs-static cost residual across the
    /// online cost model's tracked classes, in milli cost units
    /// (`0` until the first measured settle).
    pub scheduler_cost_residual_milli: u64,
    /// Measured-cost samples the online cost model has folded in.
    pub scheduler_cost_observations: u64,
    /// The resident tuner's per-dimension view (`None` when the
    /// engine runs with tuning disabled).
    pub scheduler_tuner: Option<hybrid_sched::TunerSnapshot>,
    /// Ion-partial cache effectiveness, totalled across shards (filled
    /// by [`MetricsSnapshot::with_cache`]; all-zero for a bare
    /// [`ServiceMetrics::snapshot`]).
    pub cache: crate::cache::CacheStats,
    /// The same counters, per cache shard in shard order — shows
    /// *which* shard is thrashing, not just that one is.
    pub cache_shards: Vec<crate::cache::CacheStats>,
}

impl MetricsSnapshot {
    /// Fill the cache-view fields from the live ion-partial cache.
    #[must_use]
    pub fn with_cache(mut self, cache: &crate::cache::ShardedLruCache) -> MetricsSnapshot {
        self.cache_shards = cache.shard_stats();
        self.cache = self
            .cache_shards
            .iter()
            .fold(crate::cache::CacheStats::default(), |acc, s| acc.merged(s));
        self
    }

    /// Fill the scheduler-view fields from a live scheduler snapshot.
    #[must_use]
    pub fn with_scheduler(mut self, sched: &hybrid_sched::SchedulerSnapshot) -> MetricsSnapshot {
        self.scheduler_steals = sched.steals.clone();
        self.scheduler_cpu_steals = sched.cpu_steals;
        self.scheduler_weighted_loads = sched.weighted_loads.clone();
        self.scheduler_health = sched.health.clone();
        self.scheduler_quarantines = sched.quarantines;
        self.scheduler_probations = sched.probations;
        self.scheduler_recoveries = sched.recoveries;
        self.scheduler_cost_residual_milli = sched.cost_residual_milli;
        self.scheduler_cost_observations = sched.cost_observations;
        self.scheduler_tuner = sched.tuner.clone();
        self
    }

    /// The operator-facing JSON rendering of this snapshot — a
    /// **stable contract** (keys sorted by `jsonlite`'s object
    /// ordering, health states lowercased). The router rolls these
    /// per-shard documents into its own snapshot; changing a key or
    /// shape here must update the golden file in `rrc-router`.
    #[must_use]
    pub fn to_json(&self) -> jsonlite::Value {
        jsonlite::ObjectBuilder::new()
            .field("submitted", self.submitted)
            .field("responded", self.responded)
            .field("shed", self.shed)
            .field("shed_queue_full", self.shed_queue_full)
            .field("shed_infeasible", self.shed_infeasible)
            .field("caller_runs", self.caller_runs)
            .field("batches", self.batches)
            .field("batched_requests", self.batched_requests)
            .field("queue_depth_peak", self.queue_depth_peak)
            .field("fanout_retried_ions", self.fanout_retried_ions)
            .field("device_failures", self.device_failures)
            .field("neighbor_hits", self.neighbor_hits)
            .field("neighbor_rejects", self.neighbor_rejects)
            .field("cache", self.cache.to_json())
            .field(
                "cache_shards",
                self.cache_shards
                    .iter()
                    .map(crate::cache::CacheStats::to_json)
                    .collect::<Vec<_>>(),
            )
            .field(
                "latency",
                jsonlite::ObjectBuilder::new()
                    .field("queue", self.queue.to_json())
                    .field("compute", self.compute.to_json())
                    .field("total", self.total.to_json())
                    .field(
                        "interactive",
                        self.per_priority[Priority::Interactive.index()].to_json(),
                    )
                    .field("bulk", self.per_priority[Priority::Bulk.index()].to_json())
                    .build(),
            )
            .field(
                "scheduler",
                jsonlite::ObjectBuilder::new()
                    .field("steals", self.scheduler_steals.clone())
                    .field("cpu_steals", self.scheduler_cpu_steals)
                    .field("weighted_loads", self.scheduler_weighted_loads.clone())
                    .field(
                        "health",
                        self.scheduler_health
                            .iter()
                            .map(|h| health_label(*h))
                            .collect::<Vec<_>>(),
                    )
                    .field("quarantines", self.scheduler_quarantines)
                    .field("probations", self.scheduler_probations)
                    .field("recoveries", self.scheduler_recoveries)
                    .field("cost_observations", self.scheduler_cost_observations)
                    .field("cost_residual_milli", self.scheduler_cost_residual_milli)
                    .field("tuner", tuner_json(self.scheduler_tuner.as_ref()))
                    .build(),
            )
            .build()
    }
}

/// The stable JSON rendering of the tuner view: `enabled` plus, for a
/// live controller, its epoch, settled flag, and per-dimension value
/// and last committed move direction (keyed by [`hybrid_sched::Knob::label`]).
#[must_use]
pub fn tuner_json(tuner: Option<&hybrid_sched::TunerSnapshot>) -> jsonlite::Value {
    let mut builder = jsonlite::ObjectBuilder::new().field("enabled", tuner.is_some());
    if let Some(t) = tuner {
        builder = builder
            .field("epoch", t.epoch)
            .field("settled", t.settled)
            .field(
                "dims",
                t.dims
                    .iter()
                    .map(|d| {
                        jsonlite::ObjectBuilder::new()
                            .field("knob", d.knob.label())
                            .field("value", d.value)
                            .field("last_move", f64::from(d.last_move))
                            .build()
                    })
                    .collect::<Vec<_>>(),
            );
    }
    builder.build()
}

/// The stable lowercase label of a health state in JSON exports.
#[must_use]
pub fn health_label(state: hybrid_sched::HealthState) -> &'static str {
    match state {
        hybrid_sched::HealthState::Healthy => "healthy",
        hybrid_sched::HealthState::Degraded => "degraded",
        hybrid_sched::HealthState::Quarantined => "quarantined",
        hybrid_sched::HealthState::Probation => "probation",
    }
}

/// p50/p95/p99 + mean of one lifecycle stage, in seconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageLatency {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency.
    pub mean_s: f64,
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
}

impl StageLatency {
    /// Stable JSON rendering of one stage (see
    /// [`MetricsSnapshot::to_json`]).
    #[must_use]
    pub fn to_json(&self) -> jsonlite::Value {
        jsonlite::ObjectBuilder::new()
            .field("count", self.count)
            .field("mean_s", self.mean_s)
            .field("p50_s", self.p50_s)
            .field("p95_s", self.p95_s)
            .field("p99_s", self.p99_s)
            .build()
    }
}

fn stage(h: &Mutex<LatencyHistogram>) -> StageLatency {
    let h = h.lock().expect("latency histogram poisoned");
    StageLatency {
        count: h.count(),
        mean_s: h.mean_s(),
        p50_s: h.quantile_s(0.50),
        p95_s: h.quantile_s(0.95),
        p99_s: h.quantile_s(0.99),
    }
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> ServiceMetrics {
        ServiceMetrics::default()
    }

    /// Record one accepted request and the queue occupancy it saw.
    pub fn on_submitted(&self, queue_len_after: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth_peak
            .fetch_max(queue_len_after as u64, Ordering::Relaxed);
    }

    /// Record one request refused because its class queue was full
    /// under the shed policy.
    pub fn on_shed_queue_full(&self) {
        self.shed_queue_full.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request refused at SLO admission (remaining deadline
    /// budget below the cost estimate).
    pub fn on_shed_infeasible(&self) {
        self.shed_infeasible.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one caller-runs inline answer and its end-to-end time.
    pub fn on_caller_run(&self, priority: Priority, total_s: f64) {
        self.caller_runs.fetch_add(1, Ordering::Relaxed);
        self.total_latency
            .lock()
            .expect("latency histogram poisoned")
            .record(total_s);
        self.priority_latency[priority.index()]
            .lock()
            .expect("latency histogram poisoned")
            .record(total_s);
    }

    /// Record `ions` unanswered ion partials being re-fanned-out.
    pub fn on_fanout_retry(&self, ions: u64) {
        self.fanout_retried_ions.fetch_add(ions, Ordering::Relaxed);
    }

    /// Record one request refused with [`crate::ServiceError::DeviceFailed`].
    pub fn on_device_failure(&self) {
        self.device_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one cache miss answered from a classified neighbor bucket.
    pub fn on_neighbor_hit(&self) {
        self.neighbor_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one neighbor candidate rejected by the delta classifier.
    pub fn on_neighbor_reject(&self) {
        self.neighbor_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one batch of `requests` coalesced requests.
    pub fn on_batch(&self, requests: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(requests as u64, Ordering::Relaxed);
    }

    /// Record one request's queue-stage latency at batcher pickup.
    pub fn on_picked_up(&self, queue_s: f64) {
        self.queue_latency
            .lock()
            .expect("latency histogram poisoned")
            .record(queue_s);
    }

    /// Record one delivered response with its class, compute, and
    /// total times.
    pub fn on_responded(&self, priority: Priority, compute_s: f64, total_s: f64) {
        self.responded.fetch_add(1, Ordering::Relaxed);
        self.compute_latency
            .lock()
            .expect("latency histogram poisoned")
            .record(compute_s);
        self.total_latency
            .lock()
            .expect("latency histogram poisoned")
            .record(total_s);
        self.priority_latency[priority.index()]
            .lock()
            .expect("latency histogram poisoned")
            .record(total_s);
    }

    /// Copy every counter and histogram summary out.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let shed_queue_full = self.shed_queue_full.load(Ordering::Relaxed);
        let shed_infeasible = self.shed_infeasible.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            responded: self.responded.load(Ordering::Relaxed),
            shed: shed_queue_full + shed_infeasible,
            shed_queue_full,
            shed_infeasible,
            caller_runs: self.caller_runs.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            fanout_retried_ions: self.fanout_retried_ions.load(Ordering::Relaxed),
            device_failures: self.device_failures.load(Ordering::Relaxed),
            neighbor_hits: self.neighbor_hits.load(Ordering::Relaxed),
            neighbor_rejects: self.neighbor_rejects.load(Ordering::Relaxed),
            queue: stage(&self.queue_latency),
            compute: stage(&self.compute_latency),
            total: stage(&self.total_latency),
            per_priority: [
                stage(&self.priority_latency[0]),
                stage(&self.priority_latency[1]),
            ],
            scheduler_steals: Vec::new(),
            scheduler_cpu_steals: 0,
            scheduler_weighted_loads: Vec::new(),
            scheduler_health: Vec::new(),
            scheduler_quarantines: 0,
            scheduler_probations: 0,
            scheduler_recoveries: 0,
            scheduler_cost_residual_milli: 0,
            scheduler_cost_observations: 0,
            scheduler_tuner: None,
            cache: crate::cache::CacheStats::default(),
            cache_shards: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_counters_accumulate() {
        let m = ServiceMetrics::new();
        m.on_submitted(3);
        m.on_submitted(7);
        m.on_shed_queue_full();
        m.on_shed_infeasible();
        m.on_shed_infeasible();
        m.on_batch(2);
        m.on_picked_up(1e-4);
        m.on_picked_up(2e-4);
        m.on_responded(Priority::Interactive, 5e-4, 7e-4);
        m.on_responded(Priority::Bulk, 5e-4, 9e-4);
        m.on_caller_run(Priority::Interactive, 3e-3);
        m.on_neighbor_hit();
        m.on_neighbor_hit();
        m.on_neighbor_reject();
        let s = m.snapshot();
        assert_eq!((s.neighbor_hits, s.neighbor_rejects), (2, 1));
        assert_eq!(s.submitted, 2);
        assert_eq!(s.shed, 3, "shed is the sum of the split counters");
        assert_eq!(s.shed_queue_full, 1);
        assert_eq!(s.shed_infeasible, 2);
        assert_eq!(
            (
                s.per_priority[Priority::Interactive.index()].count,
                s.per_priority[Priority::Bulk.index()].count
            ),
            (2, 1),
            "per-class histograms split what total aggregates"
        );
        assert_eq!(s.caller_runs, 1);
        assert_eq!(s.responded, 2);
        assert_eq!(
            s.per_priority.iter().map(|p| p.count).sum::<u64>(),
            s.total.count,
            "every total-latency sample lands in exactly one class"
        );
        assert_eq!(s.batches, 1);
        assert_eq!(s.batched_requests, 2);
        assert_eq!(s.queue_depth_peak, 7);
        assert_eq!(s.queue.count, 2);
        assert_eq!(s.compute.count, 2);
        assert_eq!(s.total.count, 3, "caller-runs records total latency too");
        // Log-bucketed histograms answer within ~9% of the true value.
        assert!((s.compute.p50_s - 5e-4).abs() / 5e-4 < 0.1);
        assert!(s.total.p99_s >= s.total.p50_s);
    }
}
