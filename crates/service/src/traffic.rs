//! Deterministic traffic generators for the service tier.
//!
//! * **Open loop** — arrivals follow a seeded Poisson process
//!   (exponential inter-arrival times drawn from [`desim::rng`]);
//!   the generator submits on schedule regardless of completions,
//!   so a service slower than the offered rate visibly backs up and
//!   (per admission policy) sheds. The arrival *schedule* is a pure
//!   function of `(seed, rate, count)`.
//! * **Closed loop** — `clients` threads each keep exactly one
//!   request outstanding: submit, wait, repeat. Offered load adapts
//!   to service speed; nothing is ever shed.

use rrc_spectral::GridPoint;

use crate::api::{ElementSelection, ServiceError, SpectrumRequest, Ticket};
use crate::service::SpectralService;

/// What one generator run observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrafficReport {
    /// Requests offered to the service.
    pub offered: u64,
    /// Responses received (queued or caller-runs).
    pub completed: u64,
    /// Requests refused with [`ServiceError::Overloaded`].
    pub shed: u64,
    /// Responses computed by the caller-runs admission path.
    pub caller_ran: u64,
    /// Wall-clock seconds from first submit to last response.
    pub wall_s: f64,
}

impl TrafficReport {
    /// Completed requests per wall-clock second.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.completed as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// The deterministic Poisson arrival offsets (seconds from start) of
/// an open-loop run: `count` draws of `-ln(1-u)/rate`.
#[must_use]
pub fn poisson_arrivals(rate_hz: f64, count: usize, seed: u64) -> Vec<f64> {
    let mut rng = desim::rng(seed);
    let rate = rate_hz.max(1e-9);
    let mut t = 0.0f64;
    (0..count)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -(1.0 - u).ln() / rate;
            t
        })
        .collect()
}

/// Cycle through `points` building whole-spectrum requests — the
/// repeated-query workload the cache is built for.
#[must_use]
pub fn cycling_requests(
    points: &[GridPoint],
    grid_id: usize,
    count: usize,
) -> Vec<SpectrumRequest> {
    (0..count)
        .map(|i| SpectrumRequest::new(points[i % points.len()], ElementSelection::All, grid_id))
        .collect()
}

/// Open-loop run: submit `requests[i]` at `arrivals[i]` (busy-waiting
/// the schedule), then wait for every admitted ticket.
///
/// # Panics
/// Panics if `arrivals` is shorter than `requests`.
#[must_use]
pub fn run_open_loop(
    service: &SpectralService,
    requests: Vec<SpectrumRequest>,
    arrivals: &[f64],
) -> TrafficReport {
    assert!(arrivals.len() >= requests.len(), "one arrival per request");
    let mut report = TrafficReport::default();
    let start = std::time::Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(requests.len());
    for (request, &due) in requests.into_iter().zip(arrivals) {
        while start.elapsed().as_secs_f64() < due {
            std::thread::yield_now();
        }
        report.offered += 1;
        match service.submit(request) {
            Ok(ticket) => tickets.push(ticket),
            Err(ServiceError::Overloaded) => report.shed += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    for ticket in tickets {
        match ticket.wait() {
            Ok(response) => {
                report.completed += 1;
                if response.caller_ran {
                    report.caller_ran += 1;
                }
            }
            Err(ServiceError::Closed) => {}
            Err(e) => panic!("unexpected response error: {e}"),
        }
    }
    report.wall_s = start.elapsed().as_secs_f64();
    report
}

/// Closed-loop run: `clients` threads each submit-and-wait their
/// share of `requests` (round-robin split) one at a time.
#[must_use]
pub fn run_closed_loop(
    service: &SpectralService,
    requests: Vec<SpectrumRequest>,
    clients: usize,
) -> TrafficReport {
    let clients = clients.max(1);
    let start = std::time::Instant::now();
    let offered = requests.len() as u64;
    let mut shares: Vec<Vec<SpectrumRequest>> = (0..clients).map(|_| Vec::new()).collect();
    for (i, request) in requests.into_iter().enumerate() {
        shares[i % clients].push(request);
    }
    let mut completed = 0u64;
    let mut caller_ran = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = shares
            .into_iter()
            .map(|share| {
                scope.spawn(move || {
                    let mut done = 0u64;
                    let mut inline = 0u64;
                    for request in share {
                        match service.submit(request).and_then(Ticket::wait) {
                            Ok(response) => {
                                done += 1;
                                if response.caller_ran {
                                    inline += 1;
                                }
                            }
                            Err(ServiceError::Overloaded | ServiceError::Closed) => {}
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                    (done, inline)
                })
            })
            .collect();
        for handle in handles {
            let (done, inline) = handle.join().expect("traffic client panicked");
            completed += done;
            caller_ran += inline;
        }
    });
    TrafficReport {
        offered,
        completed,
        shed: offered - completed,
        caller_ran,
        wall_s: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_schedule_is_deterministic_and_increasing() {
        let a = poisson_arrivals(1000.0, 200, 42);
        let b = poisson_arrivals(1000.0, 200, 42);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let c = poisson_arrivals(1000.0, 200, 43);
        assert_ne!(a, c, "different seed, different schedule");
        // Mean inter-arrival ~ 1/rate.
        let mean = a.last().unwrap() / 200.0;
        assert!((mean - 1e-3).abs() < 3e-4, "mean inter-arrival {mean}");
    }

    #[test]
    fn cycling_requests_cover_all_points() {
        let points: Vec<GridPoint> = (0..3)
            .map(|i| GridPoint {
                temperature_k: 1e7 + i as f64,
                density_cm3: 1.0,
                time_s: 0.0,
                index: i,
            })
            .collect();
        let reqs = cycling_requests(&points, 0, 7);
        assert_eq!(reqs.len(), 7);
        assert_eq!(reqs[0].point.index, 0);
        assert_eq!(reqs[3].point.index, 0);
        assert_eq!(reqs[5].point.index, 2);
    }
}
