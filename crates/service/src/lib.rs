//! A long-lived spectral query service on the hybrid engine.
//!
//! The paper's runtime computes one fixed parameter grid and exits.
//! This crate turns the same stack — [`hybrid_sched::Scheduler`] over
//! shared memory, [`gpu_sim`] devices, QAGS CPU fallback — into a
//! resident **query engine**: callers submit
//! [`SpectrumRequest`]s (plasma state + element selection + energy
//! grid id) at any time and receive [`SpectrumResponse`]s, with
//!
//! * **admission control** ([`AdmissionPolicy`], [`pqueue`]): one
//!   bounded queue per [`desim::Priority`] class with weighted-fair
//!   dequeue, an SLO gate that sheds deadline-infeasible requests with
//!   a typed [`ServiceError::DeadlineInfeasible`] before any fan-out,
//!   and a full-queue policy that either sheds with
//!   [`ServiceError::Overloaded`] or computes on the caller's thread
//!   (the paper's full-queue CPU fallback lifted one tier up);
//! * **batching** ([`service`]): in-flight requests that share a
//!   quantized plasma state ([`quantize`]) coalesce into one per-ion
//!   fan-out over the resident [`hybrid_spectral::engine::Engine`];
//! * **caching** ([`cache`]): a sharded LRU of per-ion partial
//!   spectra keyed `(ion, quantized kT, density, grid)` — exact-key
//!   hits return the original allocation, so cached answers are
//!   bitwise identical to uncached ones;
//! * **observability** ([`metrics`]): throughput/shed counters, queue
//!   depth watermark, and per-stage latency quantiles on
//!   [`desim::LatencyHistogram`];
//! * **traffic** ([`traffic`]): deterministic open-loop (seeded
//!   Poisson) and closed-loop generators for benches and smoke tests.

pub mod api;
pub mod cache;
pub mod metrics;
pub mod pqueue;
pub mod quantize;
pub mod service;
pub mod traffic;

pub use api::{
    AdmissionPolicy, ElementSelection, ServiceError, SpectrumRequest, SpectrumResponse, Ticket,
};
pub use cache::{CacheKey, CacheStats, ShardedLruCache};
pub use metrics::{health_label, MetricsSnapshot, ServiceMetrics, StageLatency};
pub use pqueue::PriorityQueues;
pub use quantize::{Quantizer, StateKey};
pub use service::{assemble, selected_ions, ServiceConfig, ServiceReport, SpectralService};
pub use traffic::{
    cycling_requests, poisson_arrivals, run_closed_loop, run_open_loop, TrafficReport,
};
