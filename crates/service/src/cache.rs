//! Sharded LRU cache of per-ion partial spectra.
//!
//! The unit of caching is deliberately the **ion partial**, not the
//! whole response: requests differing only in element selection still
//! share every overlapping ion, and a batcher fan-out can fill many
//! keys from one computation. Values are `Arc<Vec<f64>>`, so a hit
//! costs a pointer clone and the cached bits are the *same* bits the
//! original computation produced — summing them in the fixed ion
//! order makes a cache-on response bitwise equal to the cache-off one
//! for exact-key hits.
//!
//! Sharding (hash of the key picks an independently-locked shard)
//! keeps concurrent callers from serializing on one mutex. Eviction is
//! per-shard LRU by a monotone touch tick; capacity 0 disables the
//! cache entirely (every get is a miss, inserts are dropped).

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use crate::quantize::StateKey;

/// Cache key: one ion at one quantized plasma state on one grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Index into [`atomdb::AtomDatabase::ions`].
    pub ion_index: usize,
    /// The quantized plasma state and grid.
    pub state: StateKey,
}

struct Entry {
    value: Arc<Vec<f64>>,
    touched: u64,
}

struct Shard {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
    /// Per-shard effectiveness counters, updated under this shard's
    /// own lock — so the cost of counting is the lock the operation
    /// already holds, and [`ShardedLruCache::shard_stats`] can show an
    /// operator *which* shard is thrashing, not just that one is.
    stats: CacheStats,
}

/// Counter snapshot of cache effectiveness — per shard (see
/// [`ShardedLruCache::shard_stats`]) or totalled across the cache
/// ([`ShardedLruCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including all lookups when disabled).
    pub misses: u64,
    /// Values stored by the owning engine's compute path.
    pub insertions: u64,
    /// Values pushed in from outside — hot-state replication to
    /// sibling replicas and migration cache handoff (see
    /// [`ShardedLruCache::warm_insert`]). Counted separately from
    /// `insertions` so warming traffic never masquerades as locally
    /// computed fills.
    pub warm_insertions: u64,
    /// Values displaced by LRU pressure.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over lookups, in `[0, 1]`; 0 when nothing was looked up.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Element-wise sum — folds per-shard counters into a total.
    #[must_use]
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            insertions: self.insertions + other.insertions,
            warm_insertions: self.warm_insertions + other.warm_insertions,
            evictions: self.evictions + other.evictions,
        }
    }

    /// Stable JSON rendering of one counter block (the same shape for
    /// cache totals and per-shard entries; part of the operator-facing
    /// metrics contract — changing a key must update the golden file
    /// in `rrc-router`).
    #[must_use]
    pub fn to_json(&self) -> jsonlite::Value {
        jsonlite::ObjectBuilder::new()
            .field("hits", self.hits)
            .field("misses", self.misses)
            .field("insertions", self.insertions)
            .field("warm_insertions", self.warm_insertions)
            .field("evictions", self.evictions)
            .field("hit_rate", self.hit_rate())
            .build()
    }
}

/// The sharded LRU described in the module docs.
pub struct ShardedLruCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl ShardedLruCache {
    /// A cache of at most `capacity` entries spread over `shards`
    /// independently locked shards. `capacity == 0` disables caching.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> ShardedLruCache {
        let shards = shards.clamp(1, capacity.max(1));
        let per_shard_capacity = capacity.div_ceil(shards);
        ShardedLruCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        clock: 0,
                        stats: CacheStats::default(),
                    })
                })
                .collect(),
            per_shard_capacity,
        }
    }

    /// Whether the cache stores anything at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.per_shard_capacity > 0
    }

    /// Total entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether no entries are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        // FNV-1a over the key words — cheap, deterministic, and spreads
        // consecutive ion indices across shards.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in [
            key.ion_index as u64,
            key.state.kt_q,
            key.state.density_q,
            key.state.grid_id as u64,
        ] {
            h ^= word;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Look `key` up, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<f64>>> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if !self.enabled() {
            // A disabled cache still attributes the miss to the key's
            // shard so `stats()` keeps counting lookups.
            shard.stats.misses += 1;
            return None;
        }
        shard.clock += 1;
        let tick = shard.clock;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.touched = tick;
                let value = Arc::clone(&entry.value);
                shard.stats.hits += 1;
                Some(value)
            }
            None => {
                shard.stats.misses += 1;
                None
            }
        }
    }

    /// Look `key` up **without** refreshing recency or counting a
    /// hit/miss — the probe the neighbor-seeded delta path uses while
    /// scanning candidate buckets, so speculative scans neither skew
    /// the hit-rate statistics nor protect entries the caller may not
    /// even use from eviction.
    #[must_use]
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<Vec<f64>>> {
        if !self.enabled() {
            return None;
        }
        let shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.map.get(key).map(|entry| Arc::clone(&entry.value))
    }

    /// Store `value` under `key`, evicting the shard's least recently
    /// touched entry if the shard is at capacity.
    pub fn insert(&self, key: CacheKey, value: Arc<Vec<f64>>) {
        if !self.enabled() {
            return;
        }
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        shard.clock += 1;
        let tick = shard.clock;
        Self::evict_if_full(&mut shard, &key, self.per_shard_capacity);
        shard.map.insert(
            key,
            Entry {
                value,
                touched: tick,
            },
        );
        shard.stats.insertions += 1;
    }

    /// Store `value` under `key` **only if absent**, counting it as a
    /// warm insertion rather than a local fill. This is the entry point
    /// for partials pushed in from outside the owning compute path —
    /// hot-state replication to sibling replicas and migration cache
    /// handoff — where an existing entry is already the right bits
    /// (deterministic kernel) and must not have its recency stolen by
    /// warming traffic. Returns whether the value was actually stored.
    pub fn warm_insert(&self, key: CacheKey, value: Arc<Vec<f64>>) -> bool {
        if !self.enabled() {
            return false;
        }
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if shard.map.contains_key(&key) {
            return false;
        }
        shard.clock += 1;
        let tick = shard.clock;
        Self::evict_if_full(&mut shard, &key, self.per_shard_capacity);
        shard.map.insert(
            key,
            Entry {
                value,
                touched: tick,
            },
        );
        shard.stats.warm_insertions += 1;
        true
    }

    fn evict_if_full(shard: &mut Shard, key: &CacheKey, per_shard_capacity: usize) {
        if !shard.map.contains_key(key) && shard.map.len() >= per_shard_capacity {
            if let Some(&victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k)
            {
                shard.map.remove(&victim);
                shard.stats.evictions += 1;
            }
        }
    }

    /// Every cached entry whose `ion_index` is in `ions`, in a
    /// deterministic `(ion_index, state)` order. Stats- and
    /// recency-neutral, like [`ShardedLruCache::peek`]: exporting a
    /// donor's entries for migration handoff must not distort the
    /// donor's own hit-rate picture or protect entries from eviction.
    #[must_use]
    pub fn export_ions(&self, ions: &[usize]) -> Vec<(CacheKey, Arc<Vec<f64>>)> {
        let wanted: HashSet<usize> = ions.iter().copied().collect();
        let mut out: Vec<(CacheKey, Arc<Vec<f64>>)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            for (key, entry) in &shard.map {
                if wanted.contains(&key.ion_index) {
                    out.push((*key, Arc::clone(&entry.value)));
                }
            }
        }
        out.sort_by_key(|(key, _)| (key.ion_index, key.state));
        out
    }

    /// Counter snapshot per shard, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").stats)
            .collect()
    }

    /// Counter snapshot totalled across all shards.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.shard_stats()
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merged(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ion: usize, kt: u64) -> CacheKey {
        CacheKey {
            ion_index: ion,
            state: StateKey {
                kt_q: kt,
                density_q: 0,
                grid_id: 0,
            },
        }
    }

    #[test]
    fn hit_returns_the_same_allocation() {
        let c = ShardedLruCache::new(8, 2);
        let v = Arc::new(vec![1.0, 2.0]);
        c.insert(key(0, 7), Arc::clone(&v));
        let got = c.get(&key(0, 7)).expect("hit");
        assert!(Arc::ptr_eq(&got, &v), "cache must hand back the same bits");
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn miss_and_disabled_counting() {
        let c = ShardedLruCache::new(0, 4);
        assert!(!c.enabled());
        assert!(c.get(&key(1, 1)).is_none());
        c.insert(key(1, 1), Arc::new(vec![]));
        assert!(c.get(&key(1, 1)).is_none(), "disabled cache stores nothing");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (0, 2, 0));
    }

    #[test]
    fn peek_neither_counts_nor_touches() {
        let c = ShardedLruCache::new(2, 1);
        c.insert(key(0, 0), Arc::new(vec![0.0]));
        c.insert(key(1, 0), Arc::new(vec![1.0]));
        // Peeking 0 must NOT refresh it: 0 stays LRU and is evicted.
        assert!(c.peek(&key(0, 0)).is_some());
        assert!(c.peek(&key(9, 9)).is_none());
        c.insert(key(2, 0), Arc::new(vec![2.0]));
        assert!(c.peek(&key(0, 0)).is_none(), "peek must not protect LRU");
        assert!(c.peek(&key(1, 0)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "peek is stats-neutral");
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        // One shard of capacity 2 so recency is fully observable.
        let c = ShardedLruCache::new(2, 1);
        c.insert(key(0, 0), Arc::new(vec![0.0]));
        c.insert(key(1, 0), Arc::new(vec![1.0]));
        let _ = c.get(&key(0, 0)); // refresh 0; 1 is now LRU
        c.insert(key(2, 0), Arc::new(vec![2.0]));
        assert!(c.get(&key(1, 0)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(0, 0)).is_some());
        assert!(c.get(&key(2, 0)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn warm_insert_is_absent_only_and_counted_separately() {
        let c = ShardedLruCache::new(4, 1);
        let warm = Arc::new(vec![1.0]);
        assert!(c.warm_insert(key(0, 0), Arc::clone(&warm)));
        let local = Arc::new(vec![2.0]);
        c.insert(key(1, 0), Arc::clone(&local));
        // A warm push for an already-present key is a no-op: the local
        // bits stay (they are the same bits anyway) and nothing counts.
        assert!(!c.warm_insert(key(1, 0), Arc::new(vec![9.0])));
        let got = c.get(&key(1, 0)).expect("hit");
        assert!(Arc::ptr_eq(&got, &local));
        let s = c.stats();
        assert_eq!((s.insertions, s.warm_insertions), (1, 1), "{s:?}");
        // Disabled cache refuses warming entirely.
        let off = ShardedLruCache::new(0, 1);
        assert!(!off.warm_insert(key(0, 0), warm));
        assert_eq!(off.stats().warm_insertions, 0);
    }

    #[test]
    fn warm_insert_respects_capacity_and_evicts_lru() {
        let c = ShardedLruCache::new(2, 1);
        c.insert(key(0, 0), Arc::new(vec![0.0]));
        c.insert(key(1, 0), Arc::new(vec![1.0]));
        let _ = c.get(&key(0, 0)); // refresh 0; 1 is now LRU
        assert!(c.warm_insert(key(2, 0), Arc::new(vec![2.0])));
        assert!(c.peek(&key(1, 0)).is_none(), "warm insert evicts LRU");
        assert!(c.peek(&key(0, 0)).is_some());
        assert!(c.peek(&key(2, 0)).is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn export_is_scoped_sorted_and_stats_neutral() {
        let c = ShardedLruCache::new(64, 4);
        for ion in 0..6 {
            for kt in [3u64, 1] {
                c.insert(key(ion, kt), Arc::new(vec![ion as f64]));
            }
        }
        let before = c.stats();
        let exported = c.export_ions(&[4, 1]);
        assert_eq!(exported.len(), 4, "two states per requested ion");
        let order: Vec<(usize, u64)> = exported
            .iter()
            .map(|(k, _)| (k.ion_index, k.state.kt_q))
            .collect();
        assert_eq!(order, vec![(1, 1), (1, 3), (4, 1), (4, 3)]);
        assert_eq!(c.stats(), before, "export is stats-neutral");
        assert!(c.export_ions(&[]).is_empty());
    }

    #[test]
    fn per_shard_stats_fold_into_the_total() {
        let c = ShardedLruCache::new(64, 8);
        for i in 0..16 {
            c.insert(key(i, 0), Arc::new(vec![]));
            let _ = c.get(&key(i, 0));
        }
        let _ = c.get(&key(99, 0));
        let shards = c.shard_stats();
        assert_eq!(shards.len(), 8);
        let folded = shards
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merged(s));
        assert_eq!(folded, c.stats());
        assert_eq!((folded.hits, folded.misses, folded.insertions), (16, 1, 16));
    }

    #[test]
    fn shards_partition_the_keyspace() {
        let c = ShardedLruCache::new(64, 8);
        for i in 0..64 {
            c.insert(key(i, 42), Arc::new(vec![i as f64]));
        }
        for i in 0..64 {
            let hit = c.get(&key(i, 42)).expect("all fit within capacity");
            assert_eq!(hit[0], i as f64);
        }
        assert_eq!(c.stats().evictions, 0, "{:?}", c.stats());
    }
}
