//! Sharded LRU cache of per-ion partial spectra.
//!
//! The unit of caching is deliberately the **ion partial**, not the
//! whole response: requests differing only in element selection still
//! share every overlapping ion, and a batcher fan-out can fill many
//! keys from one computation. Values are `Arc<Vec<f64>>`, so a hit
//! costs a pointer clone and the cached bits are the *same* bits the
//! original computation produced — summing them in the fixed ion
//! order makes a cache-on response bitwise equal to the cache-off one
//! for exact-key hits.
//!
//! Sharding (hash of the key picks an independently-locked shard)
//! keeps concurrent callers from serializing on one mutex. Eviction is
//! per-shard LRU by a monotone touch tick; capacity 0 disables the
//! cache entirely (every get is a miss, inserts are dropped).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::quantize::StateKey;

/// Cache key: one ion at one quantized plasma state on one grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Index into [`atomdb::AtomDatabase::ions`].
    pub ion_index: usize,
    /// The quantized plasma state and grid.
    pub state: StateKey,
}

struct Entry {
    value: Arc<Vec<f64>>,
    touched: u64,
}

struct Shard {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
}

/// Counter snapshot of cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including all lookups when disabled).
    pub misses: u64,
    /// Values stored.
    pub insertions: u64,
    /// Values displaced by LRU pressure.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over lookups, in `[0, 1]`; 0 when nothing was looked up.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// The sharded LRU described in the module docs.
pub struct ShardedLruCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedLruCache {
    /// A cache of at most `capacity` entries spread over `shards`
    /// independently locked shards. `capacity == 0` disables caching.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> ShardedLruCache {
        let shards = shards.clamp(1, capacity.max(1));
        let per_shard_capacity = capacity.div_ceil(shards);
        ShardedLruCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Whether the cache stores anything at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.per_shard_capacity > 0
    }

    /// Total entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether no entries are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        // FNV-1a over the key words — cheap, deterministic, and spreads
        // consecutive ion indices across shards.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in [
            key.ion_index as u64,
            key.state.kt_q,
            key.state.density_q,
            key.state.grid_id as u64,
        ] {
            h ^= word;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Look `key` up, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<f64>>> {
        if !self.enabled() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.clock += 1;
        let tick = shard.clock;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.touched = tick;
                let value = Arc::clone(&entry.value);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Look `key` up **without** refreshing recency or counting a
    /// hit/miss — the probe the neighbor-seeded delta path uses while
    /// scanning candidate buckets, so speculative scans neither skew
    /// the hit-rate statistics nor protect entries the caller may not
    /// even use from eviction.
    #[must_use]
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<Vec<f64>>> {
        if !self.enabled() {
            return None;
        }
        let shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.map.get(key).map(|entry| Arc::clone(&entry.value))
    }

    /// Store `value` under `key`, evicting the shard's least recently
    /// touched entry if the shard is at capacity.
    pub fn insert(&self, key: CacheKey, value: Arc<Vec<f64>>) {
        if !self.enabled() {
            return;
        }
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        shard.clock += 1;
        let tick = shard.clock;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            if let Some(&victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k)
            {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                touched: tick,
            },
        );
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ion: usize, kt: u64) -> CacheKey {
        CacheKey {
            ion_index: ion,
            state: StateKey {
                kt_q: kt,
                density_q: 0,
                grid_id: 0,
            },
        }
    }

    #[test]
    fn hit_returns_the_same_allocation() {
        let c = ShardedLruCache::new(8, 2);
        let v = Arc::new(vec![1.0, 2.0]);
        c.insert(key(0, 7), Arc::clone(&v));
        let got = c.get(&key(0, 7)).expect("hit");
        assert!(Arc::ptr_eq(&got, &v), "cache must hand back the same bits");
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn miss_and_disabled_counting() {
        let c = ShardedLruCache::new(0, 4);
        assert!(!c.enabled());
        assert!(c.get(&key(1, 1)).is_none());
        c.insert(key(1, 1), Arc::new(vec![]));
        assert!(c.get(&key(1, 1)).is_none(), "disabled cache stores nothing");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (0, 2, 0));
    }

    #[test]
    fn peek_neither_counts_nor_touches() {
        let c = ShardedLruCache::new(2, 1);
        c.insert(key(0, 0), Arc::new(vec![0.0]));
        c.insert(key(1, 0), Arc::new(vec![1.0]));
        // Peeking 0 must NOT refresh it: 0 stays LRU and is evicted.
        assert!(c.peek(&key(0, 0)).is_some());
        assert!(c.peek(&key(9, 9)).is_none());
        c.insert(key(2, 0), Arc::new(vec![2.0]));
        assert!(c.peek(&key(0, 0)).is_none(), "peek must not protect LRU");
        assert!(c.peek(&key(1, 0)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "peek is stats-neutral");
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        // One shard of capacity 2 so recency is fully observable.
        let c = ShardedLruCache::new(2, 1);
        c.insert(key(0, 0), Arc::new(vec![0.0]));
        c.insert(key(1, 0), Arc::new(vec![1.0]));
        let _ = c.get(&key(0, 0)); // refresh 0; 1 is now LRU
        c.insert(key(2, 0), Arc::new(vec![2.0]));
        assert!(c.get(&key(1, 0)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(0, 0)).is_some());
        assert!(c.get(&key(2, 0)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn shards_partition_the_keyspace() {
        let c = ShardedLruCache::new(64, 8);
        for i in 0..64 {
            c.insert(key(i, 42), Arc::new(vec![i as f64]));
        }
        for i in 0..64 {
            let hit = c.get(&key(i, 42)).expect("all fit within capacity");
            assert_eq!(hit[0], i as f64);
        }
        assert_eq!(c.stats().evictions, 0, "{:?}", c.stats());
    }
}
