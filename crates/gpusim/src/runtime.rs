//! Real-threaded device instances.
//!
//! A [`SimGpu`] is one simulated GPU as the hybrid runtime sees it: a
//! FIFO command queue drained by worker threads. On Fermi there is one
//! worker — queued tasks run strictly serially in submission order, the
//! paper's "application-level context switching". With Hyper-Q
//! (Kepler) several workers drain the same queue concurrently.
//!
//! Submitted closures run on the worker; the submitting rank blocks on
//! [`TaskHandle::wait`], which is the paper's synchronous mode ("when a
//! task is submitted to GPU, the CPU will be blocked until the result
//! is back").

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::cost::{CostModel, MeasuredCost};
use crate::fault::{FaultInjector, FaultPlan};
use crate::memory::{DeviceMemory, DevicePtr, OutOfDeviceMemory};
use crate::props::DeviceProps;

/// Poison-tolerant lock: a panic on another thread (e.g. an injected
/// kernel panic) must degrade to a task failure, never to a poisoned
/// mutex cascading `unwrap` panics through every later submitter.
fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

type Command = Box<dyn FnOnce() + Send>;

/// The shared FIFO command queue: a mutex-guarded deque plus a condvar,
/// giving the multi-consumer semantics the workers need (std's mpsc
/// channels are single-consumer).
struct CommandQueue {
    state: Mutex<QueueState>,
    signal: Condvar,
}

struct QueueState {
    commands: VecDeque<Command>,
    closed: bool,
}

impl CommandQueue {
    fn new() -> CommandQueue {
        CommandQueue {
            state: Mutex::new(QueueState {
                commands: VecDeque::new(),
                closed: false,
            }),
            signal: Condvar::new(),
        }
    }

    fn push(&self, cmd: Command) {
        let mut state = lock_clean(&self.state);
        assert!(!state.closed, "device is live until drop");
        state.commands.push_back(cmd);
        drop(state);
        self.signal.notify_one();
    }

    /// Blocking pop; `None` once the queue is closed *and* drained.
    fn pop(&self) -> Option<Command> {
        let mut state = lock_clean(&self.state);
        loop {
            if let Some(cmd) = state.commands.pop_front() {
                return Some(cmd);
            }
            if state.closed {
                return None;
            }
            state = self
                .signal
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        lock_clean(&self.state).closed = true;
        self.signal.notify_all();
    }
}

/// Monotonic counters of one device.
#[derive(Debug, Default)]
pub struct DeviceCounters {
    /// Tasks completed.
    pub tasks: AtomicU64,
    /// Wall-clock nanoseconds workers spent executing task bodies.
    pub busy_nanos: AtomicU64,
    /// Task bodies that panicked (caught on the worker; the submitter
    /// observes [`TaskError::Lost`]).
    pub panics: AtomicU64,
}

/// One simulated GPU: props + command queues (compute + DMA) + workers
/// + on-board memory arena + virtual-time cost accounting.
///
/// The DMA queue models the card's dedicated copy engines: commands
/// submitted through [`SimGpu::submit_dma`] drain on their own worker
/// threads, so a D2H copy-back can overlap the next kernel even on a
/// Fermi device whose *compute* queue is strictly serial
/// (`concurrent_tasks == 1`).
pub struct SimGpu {
    props: DeviceProps,
    queue: Arc<CommandQueue>,
    dma_queue: Arc<CommandQueue>,
    workers: Vec<std::thread::JoinHandle<()>>,
    counters: Arc<DeviceCounters>,
    memory: Arc<Mutex<DeviceMemory>>,
    cost: CostModel,
    virtual_nanos: Arc<AtomicU64>,
    faults: FaultInjector,
}

/// Why a fallible wait on a [`TaskHandle`] returned no result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskError {
    /// The deadline elapsed before the task completed (watchdog). The
    /// task may still finish later; its result is discarded.
    Timeout,
    /// The task's result can never arrive: its body panicked (caught on
    /// the device worker) or the device was dropped with it queued.
    Lost,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Timeout => write!(f, "task deadline elapsed"),
            TaskError::Lost => write!(f, "task result lost"),
        }
    }
}

impl std::error::Error for TaskError {}

/// Completion handle of a submitted task.
#[must_use = "wait on the handle or the task result is lost"]
pub struct TaskHandle<R> {
    result: Receiver<R>,
}

impl<R> TaskHandle<R> {
    /// Block until the task finishes and return its result.
    ///
    /// # Panics
    /// Panics if the device was dropped with the task still queued or
    /// the task body panicked — fault-tolerant callers use
    /// [`TaskHandle::wait_result`] instead.
    pub fn wait(self) -> R {
        self.result.recv().expect("device dropped with task queued")
    }

    /// Block until the task finishes; [`TaskError::Lost`] if its result
    /// can never arrive (task panicked or device dropped).
    ///
    /// # Errors
    /// [`TaskError::Lost`] when the result channel disconnected.
    pub fn wait_result(self) -> Result<R, TaskError> {
        self.result.recv().map_err(|_| TaskError::Lost)
    }

    /// [`TaskHandle::wait_result`] with a watchdog deadline.
    ///
    /// # Errors
    /// [`TaskError::Timeout`] once `deadline` elapses,
    /// [`TaskError::Lost`] when the result channel disconnected.
    pub fn wait_timeout(self, deadline: Duration) -> Result<R, TaskError> {
        self.result.recv_timeout(deadline).map_err(|e| match e {
            RecvTimeoutError::Timeout => TaskError::Timeout,
            RecvTimeoutError::Disconnected => TaskError::Lost,
        })
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<R> {
        self.result.try_recv().ok()
    }
}

impl SimGpu {
    /// Bring up a device: spawns `props.concurrent_tasks` compute
    /// workers sharing one FIFO queue and `props.copy_engines` DMA
    /// workers draining a second, independent queue.
    #[must_use]
    pub fn new(props: DeviceProps) -> SimGpu {
        SimGpu::with_faults(props, FaultPlan::default())
    }

    /// [`SimGpu::new`] with a fault-injection schedule attached: the
    /// device's [`FaultInjector`] executes `plan`, and the runtime
    /// above consults it at its launch/kernel/DMA fault points.
    #[must_use]
    pub fn with_faults(props: DeviceProps, plan: FaultPlan) -> SimGpu {
        let queue = Arc::new(CommandQueue::new());
        let dma_queue = Arc::new(CommandQueue::new());
        let counters = Arc::new(DeviceCounters::default());
        let mut workers: Vec<std::thread::JoinHandle<()>> = (0..props.concurrent_tasks.max(1))
            .map(|w| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("{}-worker-{w}", props.name))
                    // Counters are charged inside the command itself (see
                    // `submit`) so they are visible by the time a
                    // submitter's `wait` returns.
                    .spawn(move || {
                        while let Some(cmd) = queue.pop() {
                            cmd();
                        }
                    })
                    .expect("spawn device worker")
            })
            .collect();
        workers.extend((0..props.copy_engines.max(1)).map(|e| {
            let dma_queue = Arc::clone(&dma_queue);
            std::thread::Builder::new()
                .name(format!("{}-dma-{e}", props.name))
                .spawn(move || {
                    while let Some(cmd) = dma_queue.pop() {
                        cmd();
                    }
                })
                .expect("spawn DMA worker")
        }));
        let memory = Arc::new(Mutex::new(DeviceMemory::new(props.memory_bytes)));
        let cost = CostModel::from_props(&props);
        SimGpu {
            props,
            queue,
            dma_queue,
            workers,
            counters,
            memory,
            cost,
            virtual_nanos: Arc::new(AtomicU64::new(0)),
            faults: FaultInjector::new(plan),
        }
    }

    /// Device properties.
    #[must_use]
    pub fn props(&self) -> &DeviceProps {
        &self.props
    }

    /// The device's fault oracle (inert for fault-free devices). Clone
    /// it into kernel closures for in-body injection points.
    #[must_use]
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Completed-task count.
    #[must_use]
    pub fn tasks_completed(&self) -> u64 {
        self.counters.tasks.load(Ordering::Relaxed)
    }

    /// Task bodies that panicked (caught on the device worker).
    #[must_use]
    pub fn tasks_panicked(&self) -> u64 {
        self.counters.panics.load(Ordering::Relaxed)
    }

    /// Wall-clock seconds workers spent in task bodies.
    #[must_use]
    pub fn busy_seconds(&self) -> f64 {
        self.counters.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Allocate `bytes` of on-board memory (like `cudaMalloc`).
    ///
    /// # Errors
    /// [`OutOfDeviceMemory`] when the arena cannot fit the request.
    pub fn malloc(&self, bytes: u64) -> Result<DevicePtr, OutOfDeviceMemory> {
        lock_clean(&self.memory).alloc(bytes)
    }

    /// Free an on-board allocation (like `cudaFree`).
    pub fn free(&self, ptr: DevicePtr) {
        lock_clean(&self.memory).free(ptr);
    }

    /// Bytes currently allocated on the device.
    #[must_use]
    pub fn memory_used(&self) -> u64 {
        lock_clean(&self.memory).used()
    }

    /// High-water mark of on-board allocation.
    #[must_use]
    pub fn memory_peak(&self) -> u64 {
        lock_clean(&self.memory).peak()
    }

    /// Charge the cost model for one task (launch + H2D + kernel + D2H)
    /// and return the charged virtual seconds. This is what the device
    /// *would* have taken on the modeled hardware, independent of host
    /// wall-clock.
    pub fn charge_task(&self, evals: u64, bytes_in: u64, bytes_out: u64) -> f64 {
        let t = self.cost.task_time(evals, bytes_in, bytes_out);
        self.virtual_nanos
            .fetch_add((t * 1e9) as u64, Ordering::Relaxed);
        t
    }

    /// [`SimGpu::charge_task`] with the per-component measurement kept:
    /// returns the kernel/DMA split plus how long the submission waited
    /// behind earlier charges on this device's virtual clock.
    /// `submitted_virtual_s` is the caller's read of
    /// [`SimGpu::virtual_busy_seconds`] at submission time; the wait is
    /// the virtual time other tasks charged between then and this
    /// settle, floored at zero.
    pub fn charge_task_measured(
        &self,
        evals: u64,
        bytes_in: u64,
        bytes_out: u64,
        submitted_virtual_s: f64,
    ) -> MeasuredCost {
        let mut m = self.cost.task_cost_measured(evals, bytes_in, bytes_out);
        let before_s = self.virtual_nanos.load(Ordering::Relaxed) as f64 * 1e-9;
        m.queue_wait_s = (before_s - submitted_virtual_s).max(0.0);
        self.virtual_nanos
            .fetch_add((m.device_s() * 1e9) as u64, Ordering::Relaxed);
        m
    }

    /// Total virtual seconds charged via [`SimGpu::charge_task`].
    #[must_use]
    pub fn virtual_busy_seconds(&self) -> f64 {
        self.virtual_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Enqueue `task`; returns a handle the caller can block on.
    pub fn submit<R, F>(&self, task: F) -> TaskHandle<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let (tx, rx) = std::sync::mpsc::channel();
        self.queue.push(make_command(&self.counters, tx, task));
        TaskHandle { result: rx }
    }

    /// Submit and block — the paper's synchronous task mode.
    pub fn execute_sync<R, F>(&self, task: F) -> R
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        self.submit(task).wait()
    }

    /// Enqueue `task` on the DMA (copy-engine) queue. Same handle
    /// semantics as [`SimGpu::submit`], but the work drains on the copy
    /// engines, independent of — and concurrent with — the compute
    /// queue. Busy-time counters are charged identically; callers who
    /// need the compute/copy split apart can read
    /// [`SimGpu::virtual_busy_seconds`], which only kernel charges
    /// advance.
    pub fn submit_dma<R, F>(&self, task: F) -> TaskHandle<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let (tx, rx) = std::sync::mpsc::channel();
        self.dma_queue.push(make_command(&self.counters, tx, task));
        TaskHandle { result: rx }
    }
}

/// Wrap a task into a queue command: charge counters, contain panics.
/// A panicking task body must never kill a device worker (which would
/// silently stop the whole queue) — the panic is caught, counted, and
/// surfaced to the submitter as a disconnected result channel
/// ([`TaskError::Lost`]).
fn make_command<R, F>(
    counters: &Arc<DeviceCounters>,
    tx: std::sync::mpsc::Sender<R>,
    task: F,
) -> Command
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let counters = Arc::clone(counters);
    Box::new(move || {
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(task));
        counters
            .busy_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        counters.tasks.fetch_add(1, Ordering::Relaxed);
        match result {
            // The submitter may have given up waiting; that is fine.
            Ok(result) => {
                let _ = tx.send(result);
            }
            Err(_) => {
                counters.panics.fetch_add(1, Ordering::Relaxed);
                // Dropping `tx` without sending disconnects the
                // receiver: the submitter's wait observes `Lost`.
            }
        }
    })
}

impl Drop for SimGpu {
    fn drop(&mut self) {
        // Close both queues, then join the workers (they drain what is
        // already queued first).
        self.queue.close();
        self.dma_queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fermi() -> DeviceProps {
        DeviceProps::tesla_c2075()
    }

    #[test]
    fn executes_submitted_work() {
        let gpu = SimGpu::new(fermi());
        let result = gpu.execute_sync(|| 21 * 2);
        assert_eq!(result, 42);
        assert_eq!(gpu.tasks_completed(), 1);
    }

    #[test]
    fn fermi_queue_is_fifo_and_serial() {
        let gpu = SimGpu::new(fermi());
        let log = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let log = Arc::clone(&log);
                gpu.submit(move || {
                    log.lock().unwrap().push(i);
                })
            })
            .collect();
        for h in handles {
            h.wait();
        }
        assert_eq!(*log.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn hyper_q_runs_tasks_concurrently() {
        let mut props = DeviceProps::tesla_k20();
        props.concurrent_tasks = 4;
        let gpu = SimGpu::new(props);
        let in_flight = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let in_flight = Arc::clone(&in_flight);
                let peak = Arc::clone(&peak);
                gpu.submit(move || {
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.wait();
        }
        let peak = peak.load(Ordering::SeqCst);
        assert!(peak >= 2, "expected concurrency, peak {peak}");
        assert!(peak <= 4, "bounded by worker count, peak {peak}");
    }

    #[test]
    fn dma_queue_overlaps_a_serial_compute_queue() {
        // Fermi: one compute worker. A copy submitted *after* a long
        // kernel must still be able to finish *before* it, because it
        // drains on the copy engines.
        let gpu = SimGpu::new(fermi());
        let kernel_done = Arc::new(AtomicU64::new(0));
        let copy_saw_kernel_done = Arc::new(AtomicU64::new(0));
        let kd = Arc::clone(&kernel_done);
        let kernel = gpu.submit(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            kd.store(1, Ordering::SeqCst);
        });
        let kd = Arc::clone(&kernel_done);
        let saw = Arc::clone(&copy_saw_kernel_done);
        let copy = gpu.submit_dma(move || {
            saw.store(kd.load(Ordering::SeqCst), Ordering::SeqCst);
        });
        copy.wait();
        kernel.wait();
        assert_eq!(
            copy_saw_kernel_done.load(Ordering::SeqCst),
            0,
            "the DMA command ran while the kernel was still executing"
        );
    }

    #[test]
    fn dma_drop_drains_like_compute() {
        let flag = Arc::new(AtomicU64::new(0));
        {
            let gpu = SimGpu::new(fermi());
            for _ in 0..3 {
                let flag = Arc::clone(&flag);
                let _ = gpu.submit_dma(move || {
                    flag.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(flag.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn counters_track_busy_time() {
        let gpu = SimGpu::new(fermi());
        gpu.execute_sync(|| std::thread::sleep(std::time::Duration::from_millis(10)));
        assert!(gpu.busy_seconds() >= 0.009);
    }

    #[test]
    fn drop_drains_queued_tasks() {
        let flag = Arc::new(AtomicU64::new(0));
        {
            let gpu = SimGpu::new(fermi());
            for _ in 0..4 {
                let flag = Arc::clone(&flag);
                // Fire-and-forget handles: drop must still run the tasks.
                let _ = gpu.submit(move || {
                    flag.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop joins workers
        assert_eq!(flag.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn memory_and_cost_accounting() {
        let gpu = SimGpu::new(fermi());
        let a = gpu.malloc(1 << 20).unwrap();
        assert_eq!(gpu.memory_used(), 1 << 20);
        gpu.free(a);
        assert_eq!(gpu.memory_used(), 0);
        assert_eq!(gpu.memory_peak(), 1 << 20);

        let t = gpu.charge_task(1_000_000, 1024, 400_000);
        assert!(t > 0.0);
        assert!((gpu.virtual_busy_seconds() - t).abs() < 1e-6);
    }

    #[test]
    fn measured_charge_splits_components_and_tracks_queue_wait() {
        let gpu = SimGpu::new(fermi());
        let t0 = gpu.virtual_busy_seconds();
        let m1 = gpu.charge_task_measured(1_000_000, 1024, 4096, t0);
        assert!(m1.kernel_s > 0.0 && m1.dma_s > 0.0);
        assert_eq!(m1.queue_wait_s, 0.0, "idle device: no queue wait");
        // A second task submitted at the same timestamp waited behind
        // the first one's device seconds.
        let m2 = gpu.charge_task_measured(1_000_000, 1024, 4096, t0);
        assert!((m2.queue_wait_s - m1.device_s()).abs() < 1e-6);
        // The split sums to the plain cost model's end-to-end time.
        let whole = CostModel::from_props(gpu.props()).task_time(1_000_000, 1024, 4096);
        assert!((m1.device_s() - whole).abs() < 1e-12);
    }

    #[test]
    fn device_memory_exhaustion_surfaces() {
        let mut props = fermi();
        props.memory_bytes = 1024;
        let gpu = SimGpu::new(props);
        assert!(gpu.malloc(2048).is_err());
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let gpu = SimGpu::new(fermi());
        let h = gpu.submit(|| -> u32 { panic!("injected for test") });
        assert_eq!(h.wait_result(), Err(TaskError::Lost));
        assert_eq!(gpu.tasks_panicked(), 1);
        // The worker survived and serves later submissions.
        assert_eq!(gpu.execute_sync(|| 7), 7);
    }

    #[test]
    fn wait_timeout_trips_on_slow_tasks() {
        let gpu = SimGpu::new(fermi());
        let h = gpu.submit(|| {
            std::thread::sleep(std::time::Duration::from_millis(100));
            1
        });
        assert_eq!(
            h.wait_timeout(std::time::Duration::from_millis(5)),
            Err(TaskError::Timeout)
        );
        let h = gpu.submit(|| 2);
        assert_eq!(h.wait_timeout(std::time::Duration::from_secs(5)), Ok(2));
    }

    #[test]
    fn faulted_device_exposes_its_injector() {
        use crate::fault::{FaultKind, FaultOp};
        let plan = FaultPlan::default().fire_at(FaultOp::Launch, 0, FaultKind::LaunchError);
        let gpu = SimGpu::with_faults(fermi(), plan);
        assert!(gpu.faults().check_launch().is_err());
        assert!(gpu.faults().check_launch().is_ok());
    }

    #[test]
    fn results_route_to_the_right_handle() {
        let gpu = SimGpu::new(fermi());
        let handles: Vec<_> = (0..10).map(|i| gpu.submit(move || i * i)).collect();
        let results: Vec<i32> = handles.into_iter().map(TaskHandle::wait).collect();
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }
}
