//! CUDA-style streams and events.
//!
//! A [`Stream`] serializes its own submissions (commands in one stream
//! run in submission order) while *different* streams may overlap when
//! the device has more than one concurrent task slot — exactly CUDA's
//! contract. [`Stream::record_event`] returns a handle that completes
//! once everything previously submitted to the stream has finished;
//! another stream can [`Stream::wait_event`] on it, giving the usual
//! cross-stream synchronization primitives.
//!
//! The paper's implementation is synchronous and stream-free (its §V
//! limitation); streams are the device-side half of the asynchronous
//! extension, complementing the host-side submission window.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};

use std::cell::Cell;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Condvar, Mutex};

use crate::runtime::{SimGpu, TaskHandle};

struct StreamState {
    /// Next sequence number to hand out.
    next_seq: AtomicU64,
    /// Highest completed sequence number + 1.
    completed: Mutex<u64>,
    signal: Condvar,
}

impl StreamState {
    /// Block the calling device worker until the stream reaches `seq`.
    /// Poison-tolerant: a panic elsewhere in the stream must not turn
    /// into an unrelated `unwrap` panic here.
    fn wait_turn(&self, seq: u64) {
        let mut completed = self
            .completed
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *completed != seq {
            completed = self
                .signal
                .wait(completed)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Advances the stream gate on drop — including during unwind. Without
/// this, a panicking task body (e.g. an injected kernel panic) would
/// never publish `seq + 1` and every later submission to the stream
/// would deadlock in its gate wait.
struct GateAdvance {
    state: Arc<StreamState>,
    seq: u64,
}

impl Drop for GateAdvance {
    fn drop(&mut self) {
        let mut completed = self
            .state
            .completed
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *completed = self.seq + 1;
        drop(completed);
        self.state.signal.notify_all();
    }
}

/// An ordered lane of device work. Cheap to clone; clones share the
/// lane.
#[derive(Clone)]
pub struct Stream {
    state: Arc<StreamState>,
}

/// A recorded synchronization point in a stream.
pub struct StreamEvent {
    fired: Receiver<()>,
    seen: Cell<bool>,
}

impl StreamEvent {
    /// Block until the event has fired.
    pub fn synchronize(&self) {
        if !self.seen.get() && self.fired.recv().is_ok() {
            self.seen.set(true);
        }
    }

    /// Whether the event has already fired.
    #[must_use]
    pub fn query(&self) -> bool {
        if self.seen.get() {
            return true;
        }
        if self.fired.try_recv().is_ok() {
            self.seen.set(true);
        }
        self.seen.get()
    }
}

impl Default for Stream {
    fn default() -> Self {
        Stream::new()
    }
}

impl Stream {
    /// Create an independent stream.
    #[must_use]
    pub fn new() -> Stream {
        Stream {
            state: Arc::new(StreamState {
                next_seq: AtomicU64::new(0),
                completed: Mutex::new(0),
                signal: Condvar::new(),
            }),
        }
    }

    /// Submit `task` to `device` in this stream: it will not start
    /// before every earlier submission to the same stream has finished,
    /// regardless of how many device workers exist.
    pub fn submit<R, F>(&self, device: &SimGpu, task: F) -> TaskHandle<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let seq = self.state.next_seq.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        device.submit(move || {
            // Gate: wait for our turn in the stream.
            state.wait_turn(seq);
            // The sentry publishes `seq + 1` whether `task` returns or
            // unwinds, so one panicking task can never wedge the lane.
            let _advance = GateAdvance { state, seq };
            task()
        })
    }

    /// [`Stream::submit`], but the command drains on the device's DMA
    /// copy engines instead of its compute workers. Ordering within the
    /// stream is unchanged (one sequence gate covers both lanes); what
    /// changes is *which* workers execute — a copy-back submitted here
    /// can run while a serial Fermi compute queue is still busy with
    /// the next kernel.
    ///
    /// Gate-blocking a DMA worker is safe at any engine count: workers
    /// pop their queue in FIFO = submission = sequence order, so the
    /// stream's head command is always in a worker and can always run.
    pub fn submit_dma<R, F>(&self, device: &SimGpu, task: F) -> TaskHandle<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let seq = self.state.next_seq.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        device.submit_dma(move || {
            state.wait_turn(seq);
            let _advance = GateAdvance { state, seq };
            task()
        })
    }

    /// Record an event after everything currently submitted: the
    /// returned [`StreamEvent`] fires once the stream reaches this
    /// point.
    pub fn record_event(&self, device: &SimGpu) -> StreamEvent {
        let (tx, rx) = sync_channel(1);
        // The event is itself an (empty) stream task.
        let _ = self.submit(device, move || {
            let _ = tx.send(());
        });
        StreamEvent {
            fired: rx,
            seen: Cell::new(false),
        }
    }

    /// Make this stream wait for `event` (recorded on another stream)
    /// before running anything submitted after this call.
    pub fn wait_event(&self, device: &SimGpu, event: StreamEvent) {
        let _ = self.submit(device, move || {
            event.synchronize();
        });
    }

    /// [`Stream::wait_event`] parked on the DMA lane: the wait occupies
    /// a copy engine, never a compute worker — the idiom for "this copy
    /// stream waits for the compute stream's kernel, then copies back"
    /// on a device whose compute queue is strictly serial.
    pub fn wait_event_dma(&self, device: &SimGpu, event: StreamEvent) {
        let _ = self.submit_dma(device, move || {
            event.synchronize();
        });
    }

    /// Block the host until everything submitted so far has finished
    /// (like `cudaStreamSynchronize`).
    pub fn synchronize(&self, device: &SimGpu) {
        self.record_event(device).synchronize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::DeviceProps;

    fn hyper_q_device(workers: u32) -> SimGpu {
        let mut props = DeviceProps::tesla_k20();
        props.concurrent_tasks = workers;
        SimGpu::new(props)
    }

    #[test]
    fn one_stream_is_ordered_even_with_many_workers() {
        let gpu = hyper_q_device(8);
        let stream = Stream::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..32)
            .map(|i| {
                let log = Arc::clone(&log);
                stream.submit(&gpu, move || log.lock().unwrap().push(i))
            })
            .collect();
        for h in handles {
            h.wait();
        }
        assert_eq!(*log.lock().unwrap(), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn different_streams_overlap() {
        let gpu = hyper_q_device(4);
        let a = Stream::new();
        let b = Stream::new();
        let peak = Arc::new(AtomicU64::new(0));
        let active = Arc::new(AtomicU64::new(0));
        let spawn = |stream: &Stream| {
            let peak = Arc::clone(&peak);
            let active = Arc::clone(&active);
            stream.submit(&gpu, move || {
                let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(30));
                active.fetch_sub(1, Ordering::SeqCst);
            })
        };
        let h1 = spawn(&a);
        let h2 = spawn(&b);
        h1.wait();
        h2.wait();
        assert!(
            peak.load(Ordering::SeqCst) == 2,
            "two streams should run concurrently"
        );
    }

    #[test]
    fn events_order_across_streams() {
        let gpu = hyper_q_device(4);
        let producer = Stream::new();
        let consumer = Stream::new();
        let cell = Arc::new(AtomicU64::new(0));

        let c = Arc::clone(&cell);
        let _ = producer.submit(&gpu, move || {
            std::thread::sleep(std::time::Duration::from_millis(25));
            c.store(42, Ordering::SeqCst);
        });
        let event = producer.record_event(&gpu);
        consumer.wait_event(&gpu, event);
        let c = Arc::clone(&cell);
        let read = consumer.submit(&gpu, move || c.load(Ordering::SeqCst));
        // Despite the producer sleeping, the consumer must observe 42.
        assert_eq!(read.wait(), 42);
    }

    #[test]
    fn synchronize_drains_the_stream() {
        let gpu = hyper_q_device(2);
        let stream = Stream::new();
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            let _ = stream.submit(&gpu, move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        stream.synchronize(&gpu);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn dma_copy_back_overlaps_next_kernel_on_fermi() {
        // The engine's double-buffer pattern, on a device with ONE
        // compute worker: kernel k runs in the compute stream; the copy
        // stream waits on its event and settles k on the copy engines
        // while kernel k+1 already occupies the compute worker.
        let gpu = SimGpu::new(DeviceProps::tesla_c2075());
        let compute = Stream::new();
        let copy = Stream::new();

        // Handshake instead of sleeps: kernel 2 parks on the compute
        // worker until the copy has sampled it, so the overlap window
        // cannot close early no matter how loaded the test host is.
        let data = Arc::new(AtomicU64::new(0));
        let kernel2_running = Arc::new(AtomicU64::new(0));
        let copy_sampled = Arc::new(AtomicU64::new(0));
        let copy_overlapped = Arc::new(AtomicU64::new(0));
        let deadline = std::time::Duration::from_secs(10);

        let d = Arc::clone(&data);
        let _ = compute.submit(&gpu, move || {
            d.store(7, Ordering::SeqCst);
        });
        let ev = compute.record_event(&gpu);

        let running = Arc::clone(&kernel2_running);
        let sampled = Arc::clone(&copy_sampled);
        let k2 = compute.submit(&gpu, move || {
            running.store(1, Ordering::SeqCst);
            let start = std::time::Instant::now();
            while sampled.load(Ordering::SeqCst) == 0 && start.elapsed() < deadline {
                std::thread::yield_now();
            }
            running.store(0, Ordering::SeqCst);
        });

        copy.wait_event_dma(&gpu, ev);
        let d = Arc::clone(&data);
        let running = Arc::clone(&kernel2_running);
        let sampled = Arc::clone(&copy_sampled);
        let overlapped = Arc::clone(&copy_overlapped);
        let copied = copy.submit_dma(&gpu, move || {
            let start = std::time::Instant::now();
            while running.load(Ordering::SeqCst) == 0 && start.elapsed() < deadline {
                std::thread::yield_now();
            }
            overlapped.store(running.load(Ordering::SeqCst), Ordering::SeqCst);
            sampled.store(1, Ordering::SeqCst);
            d.load(Ordering::SeqCst)
        });

        assert_eq!(copied.wait(), 7, "copy-back observes kernel 1's result");
        k2.wait();
        assert_eq!(
            copy_overlapped.load(Ordering::SeqCst),
            1,
            "the copy-back ran while kernel 2 held the only compute worker"
        );
    }

    #[test]
    fn panicking_stream_task_does_not_wedge_the_lane() {
        use crate::runtime::TaskError;
        // A panic in the middle of an ordered stream must advance the
        // sequence gate anyway: later submissions still run, on both
        // the compute and the DMA lane.
        let gpu = SimGpu::new(DeviceProps::tesla_c2075());
        let stream = Stream::new();
        let ok_before = stream.submit(&gpu, || 1u32);
        let boom = stream.submit(&gpu, || -> u32 { panic!("injected for test") });
        let ok_after = stream.submit(&gpu, || 3u32);
        let dma_after = stream.submit_dma(&gpu, || 4u32);
        assert_eq!(ok_before.wait(), 1);
        assert_eq!(boom.wait_result(), Err(TaskError::Lost));
        assert_eq!(ok_after.wait(), 3, "gate advanced past the panic");
        assert_eq!(dma_after.wait(), 4);
        stream.synchronize(&gpu);
        assert_eq!(gpu.tasks_panicked(), 1);
    }

    #[test]
    fn event_query_reflects_state() {
        let gpu = hyper_q_device(2);
        let stream = Stream::new();
        let _ = stream.submit(&gpu, || {
            std::thread::sleep(std::time::Duration::from_millis(20));
        });
        let event = stream.record_event(&gpu);
        // Usually not yet fired (the first task sleeps)...
        stream.synchronize(&gpu);
        // ...but after a full synchronize it must have.
        assert!(event.query());
    }
}
