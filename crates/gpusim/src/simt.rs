//! The SIMT kernel executor — paper Algorithm 2 run for real.
//!
//! CUDA semantics kept: a launch has a grid of blocks of threads; every
//! thread computes `idx = threadIdx.x + blockIdx.x * blockDim.x` and
//! works on its contiguous chunk of energy bins; each bin is integrated
//! with the composite Simpson rule (or Romberg for the high-accuracy
//! variant) and accumulated into the per-bin emissivity array `emi`,
//! which stays "on the device" until the task finishes (one D2H copy
//! per task, not per integral — the whole point of the paper's
//! coarse-grained task).
//!
//! Execution is a parallel map over per-thread output chunks across
//! scoped host threads: disjoint `&mut` chunks (carved with
//! `split_at_mut`) give data-race freedom by construction, and the
//! chunk table is computed arithmetically per worker instead of being
//! heap-allocated per launch.

use quadrature::{
    integrate_bins_sampled_mode, romberg, simpson, BatchSampler, BinRule, GaussLegendre, MathMode,
};

/// A CUDA-style launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks (`gridDim.x`).
    pub grid_dim: u32,
    /// Threads per block (`blockDim.x`).
    pub block_dim: u32,
}

impl LaunchConfig {
    /// A config with `grid_dim * block_dim` total threads.
    #[must_use]
    pub fn new(grid_dim: u32, block_dim: u32) -> LaunchConfig {
        LaunchConfig {
            grid_dim: grid_dim.max(1),
            block_dim: block_dim.max(1),
        }
    }

    /// The paper-era default: 128-thread blocks covering `work` items.
    #[must_use]
    pub fn cover(work: usize) -> LaunchConfig {
        let block_dim = 128u32;
        let grid_dim = work.div_ceil(block_dim as usize).max(1) as u32;
        LaunchConfig::new(grid_dim, block_dim)
    }

    /// Total thread count.
    #[must_use]
    pub fn total_threads(&self) -> usize {
        self.grid_dim as usize * self.block_dim as usize
    }
}

/// Per-thread identity, mirroring CUDA's built-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCtx {
    /// `blockIdx.x`.
    pub block_idx: u32,
    /// `threadIdx.x`.
    pub thread_idx: u32,
    /// `blockDim.x`.
    pub block_dim: u32,
    /// `gridDim.x`.
    pub grid_dim: u32,
}

impl ThreadCtx {
    /// `threadIdx.x + blockIdx.x * blockDim.x` (Algorithm 2 line 3).
    #[must_use]
    pub fn global_id(&self) -> usize {
        self.thread_idx as usize + self.block_idx as usize * self.block_dim as usize
    }
}

/// Launch `body` over `out`: the output is split into one contiguous
/// chunk per thread (threads at the front get the remainder, as in the
/// usual CUDA chunking idiom) and every thread runs `body(ctx, chunk)`
/// in parallel.
///
/// Threads whose chunk would be empty (idle lanes when
/// `total_threads > out.len()`) are skipped entirely — no work is
/// spawned for them. Simulated threads are partitioned across at most
/// `available_parallelism` scoped host threads, each walking its range
/// of chunks with `split_at_mut`; nothing is heap-allocated per launch.
pub fn launch<T, F>(cfg: LaunchConfig, out: &mut [T], body: F)
where
    T: Send,
    F: Fn(ThreadCtx, &mut [T]) + Sync,
{
    let n = out.len();
    if n == 0 {
        return;
    }
    let total = cfg.total_threads();
    let base = n / total;
    let extra = n % total;
    // Number of simulated threads with a non-empty chunk: when base is
    // 0 only the first `extra` lanes hold an element each.
    let effective = if base == 0 { extra } else { total };
    let body = &body;

    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(effective);
    if workers <= 1 {
        run_thread_range(cfg, 0, effective, out, base, extra, body);
        return;
    }

    // First element index of simulated thread `t` under the chunking
    // law (thread t owns base + (t < extra) elements).
    let offset = |t: usize| t * base + t.min(extra);
    let range_base = effective / workers;
    let range_extra = effective % workers;
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut t0 = 0usize;
        for w in 0..workers {
            let t1 = t0 + range_base + usize::from(w < range_extra);
            let (slice, tail) = rest.split_at_mut(offset(t1) - offset(t0));
            rest = tail;
            if w + 1 == workers {
                // Run the last range on the launching thread.
                run_thread_range(cfg, t0, t1, slice, base, extra, body);
            } else {
                scope.spawn(move || run_thread_range(cfg, t0, t1, slice, base, extra, body));
            }
            t0 = t1;
        }
    });
}

/// Execute simulated threads `t0..t1` sequentially over `slice`, which
/// holds exactly their concatenated chunks.
fn run_thread_range<T, F>(
    cfg: LaunchConfig,
    t0: usize,
    t1: usize,
    mut slice: &mut [T],
    base: usize,
    extra: usize,
    body: &F,
) where
    F: Fn(ThreadCtx, &mut [T]),
{
    for t in t0..t1 {
        let size = base + usize::from(t < extra);
        let (chunk, tail) = slice.split_at_mut(size);
        slice = tail;
        let ctx = ThreadCtx {
            block_idx: (t / cfg.block_dim as usize) as u32,
            thread_idx: (t % cfg.block_dim as usize) as u32,
            block_dim: cfg.block_dim,
            grid_dim: cfg.grid_dim,
        };
        body(ctx, chunk);
    }
}

/// Arithmetic precision of the device kernel.
///
/// The Tesla C2075's double-precision units run at 1/2 the
/// single-precision rate, and Fermi-era production kernels (including
/// the error scale visible in the paper's Fig. 8, ~1e-5 relative)
/// accumulated in `float`. [`Precision::Single`] emulates that: every
/// integrand sample and every accumulation step is rounded to `f32`
/// before use, while [`Precision::Double`] keeps full `f64` arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full f64 arithmetic.
    #[default]
    Double,
    /// Emulated f32 kernel arithmetic (samples and accumulations
    /// rounded to f32).
    Single,
}

/// The per-bin integration rule the device kernel applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceRule {
    /// Composite Simpson with `panels` pieces (paper default: 64).
    Simpson {
        /// Panels per bin.
        panels: usize,
    },
    /// Romberg with `k` dichotomy levels (paper Fig. 6 / Table I).
    Romberg {
        /// Dichotomy levels.
        k: u32,
    },
    /// Fixed-order Gauss–Legendre — a third back-end exercising the
    /// paper's pluggable-integrator interface ("different numerical
    /// integration algorithms can be connected to the main program on
    /// demand").
    GaussLegendre {
        /// Rule order (points per bin).
        order: usize,
    },
}

impl DeviceRule {
    /// Integrand evaluations this rule spends per bin — the work unit
    /// the cost model charges.
    #[must_use]
    pub fn evals_per_bin(&self) -> u64 {
        match *self {
            DeviceRule::Simpson { panels } => 2 * panels.max(1) as u64 + 1,
            DeviceRule::Romberg { k } => quadrature::romberg::romberg_evaluations(k),
            DeviceRule::GaussLegendre { order } => order.clamp(1, 256) as u64,
        }
    }

    fn integrate<F: FnMut(f64) -> f64>(
        &self,
        mut f: F,
        lo: f64,
        hi: f64,
        precision: Precision,
    ) -> f64 {
        match precision {
            Precision::Double => match *self {
                DeviceRule::Simpson { panels } => simpson(f, lo, hi, panels).value,
                DeviceRule::Romberg { k } => romberg(f, lo, hi, k).value,
                DeviceRule::GaussLegendre { order } => {
                    GaussLegendre::new(order).integrate(f, lo, hi).value
                }
            },
            Precision::Single => match *self {
                DeviceRule::Simpson { panels } => simpson_f32(f, lo, hi, panels),
                DeviceRule::Romberg { k } => romberg_f32(f, lo, hi, k),
                DeviceRule::GaussLegendre { order } => {
                    // Round each sample to f32, as the float kernel would.
                    GaussLegendre::new(order)
                        .integrate(|x| f64::from(f(x) as f32), lo, hi)
                        .value
                }
            },
        }
    }
}

/// Composite Simpson with f32 accumulation: samples are taken in f64
/// (abscissa computation stays exact enough either way) but every value
/// is rounded to f32 and the running sums are kept in f32, as a float
/// CUDA kernel would.
fn simpson_f32<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, panels: usize) -> f64 {
    let n = panels.max(1);
    let h = ((hi - lo) / n as f64) as f32;
    let mut sum = f(lo) as f32 + f(hi) as f32;
    for i in 0..n {
        let a = lo + (hi - lo) * i as f64 / n as f64;
        let mid = a + 0.5 * (hi - lo) / n as f64;
        sum += 4.0f32 * f(mid) as f32;
        if i + 1 < n {
            sum += 2.0f32 * f(a + (hi - lo) / n as f64) as f32;
        }
    }
    f64::from(sum * h / 6.0f32)
}

/// Romberg with an f32 tableau (see [`simpson_f32`]).
fn romberg_f32<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, k: u32) -> f64 {
    let k = k.clamp(1, 24) as usize;
    let h0 = hi - lo;
    let mut trap = (0.5 * h0) as f32 * (f(lo) as f32 + f(hi) as f32);
    let mut prev: Vec<f32> = vec![trap];
    for level in 1..=k {
        let panels_before = 1usize << (level - 1);
        let h = h0 / panels_before as f64;
        let mut mid_sum = 0.0f32;
        for i in 0..panels_before {
            mid_sum += f(lo + (i as f64 + 0.5) * h) as f32;
        }
        trap = 0.5f32 * (trap + h as f32 * mid_sum);
        let mut row = vec![trap];
        let mut pow4 = 1.0f32;
        for m in 1..=level {
            pow4 *= 4.0;
            row.push((pow4 * row[m - 1] - prev[m - 1]) / (pow4 - 1.0));
        }
        prev = row;
    }
    f64::from(*prev.last().expect("k >= 1"))
}

/// The RRC bin-integration kernel (paper Algorithm 2, extended with the
/// in-device accumulation over an ion's levels that makes the Ion
/// granularity win).
///
/// `integrands` is one closure per energy level; the kernel accumulates
/// `sum_level rule(f_level, bin)` into each bin of `emi`.
///
/// ```
/// use gpu_sim::{BinIntegrationKernel, DeviceRule, LaunchConfig, Precision};
///
/// let f = |x: f64| x * x;
/// let bins = [(0.0, 1.0), (1.0, 2.0)];
/// let kernel = BinIntegrationKernel {
///     integrands: std::slice::from_ref(&f),
///     bins: &bins,
///     precision: Precision::Double,
///     windows: None,
///     rule: DeviceRule::Simpson { panels: 64 },
/// };
/// let mut emi = [0.0; 2];
/// kernel.execute(LaunchConfig::cover(2), &mut emi);
/// assert!((emi[0] - 1.0 / 3.0).abs() < 1e-12);
/// assert!((emi[1] - 7.0 / 3.0).abs() < 1e-12);
/// ```
pub struct BinIntegrationKernel<'a, F> {
    /// One integrand per level of the ion (a single-element slice for
    /// Level granularity).
    pub integrands: &'a [F],
    /// Per-bin integration bounds `(lo, hi)`; bins need not be uniform
    /// (the spectral grid clamps edge bins at recombination thresholds).
    pub bins: &'a [(f64, f64)],
    /// Kernel arithmetic precision (see [`Precision`]).
    pub precision: Precision,
    /// Optional per-integrand support window `(threshold, cutoff)`:
    /// bins entirely outside are skipped and the bin's lower bound is
    /// clamped to the threshold — the recombination-edge handling of the
    /// RRC physics, kept identical to the CPU path so the two paths
    /// differ only in integration rule.
    pub windows: Option<&'a [(f64, f64)]>,
    /// Per-bin rule.
    pub rule: DeviceRule,
}

impl<F> BinIntegrationKernel<'_, F>
where
    F: Fn(f64) -> f64 + Sync,
{
    /// Execute the kernel with `cfg`, accumulating into `emi` (one slot
    /// per bin). Returns the number of integrand evaluations charged.
    ///
    /// # Panics
    /// Panics if `emi.len() != self.bins.len()`.
    pub fn execute(&self, cfg: LaunchConfig, emi: &mut [f64]) -> u64 {
        assert_eq!(emi.len(), self.bins.len(), "emi / bins mismatch");
        if let Some(w) = self.windows {
            assert_eq!(w.len(), self.integrands.len(), "one window per integrand");
        }
        let bins = self.bins;
        let integrands = self.integrands;
        let windows = self.windows;
        let rule = self.rule;
        let precision = self.precision;
        let n = bins.len();
        let threads = cfg.total_threads();
        let base = n / threads;
        let extra = n % threads;
        let evals = std::sync::atomic::AtomicU64::new(0);

        launch(cfg, emi, |ctx, chunk| {
            let t = ctx.global_id();
            let mut local_evals = 0u64;
            // Recover this thread's bin offset from the chunking law.
            let start = t * base + t.min(extra);
            for (i, slot) in chunk.iter_mut().enumerate() {
                let (lo, hi) = bins[start + i];
                let mut acc = 0.0;
                for (level, f) in integrands.iter().enumerate() {
                    let (lo, hi) = match windows {
                        Some(w) => {
                            let (threshold, cutoff) = w[level];
                            if hi <= threshold || lo >= cutoff {
                                continue;
                            }
                            (lo.max(threshold), hi)
                        }
                        None => (lo, hi),
                    };
                    let value = rule.integrate(f, lo, hi, precision);
                    acc = match precision {
                        Precision::Double => acc + value,
                        Precision::Single => f64::from(acc as f32 + value as f32),
                    };
                    local_evals += rule.evals_per_bin();
                }
                *slot += acc;
            }
            evals.fetch_add(local_evals, std::sync::atomic::Ordering::Relaxed);
        });
        evals.into_inner()
    }
}

/// The fused-hot-path variant of [`BinIntegrationKernel`].
///
/// Semantics are the same — accumulate `sum_level rule(f_level, bin)`
/// into each bin — but each thread integrates its whole contiguous bin
/// chunk per level with [`quadrature::integrate_bins_sampled`], so
/// every shared bin edge is sampled exactly once, and window handling
/// splits the chunk into (skipped bins) + (one clamped leading bin) +
/// (a fused contiguous tail) instead of testing the window per bin.
///
/// Integrands are [`BatchSampler`]s rather than plain closures: every
/// bin's node grid is evaluated in one `sample_batch` call, so
/// structured integrands (the prepared RRC form, which needs only one
/// `exp` per bin) get their fast path, while
/// [`quadrature::FnSampler`]-wrapped closures behave — bitwise —
/// exactly like the legacy kernel.
///
/// `emi` is *overwritten* (zeroed, then accumulated): the pooled
/// per-task device buffers the runtime recycles may hold stale data, so
/// the kernel owns initialization. With the buffer starting at zero the
/// f64 results are bitwise identical to [`BinIntegrationKernel`] with
/// [`DeviceRule::Simpson`]/[`DeviceRule::Romberg`], and `Single`
/// precision reproduces the legacy f32 rounding sequence exactly.
///
/// [`DeviceRule::GaussLegendre`] has no shareable edge nodes; it runs
/// per-bin exactly as the legacy kernel does (still benefiting from the
/// prepared integrands and pooled buffers upstream).
pub struct FusedBinKernel<'a, S> {
    /// One integrand per level of the ion (a single-element slice for
    /// Level granularity). Each thread works on a private copy, so the
    /// sampler's `&mut self` methods never contend.
    pub integrands: &'a [S],
    /// Per-bin integration bounds `(lo, hi)`.
    pub bins: &'a [(f64, f64)],
    /// Kernel arithmetic precision (see [`Precision`]).
    pub precision: Precision,
    /// Optional per-integrand support window `(threshold, cutoff)`,
    /// same semantics as [`BinIntegrationKernel::windows`].
    pub windows: Option<&'a [(f64, f64)]>,
    /// Per-bin rule.
    pub rule: DeviceRule,
    /// Accumulation math: [`MathMode::Exact`] keeps the seed's scalar
    /// summation order bitwise; [`MathMode::Vector`] runs the f64
    /// Simpson/Romberg weighted sums lane-parallel. f32 and
    /// Gauss–Legendre paths ignore the mode (they have no fused f64
    /// accumulation to vectorize).
    pub math: MathMode,
}

impl<S> FusedBinKernel<'_, S>
where
    S: BatchSampler + Copy + Sync,
{
    /// Execute the kernel with `cfg`, overwriting `emi` (one slot per
    /// bin). Returns the number of integrand evaluations performed —
    /// with fusion this is *less* than the legacy kernel charges for
    /// the same work, which is the saving the cost model should see.
    ///
    /// # Panics
    /// Panics if `emi.len() != self.bins.len()`.
    pub fn execute(&self, cfg: LaunchConfig, emi: &mut [f64]) -> u64 {
        assert_eq!(emi.len(), self.bins.len(), "emi / bins mismatch");
        if let Some(w) = self.windows {
            assert_eq!(w.len(), self.integrands.len(), "one window per integrand");
        }
        let bins = self.bins;
        let integrands = self.integrands;
        let windows = self.windows;
        let rule = self.rule;
        let precision = self.precision;
        let math = self.math;
        let n = bins.len();
        let threads = cfg.total_threads();
        let base = n / threads;
        let extra = n % threads;
        let evals = std::sync::atomic::AtomicU64::new(0);

        launch(cfg, emi, |ctx, chunk| {
            let t = ctx.global_id();
            // Pooled buffers may hold a previous task's values.
            for slot in chunk.iter_mut() {
                *slot = 0.0;
            }
            let mut local_evals = 0u64;
            // Recover this thread's bin offset from the chunking law.
            let start = t * base + t.min(extra);
            let my_bins = &bins[start..start + chunk.len()];
            for (level, f) in integrands.iter().enumerate() {
                // Private copy: sampling needs `&mut`, the slice is shared.
                let mut f = *f;
                let window = windows.map(|w| w[level]);
                local_evals +=
                    integrate_chunk(rule, precision, math, &mut f, my_bins, window, chunk);
            }
            evals.fetch_add(local_evals, std::sync::atomic::Ordering::Relaxed);
        });
        evals.into_inner()
    }
}

/// Fused abundance-weighted accumulation kernel: the fold companion to
/// [`FusedBinKernel`]. Where the integration kernels *produce* one
/// ion's per-bin partial, this kernel *consumes* many resident partials
/// at once, computing `out[b] = Σ_i w_i · p_i[b]` so the weighting and
/// the cross-ion sum happen in a single device pass and only the folded
/// spectrum ever crosses the simulated PCIe link.
///
/// Determinism contract: each bin accumulates its ions in ascending
/// slice order with a scalar f64 loop, and bins are independent of one
/// another, so the result is **bitwise invariant under any launch
/// geometry** (unlike the integration kernels, which need a pinned
/// chunking only because of shared-edge fusion). With unit weights the
/// `1.0 * p` multiply is an IEEE-754 identity, so the fold is bitwise
/// equal to the host-side ascending-ion `assemble` sum the service and
/// serial paths use — the property the delta-recalculation layer's
/// tolerance-zero parity gate relies on.
pub struct WeightedFoldKernel<'a> {
    /// Per-ion resident partials, ascending ion order; every slice must
    /// have `out.len()` bins.
    pub partials: &'a [&'a [f64]],
    /// One abundance weight per partial (`1.0` = fold verbatim).
    pub weights: &'a [f64],
}

impl WeightedFoldKernel<'_> {
    /// Execute the fold with `cfg`, overwriting `out` (one slot per
    /// bin). Returns the number of fused multiply-adds performed
    /// (`partials × bins`) for the runtime's cost model.
    ///
    /// # Panics
    /// Panics if `weights.len() != partials.len()` or any partial's
    /// length differs from `out.len()`.
    pub fn execute(&self, cfg: LaunchConfig, out: &mut [f64]) -> u64 {
        assert_eq!(
            self.weights.len(),
            self.partials.len(),
            "one weight per partial"
        );
        for (i, p) in self.partials.iter().enumerate() {
            assert_eq!(p.len(), out.len(), "partial {i} / out bin mismatch");
        }
        let partials = self.partials;
        let weights = self.weights;
        let n = out.len();
        let threads = cfg.total_threads();
        let base = n / threads;
        let extra = n % threads;

        launch(cfg, out, |ctx, chunk| {
            let t = ctx.global_id();
            // Recover this thread's bin offset from the chunking law.
            let start = t * base + t.min(extra);
            for (i, slot) in chunk.iter_mut().enumerate() {
                let bin = start + i;
                let mut acc = 0.0f64;
                for (p, &w) in partials.iter().zip(weights) {
                    acc += w * p[bin];
                }
                *slot = acc;
            }
        });
        (partials.len() * n) as u64
    }
}

/// Accumulate one integrand over one thread's bin chunk, fusing shared
/// edges where the rule allows it.
fn integrate_chunk<S: BatchSampler>(
    rule: DeviceRule,
    precision: Precision,
    math: MathMode,
    s: &mut S,
    bins: &[(f64, f64)],
    window: Option<(f64, f64)>,
    out: &mut [f64],
) -> u64 {
    // Resolve the window to the sub-range of bins with support:
    // `skip..end`, with bin `skip` possibly clamped at the threshold.
    let (skip, end, clamped_lo) = match window {
        None => (0, bins.len(), None),
        Some((threshold, cutoff)) => {
            let skip = bins.partition_point(|&(_, hi)| hi <= threshold);
            let end = bins.partition_point(|&(lo, _)| lo < cutoff);
            if skip >= end {
                return 0;
            }
            let (lo, _) = bins[skip];
            let clamped = lo.max(threshold);
            (skip, end, if clamped > lo { Some(clamped) } else { None })
        }
    };
    let bins = &bins[skip..end];
    let out = &mut out[skip..end];
    match (rule, precision) {
        (DeviceRule::Simpson { panels }, Precision::Double) => {
            fused_f64(BinRule::Simpson { panels }, math, s, bins, clamped_lo, out)
        }
        (DeviceRule::Romberg { k }, Precision::Double) => {
            fused_f64(BinRule::Romberg { k }, math, s, bins, clamped_lo, out)
        }
        (DeviceRule::Simpson { panels }, Precision::Single) => {
            fused_simpson_f32(s, bins, clamped_lo, out, panels)
        }
        (DeviceRule::Romberg { k }, Precision::Single) => {
            perbin_f32(rule, s, bins, clamped_lo, out, romberg_f32_adapter(k))
        }
        (DeviceRule::GaussLegendre { order }, _) => {
            // No shared edge nodes: per-bin exactly like the legacy path.
            let gl = GaussLegendre::new(order);
            let mut evals = 0u64;
            for (slot, (i, &(lo, hi))) in out.iter_mut().zip(bins.iter().enumerate()) {
                let lo = if i == 0 { clamped_lo.unwrap_or(lo) } else { lo };
                let value = match precision {
                    Precision::Double => gl.integrate(|x| s.sample(x), lo, hi).value,
                    Precision::Single => {
                        gl.integrate(|x| f64::from(s.sample(x) as f32), lo, hi)
                            .value
                    }
                };
                accumulate(slot, value, precision);
                evals += rule.evals_per_bin();
            }
            evals
        }
    }
}

/// f64 fused path: the clamped leading bin (if any) integrates alone,
/// the contiguous remainder goes through
/// [`quadrature::integrate_bins_sampled`].
fn fused_f64<S: BatchSampler>(
    rule: BinRule,
    math: MathMode,
    s: &mut S,
    bins: &[(f64, f64)],
    clamped_lo: Option<f64>,
    out: &mut [f64],
) -> u64 {
    match clamped_lo {
        Some(lo) => {
            let first = [(lo, bins[0].1)];
            let evals = integrate_bins_sampled_mode(rule, &mut *s, &first, &mut out[..1], math);
            evals + integrate_bins_sampled_mode(rule, &mut *s, &bins[1..], &mut out[1..], math)
        }
        None => integrate_bins_sampled_mode(rule, s, bins, out, math),
    }
}

/// Round-and-accumulate matching the legacy kernel's per-level step.
fn accumulate(slot: &mut f64, value: f64, precision: Precision) {
    *slot = match precision {
        Precision::Double => *slot + value,
        Precision::Single => f64::from(*slot as f32 + value as f32),
    };
}

/// Fused composite Simpson with f32 accumulation: per-bin arithmetic
/// identical to the legacy `simpson_f32` — the same node expressions and
/// the same f32 rounding sequence — with each bin's nodes gathered into
/// one ascending `sample_batch` call and the raw f64 edge sample cached
/// across shared edges (rounding happens at accumulation, so reuse
/// cannot change the result).
fn fused_simpson_f32<S: BatchSampler>(
    s: &mut S,
    bins: &[(f64, f64)],
    clamped_lo: Option<f64>,
    out: &mut [f64],
    panels: usize,
) -> u64 {
    let n = panels.max(1);
    let mut evals = 0u64;
    let mut edge: Option<(f64, f64)> = None;
    // Ascending per-bin grid: lo, then (mid_j, interior_j) per panel,
    // then hi — mid_j lands at 2j+1, interior_j at 2j+2, hi at 2n.
    let mut xs: Vec<f64> = Vec::with_capacity(2 * n + 1);
    let mut vals: Vec<f64> = vec![0.0; 2 * n + 1];
    for (i, (slot, &(lo, hi))) in out.iter_mut().zip(bins).enumerate() {
        let lo = if i == 0 { clamped_lo.unwrap_or(lo) } else { lo };
        xs.clear();
        xs.push(lo);
        for j in 0..n {
            let a = lo + (hi - lo) * j as f64 / n as f64;
            xs.push(a + 0.5 * (hi - lo) / n as f64);
            if j + 1 < n {
                xs.push(a + (hi - lo) / n as f64);
            }
        }
        xs.push(hi);
        match edge {
            Some((x, v)) if x == lo => {
                vals[0] = v;
                s.sample_batch(&xs[1..], &mut vals[1..2 * n + 1]);
                evals += 2 * n as u64;
            }
            _ => {
                s.sample_batch(&xs, &mut vals[..2 * n + 1]);
                evals += 2 * n as u64 + 1;
            }
        }
        // Mirrors `simpson_f32` exactly from here.
        let h = ((hi - lo) / n as f64) as f32;
        let mut sum = vals[0] as f32 + vals[2 * n] as f32;
        for j in 0..n {
            sum += 4.0f32 * vals[2 * j + 1] as f32;
            if j + 1 < n {
                sum += 2.0f32 * vals[2 * j + 2] as f32;
            }
        }
        accumulate(slot, f64::from(sum * h / 6.0f32), Precision::Single);
        edge = Some((hi, vals[2 * n]));
    }
    evals
}

/// Adapter handing `romberg_f32` to [`perbin_f32`].
fn romberg_f32_adapter(k: u32) -> impl Fn(&mut dyn FnMut(f64) -> f64, f64, f64) -> f64 {
    move |f, lo, hi| romberg_f32(&mut *f, lo, hi, k)
}

/// Per-bin f32 fallback for rules without a fused f32 form; arithmetic
/// identical to the legacy kernel.
fn perbin_f32<S: BatchSampler>(
    rule: DeviceRule,
    s: &mut S,
    bins: &[(f64, f64)],
    clamped_lo: Option<f64>,
    out: &mut [f64],
    integrate: impl Fn(&mut dyn FnMut(f64) -> f64, f64, f64) -> f64,
) -> u64 {
    let mut evals = 0u64;
    for (i, (slot, &(lo, hi))) in out.iter_mut().zip(bins).enumerate() {
        let lo = if i == 0 { clamped_lo.unwrap_or(lo) } else { lo };
        accumulate(
            slot,
            integrate(&mut |x| s.sample(x), lo, hi),
            Precision::Single,
        );
        evals += rule.evals_per_bin();
    }
    evals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_covers_every_element_exactly_once() {
        let mut out = vec![0u32; 1003];
        launch(LaunchConfig::new(4, 32), &mut out, |_ctx, chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(out.iter().all(|&v| v == 1));
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let mut out = vec![0u8; 3];
        launch(LaunchConfig::new(2, 64), &mut out, |_ctx, chunk| {
            for v in chunk {
                *v = 1;
            }
        });
        assert_eq!(out, vec![1, 1, 1]);
    }

    #[test]
    fn thread_ids_follow_cuda_convention() {
        let cfg = LaunchConfig::new(3, 4);
        let mut out = vec![0usize; 12];
        launch(cfg, &mut out, |ctx, chunk| {
            assert!(ctx.block_idx < 3 && ctx.thread_idx < 4);
            for v in chunk {
                *v = ctx.global_id();
            }
        });
        // With 12 elements and 12 threads, element i belongs to thread i.
        assert_eq!(out, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn kernel_matches_serial_simpson() {
        // One "level": integrate x^2 over [0, 1] split into 10 bins.
        let f = |x: f64| x * x;
        let bins: Vec<(f64, f64)> = (0..10)
            .map(|i| (i as f64 / 10.0, (i + 1) as f64 / 10.0))
            .collect();
        let kernel = BinIntegrationKernel {
            integrands: std::slice::from_ref(&f),
            bins: &bins,
            precision: Precision::Double,
            windows: None,
            rule: DeviceRule::Simpson { panels: 4 },
        };
        let mut emi = vec![0.0; 10];
        let evals = kernel.execute(LaunchConfig::new(2, 3), &mut emi);
        let total: f64 = emi.iter().sum();
        assert!((total - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(evals, 9 * 10);
        // Per-bin values match the serial rule exactly (same arithmetic).
        for (i, &(lo, hi)) in bins.iter().enumerate() {
            let serial = quadrature::simpson(f, lo, hi, 4).value;
            assert_eq!(emi[i], serial, "bin {i}");
        }
    }

    #[test]
    fn kernel_accumulates_over_levels() {
        let f1 = |x: f64| x;
        let f2 = |x: f64| 1.0 - x;
        let fs: Vec<&(dyn Fn(f64) -> f64 + Sync)> = vec![&f1, &f2];
        let bins = vec![(0.0, 1.0)];
        let kernel = BinIntegrationKernel {
            integrands: &fs,
            bins: &bins,
            precision: Precision::Double,
            windows: None,
            rule: DeviceRule::Simpson { panels: 2 },
        };
        let mut emi = vec![0.0];
        kernel.execute(LaunchConfig::new(1, 1), &mut emi);
        // f1 + f2 = 1, so the bin integrates to exactly 1.
        assert!((emi[0] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn kernel_accumulates_into_existing_values() {
        let f = |x: f64| x;
        let bins = vec![(0.0, 2.0)];
        let kernel = BinIntegrationKernel {
            integrands: std::slice::from_ref(&f),
            bins: &bins,
            precision: Precision::Double,
            windows: None,
            rule: DeviceRule::Simpson { panels: 1 },
        };
        let mut emi = vec![10.0];
        kernel.execute(LaunchConfig::new(1, 4), &mut emi);
        assert!((emi[0] - 12.0).abs() < 1e-12);
    }

    #[test]
    fn gauss_legendre_rule_is_pluggable() {
        let f = |x: f64| x * x * x + 2.0;
        let bins = vec![(0.0, 1.0), (1.0, 2.0)];
        let kernel = BinIntegrationKernel {
            integrands: std::slice::from_ref(&f),
            bins: &bins,
            precision: Precision::Double,
            windows: None,
            rule: DeviceRule::GaussLegendre { order: 8 },
        };
        let mut emi = vec![0.0; 2];
        let evals = kernel.execute(LaunchConfig::new(1, 2), &mut emi);
        assert!((emi[0] - (0.25 + 2.0)).abs() < 1e-12);
        assert!((emi[1] - (4.0 - 0.25 + 2.0)).abs() < 1e-12);
        assert_eq!(evals, 8 * 2);
    }

    #[test]
    fn romberg_rule_charges_exponential_work() {
        let r7 = DeviceRule::Romberg { k: 7 };
        let r9 = DeviceRule::Romberg { k: 9 };
        assert_eq!(r7.evals_per_bin(), (1 << 7) + 1);
        assert_eq!(r9.evals_per_bin(), (1 << 9) + 1);
    }

    #[test]
    fn deterministic_across_launch_configs() {
        // The same work split across different grids must give the same
        // answer bit-for-bit (each bin's arithmetic is independent).
        let f = |x: f64| (x * 3.7).sin().abs() + 0.5;
        let bins: Vec<(f64, f64)> = (0..64)
            .map(|i| (i as f64 * 0.1, (i + 1) as f64 * 0.1))
            .collect();
        let run = |cfg: LaunchConfig| {
            let kernel = BinIntegrationKernel {
                integrands: std::slice::from_ref(&f),
                bins: &bins,
                precision: Precision::Double,
                windows: None,
                rule: DeviceRule::Simpson { panels: 8 },
            };
            let mut emi = vec![0.0; bins.len()];
            kernel.execute(cfg, &mut emi);
            emi
        };
        let a = run(LaunchConfig::new(1, 1));
        let b = run(LaunchConfig::new(4, 16));
        let c = run(LaunchConfig::cover(bins.len()));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn windows_clamp_and_skip_bins() {
        // Integrand constant 1 with support starting at 0.5: bins below
        // the threshold contribute nothing, the straddling bin is
        // clamped, bins past the cutoff are skipped.
        let f = |_: f64| 1.0;
        let bins = vec![(0.0, 0.4), (0.4, 0.8), (0.8, 1.2), (1.2, 1.6)];
        let windows = vec![(0.5, 1.2)];
        let kernel = BinIntegrationKernel {
            integrands: std::slice::from_ref(&f),
            bins: &bins,
            precision: Precision::Double,
            windows: Some(&windows),
            rule: DeviceRule::Simpson { panels: 2 },
        };
        let mut emi = vec![0.0; 4];
        let evals = kernel.execute(LaunchConfig::new(1, 2), &mut emi);
        assert_eq!(emi[0], 0.0); // fully below threshold
        assert!((emi[1] - 0.3).abs() < 1e-14); // clamped to [0.5, 0.8]
        assert!((emi[2] - 0.4).abs() < 1e-14); // fully inside
        assert_eq!(emi[3], 0.0); // at/after cutoff
                                 // Work is only charged for the 2 bins actually integrated.
        assert_eq!(evals, 2 * 5);
    }

    #[test]
    fn single_precision_errors_are_float_scale() {
        let f = |x: f64| (x * 0.37).exp() * (1.0 + x).recip();
        let bins: Vec<(f64, f64)> = (0..32)
            .map(|i| (i as f64 * 0.5, (i + 1) as f64 * 0.5))
            .collect();
        let run = |precision: Precision| {
            let kernel = BinIntegrationKernel {
                integrands: std::slice::from_ref(&f),
                bins: &bins,
                precision,
                windows: None,
                rule: DeviceRule::Simpson { panels: 64 },
            };
            let mut emi = vec![0.0; bins.len()];
            kernel.execute(LaunchConfig::cover(bins.len()), &mut emi);
            emi
        };
        let double = run(Precision::Double);
        let single = run(Precision::Single);
        let mut worst: f64 = 0.0;
        for (d, s) in double.iter().zip(&single) {
            worst = worst.max(((s - d) / d).abs());
        }
        // f32 accumulation over 129 samples: relative error around 1e-7
        // to 1e-5, never f64-tiny and never catastrophic.
        assert!(worst > 1e-9, "worst {worst} suspiciously exact");
        assert!(worst < 1e-4, "worst {worst} too large");
    }

    #[test]
    fn cover_config_spans_the_work() {
        let cfg = LaunchConfig::cover(1000);
        assert!(cfg.total_threads() >= 1000);
        let cfg = LaunchConfig::cover(0);
        assert!(cfg.total_threads() >= 1);
    }

    /// Deterministic pseudo-partials for fold tests: varied magnitudes,
    /// no RNG.
    fn fold_fixture(ions: usize, bins: usize) -> Vec<Vec<f64>> {
        (0..ions)
            .map(|i| {
                (0..bins)
                    .map(|b| ((i * 31 + b * 7 + 1) as f64).sin().abs() * 10f64.powi(i as i32 % 5))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn weighted_fold_matches_serial_sum_bitwise() {
        let data = fold_fixture(9, 97);
        let views: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let weights: Vec<f64> = (0..9).map(|i| 0.25 + i as f64 * 0.5).collect();
        let kernel = WeightedFoldKernel {
            partials: &views,
            weights: &weights,
        };
        let mut out = vec![f64::NAN; 97];
        let ops = kernel.execute(LaunchConfig::cover(97), &mut out);
        assert_eq!(ops, 9 * 97);
        for (b, &got) in out.iter().enumerate() {
            let mut acc = 0.0;
            for (p, &w) in data.iter().zip(&weights) {
                acc += w * p[b];
            }
            assert_eq!(got.to_bits(), acc.to_bits(), "bin {b}");
        }
    }

    #[test]
    fn weighted_fold_unit_weights_equal_unweighted_sum_bitwise() {
        // `1.0 * x` is an IEEE identity, so unit weights must reproduce
        // the plain ascending-ion sum exactly — the tolerance-zero
        // parity contract of the delta layer.
        let data = fold_fixture(6, 33);
        let views: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let weights = vec![1.0; 6];
        let kernel = WeightedFoldKernel {
            partials: &views,
            weights: &weights,
        };
        let mut out = vec![0.0; 33];
        kernel.execute(LaunchConfig::new(1, 1), &mut out);
        for (b, &got) in out.iter().enumerate() {
            let mut acc = 0.0;
            for p in &data {
                acc += p[b];
            }
            assert_eq!(got.to_bits(), acc.to_bits(), "bin {b}");
        }
    }

    #[test]
    fn weighted_fold_is_launch_geometry_invariant() {
        // Bins are independent and each accumulates in fixed ion order,
        // so any grid/block shape gives bitwise-identical output.
        let data = fold_fixture(5, 61);
        let views: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let weights = vec![1.0, 0.5, 2.0, 0.0, 3.5];
        let kernel = WeightedFoldKernel {
            partials: &views,
            weights: &weights,
        };
        let mut reference = vec![0.0; 61];
        kernel.execute(LaunchConfig::new(1, 1), &mut reference);
        for cfg in [
            LaunchConfig::new(1, 61),
            LaunchConfig::new(4, 16),
            LaunchConfig::cover(61),
            LaunchConfig::new(61, 61),
        ] {
            let mut out = vec![f64::NAN; 61];
            kernel.execute(cfg, &mut out);
            for (b, (&got, &want)) in out.iter().zip(&reference).enumerate() {
                assert_eq!(got.to_bits(), want.to_bits(), "bin {b} cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn weighted_fold_empty_partials_zero_the_output() {
        let kernel = WeightedFoldKernel {
            partials: &[],
            weights: &[],
        };
        let mut out = vec![f64::NAN; 8];
        let ops = kernel.execute(LaunchConfig::cover(8), &mut out);
        assert_eq!(ops, 0);
        assert!(out.iter().all(|&v| v == 0.0), "stale bits must be zeroed");
    }
}
