//! Seeded, deterministic fault injection for the simulated devices.
//!
//! Real accelerator fleets lose devices: kernel launches are refused,
//! copy-backs error, kernels wedge, whole cards fall off the bus. The
//! hybrid runtime above this crate has to degrade gracefully through
//! retry → reassign → CPU fallback, and that ladder can only be tested
//! if the device model can *produce* those failures on demand. A
//! [`FaultPlan`] is a reproducible schedule of such failures for one
//! device: faults fire either at chosen per-operation indices (exact
//! replay of a specific scenario) or probabilistically from a seeded
//! [`desim::SimRng`] (chaos sweeps), never from wall-clock entropy.
//!
//! The plan is attached at device bring-up
//! ([`crate::SimGpu::with_faults`]); the runtime above consults the
//! device's [`FaultInjector`] at its three fault points:
//!
//! * [`FaultInjector::check_launch`] before submitting a kernel,
//! * [`FaultInjector::fire_kernel`] inside the kernel body (panics or
//!   stalls there, where a real wedged kernel would),
//! * [`FaultInjector::check_dma`] when settling the copy-back.
//!
//! [`FaultKind::DeviceLost`] is *sticky*: once fired, every subsequent
//! check on the device fails, modeling a card gone from the bus until
//! process restart.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use desim::SimRng;

/// The operation classes a [`FaultPlan`] can target. Indexed triggers
/// count per class (the 3rd `Dma` is independent of how many launches
/// happened), which keeps handwritten schedules readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Kernel submission.
    Launch,
    /// Kernel body execution.
    Kernel,
    /// D2H copy-back / settle.
    Dma,
}

/// What failure fires when a trigger matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The launch is refused (a `cudaErrorLaunchFailure` at submit).
    LaunchError,
    /// The copy-back fails; the kernel's result is unusable.
    DmaError,
    /// The kernel body panics mid-execution.
    KernelPanic,
    /// The kernel wedges for `millis` before completing normally — long
    /// enough to trip a watchdog deadline, short enough to terminate.
    Stall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Sticky whole-device loss: this and every later operation fails.
    DeviceLost,
}

/// Typed failure of one device operation, surfaced to the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceFault {
    /// The kernel launch was refused (transient).
    LaunchFailed,
    /// The copy-back failed (transient).
    DmaFailed,
    /// The device is gone (sticky; no retry on this device can help).
    Lost,
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceFault::LaunchFailed => write!(f, "kernel launch failed"),
            DeviceFault::DmaFailed => write!(f, "DMA copy-back failed"),
            DeviceFault::Lost => write!(f, "device lost"),
        }
    }
}

impl std::error::Error for DeviceFault {}

/// A reproducible fault schedule for one device. [`Default`] is the
/// empty plan (a healthy device); builders add indexed triggers and
/// probabilistic rates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    launch_rate: f64,
    panic_rate: f64,
    stall_rate: f64,
    stall_millis: u64,
    dma_rate: f64,
    /// Exact triggers: fire `kind` when the per-class counter of `op`
    /// reaches the given index.
    at: Vec<(FaultOp, u64, FaultKind)>,
    /// Sticky device loss once the *total* operation counter (all
    /// classes) reaches this index.
    lose_at: Option<u64>,
}

impl FaultPlan {
    /// An empty plan drawing probabilistic faults from `seed`.
    #[must_use]
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Probability that any one launch is refused.
    #[must_use]
    pub fn launch_error_rate(mut self, rate: f64) -> FaultPlan {
        self.launch_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Probability that any one kernel body panics.
    #[must_use]
    pub fn kernel_panic_rate(mut self, rate: f64) -> FaultPlan {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Probability that any one kernel stalls for `millis` first.
    #[must_use]
    pub fn stall_rate(mut self, rate: f64, millis: u64) -> FaultPlan {
        self.stall_rate = rate.clamp(0.0, 1.0);
        self.stall_millis = millis;
        self
    }

    /// Probability that any one copy-back fails.
    #[must_use]
    pub fn dma_error_rate(mut self, rate: f64) -> FaultPlan {
        self.dma_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fire `kind` exactly when operation class `op` reaches `index`
    /// (0-based, counted per class on the device).
    #[must_use]
    pub fn fire_at(mut self, op: FaultOp, index: u64, kind: FaultKind) -> FaultPlan {
        self.at.push((op, index, kind));
        self
    }

    /// Sticky whole-device loss at total operation `index` (all classes
    /// combined — "the card fell off the bus mid-run").
    #[must_use]
    pub fn lose_device_at(mut self, index: u64) -> FaultPlan {
        self.lose_at = Some(index);
        self
    }

    /// Whether this plan can ever fire anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.launch_rate == 0.0
            && self.panic_rate == 0.0
            && self.stall_rate == 0.0
            && self.dma_rate == 0.0
            && self.at.is_empty()
            && self.lose_at.is_none()
    }
}

/// Monotonic injected-fault counters of one device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Launches refused.
    pub launch_errors: u64,
    /// Copy-backs failed.
    pub dma_errors: u64,
    /// Kernel bodies panicked.
    pub kernel_panics: u64,
    /// Kernels stalled (but completed).
    pub stalls: u64,
    /// Whether the device is (stickily) lost.
    pub lost: bool,
}

#[derive(Debug)]
struct Schedule {
    plan: FaultPlan,
    rng: SimRng,
    /// Total operations across classes (drives `lose_at`).
    ops: u64,
    /// Per-class counters (drive indexed triggers).
    launches: u64,
    kernels: u64,
    dmas: u64,
}

#[derive(Debug)]
struct Shared {
    /// `None` for a fault-free device: every check is a branch on
    /// `enabled`, no lock.
    schedule: Option<Mutex<Schedule>>,
    lost: AtomicBool,
    launch_errors: AtomicU64,
    dma_errors: AtomicU64,
    kernel_panics: AtomicU64,
    stalls: AtomicU64,
}

/// The per-device fault oracle: cheap to clone (shared state), safe to
/// move into kernel closures. Fault-free devices carry an inert
/// injector whose checks cost one branch.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    shared: Arc<Shared>,
}

impl FaultInjector {
    /// An injector executing `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let schedule = if plan.is_empty() {
            None
        } else {
            let rng = SimRng::seed_from_u64(plan.seed);
            Some(Mutex::new(Schedule {
                plan,
                rng,
                ops: 0,
                launches: 0,
                kernels: 0,
                dmas: 0,
            }))
        };
        FaultInjector {
            shared: Arc::new(Shared {
                schedule,
                lost: AtomicBool::new(false),
                launch_errors: AtomicU64::new(0),
                dma_errors: AtomicU64::new(0),
                kernel_panics: AtomicU64::new(0),
                stalls: AtomicU64::new(0),
            }),
        }
    }

    /// The inert injector of a fault-free device.
    #[must_use]
    pub fn none() -> FaultInjector {
        FaultInjector::new(FaultPlan::default())
    }

    /// Deterministically mark the device lost *now*, regardless of any
    /// scheduled plan — the chaos hook for tests and benches that need
    /// a loss at an exact point in their own control flow rather than
    /// at an operation index. Loss is sticky, exactly as if a
    /// [`FaultPlan::lose_device_at`] trigger had fired.
    pub fn force_lose(&self) {
        self.mark_lost();
    }

    /// Whether the device has been (stickily) lost.
    #[must_use]
    pub fn is_lost(&self) -> bool {
        self.shared.lost.load(Ordering::Acquire)
    }

    /// Injected-fault counters so far.
    #[must_use]
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            launch_errors: self.shared.launch_errors.load(Ordering::Relaxed),
            dma_errors: self.shared.dma_errors.load(Ordering::Relaxed),
            kernel_panics: self.shared.kernel_panics.load(Ordering::Relaxed),
            stalls: self.shared.stalls.load(Ordering::Relaxed),
            lost: self.is_lost(),
        }
    }

    /// Advance the schedule one `op` and return the fault that fires,
    /// if any. Exactly one RNG draw per decision keeps the schedule a
    /// pure function of the seed and the operation sequence.
    fn decide(&self, op: FaultOp) -> Option<FaultKind> {
        let schedule = self.shared.schedule.as_ref()?;
        let mut s = schedule.lock().unwrap_or_else(PoisonError::into_inner);
        let total = s.ops;
        s.ops += 1;
        let class_index = match op {
            FaultOp::Launch => {
                let i = s.launches;
                s.launches += 1;
                i
            }
            FaultOp::Kernel => {
                let i = s.kernels;
                s.kernels += 1;
                i
            }
            FaultOp::Dma => {
                let i = s.dmas;
                s.dmas += 1;
                i
            }
        };
        if s.plan.lose_at.is_some_and(|at| total >= at) {
            return Some(FaultKind::DeviceLost);
        }
        if let Some(&(_, _, kind)) = s
            .plan
            .at
            .iter()
            .find(|&&(o, i, _)| o == op && i == class_index)
        {
            return Some(kind);
        }
        let draw = s.rng.next_f64();
        match op {
            FaultOp::Launch if draw < s.plan.launch_rate => Some(FaultKind::LaunchError),
            FaultOp::Kernel if draw < s.plan.panic_rate => Some(FaultKind::KernelPanic),
            FaultOp::Kernel if draw < s.plan.panic_rate + s.plan.stall_rate => {
                Some(FaultKind::Stall {
                    millis: s.plan.stall_millis,
                })
            }
            FaultOp::Dma if draw < s.plan.dma_rate => Some(FaultKind::DmaError),
            _ => None,
        }
    }

    fn mark_lost(&self) {
        self.shared.lost.store(true, Ordering::Release);
    }

    /// Consult the oracle before submitting a kernel.
    ///
    /// # Errors
    /// [`DeviceFault::Lost`] on a lost device, [`DeviceFault::LaunchFailed`]
    /// when the plan refuses this launch.
    pub fn check_launch(&self) -> Result<(), DeviceFault> {
        if self.is_lost() {
            return Err(DeviceFault::Lost);
        }
        match self.decide(FaultOp::Launch) {
            None => Ok(()),
            Some(FaultKind::DeviceLost) => {
                self.mark_lost();
                Err(DeviceFault::Lost)
            }
            Some(_) => {
                self.shared.launch_errors.fetch_add(1, Ordering::Relaxed);
                Err(DeviceFault::LaunchFailed)
            }
        }
    }

    /// Consult the oracle inside the kernel body. Stalls sleep here;
    /// panics fire here (to be caught by the runtime's `catch_unwind`).
    ///
    /// # Panics
    /// Panics when the plan injects a kernel panic or the device is
    /// lost — that is the injected failure itself, not a bug.
    pub fn fire_kernel(&self) {
        if self.is_lost() {
            self.shared.kernel_panics.fetch_add(1, Ordering::Relaxed);
            panic!("injected fault: kernel on lost device");
        }
        match self.decide(FaultOp::Kernel) {
            None => {}
            Some(FaultKind::Stall { millis }) => {
                self.shared.stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(millis));
            }
            Some(FaultKind::DeviceLost) => {
                self.mark_lost();
                self.shared.kernel_panics.fetch_add(1, Ordering::Relaxed);
                panic!("injected fault: device lost during kernel");
            }
            Some(_) => {
                self.shared.kernel_panics.fetch_add(1, Ordering::Relaxed);
                panic!("injected fault: kernel panic");
            }
        }
    }

    /// Consult the oracle when settling a copy-back.
    ///
    /// # Errors
    /// [`DeviceFault::Lost`] on a lost device, [`DeviceFault::DmaFailed`]
    /// when the plan fails this copy.
    pub fn check_dma(&self) -> Result<(), DeviceFault> {
        if self.is_lost() {
            return Err(DeviceFault::Lost);
        }
        match self.decide(FaultOp::Dma) {
            None => Ok(()),
            Some(FaultKind::DeviceLost) => {
                self.mark_lost();
                Err(DeviceFault::Lost)
            }
            Some(_) => {
                self.shared.dma_errors.fetch_add(1, Ordering::Relaxed);
                Err(DeviceFault::DmaFailed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let inj = FaultInjector::none();
        for _ in 0..100 {
            assert!(inj.check_launch().is_ok());
            inj.fire_kernel();
            assert!(inj.check_dma().is_ok());
        }
        assert_eq!(inj.counters(), FaultCounters::default());
    }

    #[test]
    fn force_lose_is_sticky_even_without_a_plan() {
        let inj = FaultInjector::none();
        assert!(inj.check_launch().is_ok());
        inj.force_lose();
        assert!(inj.is_lost());
        assert_eq!(inj.check_launch(), Err(DeviceFault::Lost));
        assert_eq!(inj.check_dma(), Err(DeviceFault::Lost));
    }

    #[test]
    fn indexed_launch_trigger_fires_exactly_once() {
        let plan = FaultPlan::default().fire_at(FaultOp::Launch, 2, FaultKind::LaunchError);
        let inj = FaultInjector::new(plan);
        let results: Vec<bool> = (0..5).map(|_| inj.check_launch().is_ok()).collect();
        assert_eq!(results, vec![true, true, false, true, true]);
        assert_eq!(inj.counters().launch_errors, 1);
    }

    #[test]
    fn device_loss_is_sticky() {
        let plan = FaultPlan::default().lose_device_at(3);
        let inj = FaultInjector::new(plan);
        assert!(inj.check_launch().is_ok());
        assert!(inj.check_dma().is_ok());
        assert!(inj.check_launch().is_ok());
        // Total op 3: lost, and every later check keeps failing.
        assert_eq!(inj.check_launch(), Err(DeviceFault::Lost));
        assert!(inj.is_lost());
        assert_eq!(inj.check_dma(), Err(DeviceFault::Lost));
        assert_eq!(inj.check_launch(), Err(DeviceFault::Lost));
    }

    #[test]
    fn injected_kernel_panic_is_a_panic() {
        let plan = FaultPlan::default().fire_at(FaultOp::Kernel, 0, FaultKind::KernelPanic);
        let inj = FaultInjector::new(plan);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.fire_kernel()));
        assert!(caught.is_err());
        assert_eq!(inj.counters().kernel_panics, 1);
        // The panic was transient, not sticky.
        inj.fire_kernel();
        assert!(!inj.is_lost());
    }

    #[test]
    fn stall_delays_but_completes() {
        let plan =
            FaultPlan::default().fire_at(FaultOp::Kernel, 0, FaultKind::Stall { millis: 30 });
        let inj = FaultInjector::new(plan);
        let t0 = std::time::Instant::now();
        inj.fire_kernel();
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(inj.counters().stalls, 1);
    }

    #[test]
    fn seeded_probabilistic_schedule_is_reproducible() {
        let run = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(FaultPlan::seeded(seed).launch_error_rate(0.3));
            (0..64).map(|_| inj.check_launch().is_ok()).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
        let fails = run(7).iter().filter(|ok| !**ok).count();
        assert!(fails > 5 && fails < 30, "rate roughly honored: {fails}");
    }

    #[test]
    fn rates_apply_per_class() {
        let inj = FaultInjector::new(FaultPlan::seeded(1).dma_error_rate(1.0));
        assert!(inj.check_launch().is_ok(), "launch class unaffected");
        assert_eq!(inj.check_dma(), Err(DeviceFault::DmaFailed));
    }
}
