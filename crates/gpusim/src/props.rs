//! Device property sheets.

/// GPU micro-architecture generations the queueing model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Fermi: "application-level context switching is necessary ...
    /// queued tasks are performed serially in their submission orders"
    /// (paper §III-A). One task in flight per device.
    Fermi,
    /// Kepler: "the Hyper-Q technique can allow for up to 32
    /// simultaneous connections from multiple MPI processes". Several
    /// tasks may be active concurrently.
    Kepler,
}

/// Static properties of a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProps {
    /// Marketing name, for logs and reports.
    pub name: &'static str,
    /// Architecture generation (controls queue concurrency).
    pub architecture: Architecture,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak double-precision throughput in GFLOP/s.
    pub dp_gflops: f64,
    /// On-board memory in bytes.
    pub memory_bytes: u64,
    /// Host link bandwidth in bytes/s (PCIe 2.0 x16 ≈ 8 GB/s
    /// theoretical, ~6 GB/s effective).
    pub pcie_bytes_per_sec: f64,
    /// Number of simultaneously active tasks the device accepts
    /// (1 on Fermi; >1 with Hyper-Q on Kepler).
    pub concurrent_tasks: u32,
    /// Dedicated DMA copy engines. Tesla-class Fermi and Kepler cards
    /// both carry two, which is what lets a D2H copy-back overlap the
    /// next kernel launch even when `concurrent_tasks` is 1.
    pub copy_engines: u32,
}

impl DeviceProps {
    /// The paper's device: NVIDIA Tesla C2075 — Fermi, 448 cores
    /// (14 SMs × 32), 1.15 GHz, 515 DP GFLOP/s, 6 GB GDDR5, PCIe 2.0.
    #[must_use]
    pub fn tesla_c2075() -> DeviceProps {
        DeviceProps {
            name: "Tesla C2075",
            architecture: Architecture::Fermi,
            sm_count: 14,
            cores_per_sm: 32,
            clock_ghz: 1.15,
            dp_gflops: 515.0,
            memory_bytes: 6 * 1024 * 1024 * 1024,
            pcie_bytes_per_sec: 6.0e9,
            concurrent_tasks: 1,
            copy_engines: 2,
        }
    }

    /// A Kepler-generation card with Hyper-Q, for the queueing-discipline
    /// ablation (paper §III-A mentions "for some Kepler GPUs, the count
    /// of active task may be more than one").
    #[must_use]
    pub fn tesla_k20() -> DeviceProps {
        DeviceProps {
            name: "Tesla K20",
            architecture: Architecture::Kepler,
            sm_count: 13,
            cores_per_sm: 192,
            clock_ghz: 0.706,
            dp_gflops: 1170.0,
            memory_bytes: 5 * 1024 * 1024 * 1024,
            pcie_bytes_per_sec: 6.0e9,
            concurrent_tasks: 32,
            copy_engines: 2,
        }
    }

    /// Total CUDA core count.
    #[must_use]
    pub fn total_cores(&self) -> u32 {
        self.sm_count * self.cores_per_sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2075_matches_paper_specs() {
        let d = DeviceProps::tesla_c2075();
        assert_eq!(d.total_cores(), 448);
        assert_eq!(d.architecture, Architecture::Fermi);
        assert_eq!(d.concurrent_tasks, 1);
        // One task at a time, but two DMA engines: copy-back can still
        // overlap the next kernel.
        assert_eq!(d.copy_engines, 2);
        assert!((d.dp_gflops - 515.0).abs() < 1.0);
        assert_eq!(d.memory_bytes, 6 * 1024 * 1024 * 1024);
    }

    #[test]
    fn k20_has_hyper_q() {
        let d = DeviceProps::tesla_k20();
        assert_eq!(d.architecture, Architecture::Kepler);
        assert!(d.concurrent_tasks > 1);
        assert!(d.dp_gflops > DeviceProps::tesla_c2075().dp_gflops);
    }
}
