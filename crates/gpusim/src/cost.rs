//! The device timing model.
//!
//! The paper's performance results hinge on the *economics* of small
//! tasks: a fixed kernel-launch cost plus PCIe transfer time can dwarf
//! the compute of a single small integral, which is why the paper
//! batches an ion's tens of thousands of integrals into one task. This
//! module prices each component so the discrete-event replica can
//! reproduce those trade-offs.

use crate::props::DeviceProps;

/// Virtual-time prices for device operations.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed cost of one kernel launch (driver + dispatch), seconds.
    pub kernel_launch_s: f64,
    /// Fixed per-transfer latency (DMA setup), seconds.
    pub transfer_latency_s: f64,
    /// Host link bandwidth, bytes/second.
    pub pcie_bytes_per_sec: f64,
    /// Integrand evaluations per second the device sustains on this
    /// workload (derived from peak FLOP/s and an efficiency factor —
    /// real codes reach a fraction of peak).
    pub evals_per_sec: f64,
    /// Host-side dispatch/synchronization overhead charged per task on
    /// the *shared* host path (scheduler + synchronous blocking), in
    /// seconds. This is the component that does not scale with more
    /// GPUs.
    pub host_overhead_s: f64,
}

/// Measured device-side work of one completed task, split into the
/// components placement cares about: kernel time (launch + compute),
/// DMA time (both transfers), and how long the submission waited
/// behind earlier work on the device's virtual clock. This is the
/// record that flows back through task settle into the scheduler's
/// online cost blend — in-situ assessment instead of a-priori
/// estimation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MeasuredCost {
    /// Kernel launch + compute seconds.
    pub kernel_s: f64,
    /// H2D + D2H transfer seconds.
    pub dma_s: f64,
    /// Virtual seconds the submission spent queued behind earlier
    /// charges on the same device (0 for an idle device).
    pub queue_wait_s: f64,
}

impl MeasuredCost {
    /// Device-side service seconds (kernel + DMA), excluding queue
    /// wait — the quantity per-unit cost rates are learned from.
    #[must_use]
    pub fn device_s(&self) -> f64 {
        self.kernel_s + self.dma_s
    }
}

/// FLOPs one RRC integrand evaluation costs (exp + sqrt + arithmetic);
/// used to derive `evals_per_sec` from a device's peak GFLOP/s.
pub const FLOPS_PER_EVAL: f64 = 40.0;

/// Fraction of peak double-precision throughput sustained by the
/// memory- and divergence-bound integration kernel.
pub const KERNEL_EFFICIENCY: f64 = 0.10;

impl CostModel {
    /// Derive a cost model from device properties with typical CUDA-era
    /// constants: ~10 µs launch, ~10 µs DMA setup.
    #[must_use]
    pub fn from_props(props: &DeviceProps) -> CostModel {
        CostModel {
            kernel_launch_s: 10e-6,
            transfer_latency_s: 10e-6,
            pcie_bytes_per_sec: props.pcie_bytes_per_sec,
            evals_per_sec: props.dp_gflops * 1e9 * KERNEL_EFFICIENCY / FLOPS_PER_EVAL,
            host_overhead_s: 50e-6,
        }
    }

    /// Time to move `bytes` across the host link.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.transfer_latency_s + bytes as f64 / self.pcie_bytes_per_sec
    }

    /// Time for the device to perform `evals` integrand evaluations.
    #[must_use]
    pub fn compute_time(&self, evals: u64) -> f64 {
        evals as f64 / self.evals_per_sec
    }

    /// End-to-end device-side time of one task: launch + H2D + kernel +
    /// D2H (the Fermi synchronous sequence of paper §III).
    #[must_use]
    pub fn task_time(&self, evals: u64, bytes_in: u64, bytes_out: u64) -> f64 {
        self.kernel_launch_s
            + self.transfer_time(bytes_in)
            + self.compute_time(evals)
            + self.transfer_time(bytes_out)
    }

    /// [`CostModel::task_time`] split into its kernel/DMA components
    /// (queue wait is filled in by the device, which knows its virtual
    /// clock — see `SimGpu::charge_task_measured`).
    #[must_use]
    pub fn task_cost_measured(&self, evals: u64, bytes_in: u64, bytes_out: u64) -> MeasuredCost {
        MeasuredCost {
            kernel_s: self.kernel_launch_s + self.compute_time(evals),
            dma_s: self.transfer_time(bytes_in) + self.transfer_time(bytes_out),
            queue_wait_s: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::from_props(&DeviceProps::tesla_c2075())
    }

    #[test]
    fn transfer_time_increases_with_bytes() {
        let m = model();
        assert!(m.transfer_time(1 << 20) > m.transfer_time(1 << 10));
        // Latency floor.
        assert!(m.transfer_time(0) >= m.transfer_latency_s);
    }

    #[test]
    fn compute_time_is_linear_in_evals() {
        let m = model();
        let one = m.compute_time(1_000_000);
        let two = m.compute_time(2_000_000);
        assert!((two / one - 2.0).abs() < 1e-12);
    }

    #[test]
    fn small_tasks_are_overhead_dominated() {
        // The core premise of the paper: a single 64-panel Simpson bin
        // (129 evals) is launch/transfer dominated, a whole ion task
        // (hundreds of thousands of evals) is compute dominated.
        let m = model();
        let single_bin = m.task_time(129, 64, 8);
        let overhead = m.kernel_launch_s + 2.0 * m.transfer_latency_s;
        assert!(overhead / single_bin > 0.5, "overhead should dominate");

        let ion_task = m.task_time(500_000 * 129, 1024, 400_000);
        let compute = m.compute_time(500_000 * 129);
        assert!(compute / ion_task > 0.9, "compute should dominate");
    }

    #[test]
    fn c2075_sustains_about_a_gigaeval() {
        let m = model();
        // 515 GFLOP/s * 0.10 / 40 ≈ 1.3e9 evals/s.
        assert!(m.evals_per_sec > 1e9 && m.evals_per_sec < 2e9);
    }

    #[test]
    fn task_time_is_sum_of_parts() {
        let m = model();
        let t = m.task_time(1000, 100, 200);
        let expect =
            m.kernel_launch_s + m.transfer_time(100) + m.compute_time(1000) + m.transfer_time(200);
        assert!((t - expect).abs() < 1e-15);
    }
}
