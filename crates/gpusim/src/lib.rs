//! Software GPU device model.
//!
//! We have no CUDA hardware in this environment, so the Tesla C2075s of
//! the paper are replaced by a software device model with two faces
//! (see `DESIGN.md`, substitution table):
//!
//! * a **numerical face** — [`simt`] executes kernels (notably the RRC
//!   bin-integration kernel, paper Algorithm 2) *for real* on host
//!   threads, with CUDA-style grid/block/thread indexing and the same
//!   bins-per-thread partitioning, so results and accuracy experiments
//!   are genuine computations;
//! * a **timing face** — [`cost`] charges virtual time for kernel
//!   launches, PCIe transfers and compute, parameterized by
//!   [`DeviceProps`] (Fermi C2075 and Kepler presets). The
//!   discrete-event replica uses only this face.
//!
//! [`runtime`] provides real-threaded device instances: one worker per
//! GPU draining a FIFO command queue serially (Fermi application-level
//! context switching) or with a small concurrency window (Kepler
//! Hyper-Q), exactly the two queueing disciplines the paper discusses.
//! [`stream`] adds CUDA-style ordered streams and events on top.
//! [`memory`] models the 6 GB on-board memory with an explicit arena so
//! out-of-memory behaves like `cudaMalloc` failure rather than host
//! swapping.

pub mod cost;
pub mod fault;
pub mod memory;
pub mod props;
pub mod runtime;
pub mod simt;
pub mod stream;

pub use cost::{CostModel, MeasuredCost};
pub use fault::{DeviceFault, FaultCounters, FaultInjector, FaultKind, FaultOp, FaultPlan};
pub use memory::{DeviceMemory, DevicePtr, OutOfDeviceMemory};
pub use props::{Architecture, DeviceProps};
pub use runtime::{DeviceCounters, SimGpu, TaskError, TaskHandle};
pub use simt::{
    launch, BinIntegrationKernel, DeviceRule, FusedBinKernel, LaunchConfig, Precision, ThreadCtx,
    WeightedFoldKernel,
};
pub use stream::{Stream, StreamEvent};
