//! On-board device memory arena.
//!
//! A deliberately simple first-fit allocator over a fixed capacity: the
//! point is to make device memory *finite* (allocating beyond 6 GB fails
//! like `cudaMalloc` does) and to account the bytes that tasks move, not
//! to win allocator benchmarks.

use std::collections::BTreeMap;
use std::fmt;

/// Handle to a device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevicePtr {
    offset: u64,
    /// Size of the allocation in bytes.
    pub bytes: u64,
}

/// Allocation failure: the device is out of memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently free (possibly fragmented).
    pub free: u64,
}

impl fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes, {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// A fixed-capacity device memory arena with first-fit allocation.
#[derive(Debug)]
pub struct DeviceMemory {
    capacity: u64,
    /// Allocated ranges: offset -> size.
    allocations: BTreeMap<u64, u64>,
    used: u64,
    peak: u64,
}

impl DeviceMemory {
    /// An arena of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: u64) -> DeviceMemory {
        DeviceMemory {
            capacity,
            allocations: BTreeMap::new(),
            used: 0,
            peak: 0,
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark of [`DeviceMemory::used`].
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Allocate `bytes` (zero-byte requests round up to one byte so
    /// every pointer is distinct).
    ///
    /// # Errors
    /// [`OutOfDeviceMemory`] if no gap fits the request.
    pub fn alloc(&mut self, bytes: u64) -> Result<DevicePtr, OutOfDeviceMemory> {
        let bytes = bytes.max(1);
        // First fit: scan gaps between allocations.
        let mut cursor = 0u64;
        let mut chosen: Option<u64> = None;
        for (&offset, &size) in &self.allocations {
            if offset - cursor >= bytes {
                chosen = Some(cursor);
                break;
            }
            cursor = offset + size;
        }
        if chosen.is_none() && self.capacity - cursor >= bytes {
            chosen = Some(cursor);
        }
        match chosen {
            Some(offset) => {
                self.allocations.insert(offset, bytes);
                self.used += bytes;
                self.peak = self.peak.max(self.used);
                Ok(DevicePtr { offset, bytes })
            }
            None => Err(OutOfDeviceMemory {
                requested: bytes,
                free: self.capacity - self.used,
            }),
        }
    }

    /// Free an allocation. Double frees panic (a debug aid: in CUDA they
    /// are undefined behaviour).
    ///
    /// # Panics
    /// Panics if `ptr` is not currently allocated.
    pub fn free(&mut self, ptr: DevicePtr) {
        let size = self
            .allocations
            .remove(&ptr.offset)
            .expect("free of unallocated device pointer");
        assert_eq!(size, ptr.bytes, "free with mismatched size");
        self.used -= size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut mem = DeviceMemory::new(1000);
        let a = mem.alloc(100).unwrap();
        let b = mem.alloc(200).unwrap();
        assert_eq!(mem.used(), 300);
        mem.free(a);
        assert_eq!(mem.used(), 200);
        mem.free(b);
        assert_eq!(mem.used(), 0);
        assert_eq!(mem.peak(), 300);
    }

    #[test]
    fn exhaustion_fails_cleanly() {
        let mut mem = DeviceMemory::new(100);
        let _a = mem.alloc(80).unwrap();
        let err = mem.alloc(50).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.free, 20);
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn freed_space_is_reused() {
        let mut mem = DeviceMemory::new(100);
        let a = mem.alloc(60).unwrap();
        let _b = mem.alloc(40).unwrap();
        assert!(mem.alloc(10).is_err());
        mem.free(a);
        // First-fit places the new allocation in the freed hole.
        let c = mem.alloc(50).unwrap();
        assert!(c.offset < 60);
    }

    #[test]
    fn fragmentation_can_block_large_requests() {
        let mut mem = DeviceMemory::new(100);
        let a = mem.alloc(30).unwrap();
        let b = mem.alloc(30).unwrap();
        let _c = mem.alloc(30).unwrap();
        mem.free(a);
        mem.free(b);
        // 70 bytes free but the 30+30 hole is contiguous (adjacent), so
        // 60 fits; 65 does not (only 10 at the tail after c).
        assert!(mem.alloc(60).is_ok());
        assert!(mem.alloc(20).is_err());
    }

    #[test]
    #[should_panic(expected = "free of unallocated device pointer")]
    fn double_free_panics() {
        let mut mem = DeviceMemory::new(100);
        let a = mem.alloc(10).unwrap();
        mem.free(a);
        mem.free(a);
    }

    #[test]
    fn zero_byte_allocations_are_distinct() {
        let mut mem = DeviceMemory::new(100);
        let a = mem.alloc(0).unwrap();
        let b = mem.alloc(0).unwrap();
        assert_ne!(a, b);
    }
}
