//! Property tests: the SIMT kernel must agree with the host quadrature
//! library for arbitrary launch geometries and integrand families —
//! the "GPU" is a different execution of the same mathematics.

use gpu_sim::{BinIntegrationKernel, DeviceRule, LaunchConfig, Precision};
use proptest::prelude::*;

proptest! {
    #[test]
    fn kernel_equals_host_simpson(
        grid_dim in 1u32..6,
        block_dim in 1u32..65,
        n_bins in 1usize..80,
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
    ) {
        let f = move |x: f64| (a * x).sin() + b * x * x + 1.5;
        let bins: Vec<(f64, f64)> = (0..n_bins)
            .map(|i| (i as f64 * 0.25, (i + 1) as f64 * 0.25))
            .collect();
        let kernel = BinIntegrationKernel {
            integrands: std::slice::from_ref(&f),
            bins: &bins,
            precision: Precision::Double,
            windows: None,
            rule: DeviceRule::Simpson { panels: 16 },
        };
        let mut emi = vec![0.0; n_bins];
        kernel.execute(LaunchConfig::new(grid_dim, block_dim), &mut emi);
        for (i, &(lo, hi)) in bins.iter().enumerate() {
            let host = quadrature::simpson(f, lo, hi, 16).value;
            prop_assert_eq!(emi[i], host, "bin {}", i);
        }
    }

    #[test]
    fn kernel_work_count_is_exact(
        n_bins in 1usize..50,
        levels in 1usize..6,
        panels in 1usize..40,
    ) {
        let fs: Vec<_> = (0..levels)
            .map(|l| move |x: f64| x + l as f64)
            .collect();
        let bins: Vec<(f64, f64)> = (0..n_bins)
            .map(|i| (i as f64, i as f64 + 1.0))
            .collect();
        let kernel = BinIntegrationKernel {
            integrands: &fs,
            bins: &bins,
            precision: Precision::Double,
            windows: None,
            rule: DeviceRule::Simpson { panels },
        };
        let mut emi = vec![0.0; n_bins];
        let evals = kernel.execute(LaunchConfig::cover(n_bins), &mut emi);
        prop_assert_eq!(
            evals,
            (2 * panels as u64 + 1) * n_bins as u64 * levels as u64
        );
    }

    #[test]
    fn windows_never_create_negative_work(
        n_bins in 1usize..40,
        threshold in 0.0f64..10.0,
        width in 0.1f64..10.0,
    ) {
        let f = |_x: f64| 1.0;
        let bins: Vec<(f64, f64)> = (0..n_bins)
            .map(|i| (i as f64 * 0.5, (i + 1) as f64 * 0.5))
            .collect();
        let windows = vec![(threshold, threshold + width)];
        let kernel = BinIntegrationKernel {
            integrands: std::slice::from_ref(&f),
            bins: &bins,
            precision: Precision::Double,
            windows: Some(&windows),
            rule: DeviceRule::Simpson { panels: 4 },
        };
        let mut emi = vec![0.0; n_bins];
        kernel.execute(LaunchConfig::cover(n_bins), &mut emi);
        // Integrating the constant 1 over clamped sub-bins: every value
        // in [0, bin width], total <= window width.
        for (i, &v) in emi.iter().enumerate() {
            prop_assert!(v >= 0.0 && v <= 0.5 + 1e-12, "bin {}: {}", i, v);
        }
        // The cutoff is a skip heuristic, not a clamp (bins that start
        // inside the window integrate to their own upper edge, exactly
        // like the CPU path), so the straddling bin may overshoot by up
        // to one bin width.
        let total: f64 = emi.iter().sum();
        prop_assert!(total <= width + 0.5 + 1e-9);
    }
}
