//! Property tests: the SIMT kernel must agree with the host quadrature
//! library for arbitrary launch geometries and integrand families —
//! the "GPU" is a different execution of the same mathematics.
//!
//! Deterministic seeded sweeps (`desim::rng`) stand in for an external
//! property-testing framework.

use desim::rng;
use gpu_sim::{BinIntegrationKernel, DeviceRule, FusedBinKernel, LaunchConfig, Precision};
use quadrature::FnSampler;

#[test]
fn kernel_equals_host_simpson() {
    let mut r = rng(0x51A71);
    for _ in 0..60 {
        let grid_dim = r.gen_range_usize(1..6) as u32;
        let block_dim = r.gen_range_usize(1..65) as u32;
        let n_bins = r.gen_range_usize(1..80);
        let a = r.gen_range(-2.0..2.0);
        let b = r.gen_range(-2.0..2.0);
        let f = move |x: f64| (a * x).sin() + b * x * x + 1.5;
        let bins: Vec<(f64, f64)> = (0..n_bins)
            .map(|i| (i as f64 * 0.25, (i + 1) as f64 * 0.25))
            .collect();
        let kernel = BinIntegrationKernel {
            integrands: std::slice::from_ref(&f),
            bins: &bins,
            precision: Precision::Double,
            windows: None,
            rule: DeviceRule::Simpson { panels: 16 },
        };
        let mut emi = vec![0.0; n_bins];
        kernel.execute(LaunchConfig::new(grid_dim, block_dim), &mut emi);
        for (i, &(lo, hi)) in bins.iter().enumerate() {
            let host = quadrature::simpson(f, lo, hi, 16).value;
            assert_eq!(emi[i], host, "bin {i}");
        }
    }
}

#[test]
fn kernel_work_count_is_exact() {
    let mut r = rng(0x3C0);
    for _ in 0..60 {
        let n_bins = r.gen_range_usize(1..50);
        let levels = r.gen_range_usize(1..6);
        let panels = r.gen_range_usize(1..40);
        let fs: Vec<_> = (0..levels).map(|l| move |x: f64| x + l as f64).collect();
        let bins: Vec<(f64, f64)> = (0..n_bins).map(|i| (i as f64, i as f64 + 1.0)).collect();
        let kernel = BinIntegrationKernel {
            integrands: &fs,
            bins: &bins,
            precision: Precision::Double,
            windows: None,
            rule: DeviceRule::Simpson { panels },
        };
        let mut emi = vec![0.0; n_bins];
        let evals = kernel.execute(LaunchConfig::cover(n_bins), &mut emi);
        assert_eq!(
            evals,
            (2 * panels as u64 + 1) * n_bins as u64 * levels as u64
        );
    }
}

#[test]
fn windows_never_create_negative_work() {
    let mut r = rng(0x3149D0);
    for _ in 0..60 {
        let n_bins = r.gen_range_usize(1..40);
        let threshold = r.gen_range(0.0..10.0);
        let width = r.gen_range(0.1..10.0);
        let f = |_x: f64| 1.0;
        let bins: Vec<(f64, f64)> = (0..n_bins)
            .map(|i| (i as f64 * 0.5, (i + 1) as f64 * 0.5))
            .collect();
        let windows = vec![(threshold, threshold + width)];
        let kernel = BinIntegrationKernel {
            integrands: std::slice::from_ref(&f),
            bins: &bins,
            precision: Precision::Double,
            windows: Some(&windows),
            rule: DeviceRule::Simpson { panels: 4 },
        };
        let mut emi = vec![0.0; n_bins];
        kernel.execute(LaunchConfig::cover(n_bins), &mut emi);
        // Integrating the constant 1 over clamped sub-bins: every value
        // in [0, bin width], total <= window width.
        for (i, &v) in emi.iter().enumerate() {
            assert!((0.0..=0.5 + 1e-12).contains(&v), "bin {i}: {v}");
        }
        // The cutoff is a skip heuristic, not a clamp (bins that start
        // inside the window integrate to their own upper edge, exactly
        // like the CPU path), so the straddling bin may overshoot by up
        // to one bin width.
        let total: f64 = emi.iter().sum();
        assert!(total <= width + 0.5 + 1e-9);
    }
}

/// Run both kernels on the same random task and return their outputs
/// and eval counts.
#[allow(clippy::type_complexity)]
fn run_pair(
    r: &mut desim::SimRng,
    precision: Precision,
    rule: DeviceRule,
) -> (Vec<f64>, u64, Vec<f64>, u64) {
    let grid_dim = r.gen_range_usize(1..5) as u32;
    let block_dim = r.gen_range_usize(1..33) as u32;
    let n_bins = r.gen_range_usize(1..70);
    let levels = r.gen_range_usize(1..4);
    let params: Vec<(f64, f64)> = (0..levels)
        .map(|_| (r.gen_range(-2.0..2.0), r.gen_range(0.2..2.0)))
        .collect();
    let fs: Vec<_> = params
        .iter()
        .map(|&(a, b)| move |x: f64| (a * x).cos() * (-b * x * 0.1).exp() + 2.0)
        .collect();
    let bins: Vec<(f64, f64)> = (0..n_bins)
        .map(|i| (i as f64 * 0.3, (i + 1) as f64 * 0.3))
        .collect();
    // Random per-level windows, sometimes clamping mid-bin.
    let windows: Vec<(f64, f64)> = (0..levels)
        .map(|_| {
            let t = r.gen_range(0.0..n_bins as f64 * 0.3);
            (t, t + r.gen_range(0.5..n_bins as f64 * 0.3 + 1.0))
        })
        .collect();
    let cfg = LaunchConfig::new(grid_dim, block_dim);
    let legacy = BinIntegrationKernel {
        integrands: &fs,
        bins: &bins,
        precision,
        windows: Some(&windows),
        rule,
    };
    let mut legacy_emi = vec![0.0; n_bins];
    let legacy_evals = legacy.execute(cfg, &mut legacy_emi);
    // FnSampler-wrapped closures take the per-node default batch path,
    // which the fused kernel must keep bitwise-identical to the legacy
    // kernel.
    let samplers: Vec<_> = fs.iter().copied().map(FnSampler).collect();
    let fused = FusedBinKernel {
        integrands: &samplers,
        bins: &bins,
        precision,
        windows: Some(&windows),
        rule,
        math: quadrature::MathMode::Exact,
    };
    // Poison the fused buffer: the fused kernel owns initialization.
    let mut fused_emi = vec![f64::NAN; n_bins];
    let fused_evals = fused.execute(cfg, &mut fused_emi);
    (legacy_emi, legacy_evals, fused_emi, fused_evals)
}

/// The fused kernel is bitwise identical to the legacy per-bin kernel in
/// f64, for every rule, and never does more integrand evaluations.
#[test]
fn fused_kernel_matches_legacy_bitwise_f64() {
    let mut r = rng(0xF05ED);
    for rule in [
        DeviceRule::Simpson { panels: 16 },
        DeviceRule::Romberg { k: 5 },
        DeviceRule::GaussLegendre { order: 8 },
    ] {
        for _ in 0..25 {
            let (legacy, legacy_evals, fused, fused_evals) =
                run_pair(&mut r, Precision::Double, rule);
            assert_eq!(legacy, fused, "{rule:?}");
            assert!(fused_evals <= legacy_evals, "{rule:?}");
        }
    }
}

/// Emulated-f32 behavior is preserved exactly: the fused kernel rounds
/// at the same points the legacy kernel does, so Single-precision
/// results are bitwise identical too (the Fig. 8 error scale depends on
/// this rounding sequence).
#[test]
fn fused_kernel_preserves_f32_behavior() {
    let mut r = rng(0xF32);
    for rule in [
        DeviceRule::Simpson { panels: 16 },
        DeviceRule::Romberg { k: 5 },
        DeviceRule::GaussLegendre { order: 8 },
    ] {
        for _ in 0..25 {
            let (legacy, _, fused, _) = run_pair(&mut r, Precision::Single, rule);
            assert_eq!(legacy, fused, "{rule:?}");
        }
    }
}

/// Fusion saves exactly one evaluation per shared interior edge of each
/// thread's contiguous in-window run (Simpson / Romberg; Gauss–Legendre
/// has no edge nodes to share).
#[test]
fn fused_kernel_saves_shared_edges() {
    let f = |x: f64| x * x + 1.0;
    let n_bins = 48;
    let bins: Vec<(f64, f64)> = (0..n_bins)
        .map(|i| (i as f64 * 0.5, (i + 1) as f64 * 0.5))
        .collect();
    // One thread owns the whole run: 47 interior edges shared.
    let cfg = LaunchConfig::new(1, 1);
    let samplers = [FnSampler(f)];
    let fused = FusedBinKernel {
        integrands: &samplers,
        bins: &bins,
        precision: Precision::Double,
        windows: None,
        rule: DeviceRule::Simpson { panels: 8 },
        math: quadrature::MathMode::Exact,
    };
    let mut emi = vec![0.0; n_bins];
    let evals = fused.execute(cfg, &mut emi);
    let isolated = 2 * 8 + 1;
    assert_eq!(evals, isolated + (n_bins as u64 - 1) * (isolated - 1));
}
