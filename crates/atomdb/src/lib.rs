//! Synthetic atomic database for the hybrid spectral-calculation system.
//!
//! The original APEC draws its atomic physics from AtomDB/APED, a curated
//! observational database we cannot redistribute. This crate generates a
//! **deterministic synthetic equivalent** with the same *structure*:
//!
//! * elements hydrogen through gallium (Z = 1..=31),
//! * every recombining ionization stage of every element — exactly the
//!   **496 ions** the paper counts (1 + 2 + ... + 31 = 496),
//! * hydrogenic energy levels per ion with a per-ion principal-quantum-
//!   number cutoff (the paper: "some methods of cutting off the level
//!   calculation is necessary"),
//! * Kramers-form radiative recombination cross sections (the
//!   `sigma_rec_n(E)` of paper Eq. 1),
//! * Arrhenius/power-law ionization and recombination rate coefficients
//!   (the `S` and `alpha` of paper Eq. 4) for the NEI substrate.
//!
//! Everything is generated from closed-form formulae keyed on `(Z, charge,
//! n)`, so two independently constructed databases are bit-identical — a
//! property the tests rely on.

pub mod cross_section;
pub mod database;
pub mod element;
pub mod ion;
pub mod levels;
pub mod rates;

pub use cross_section::{recombination_cross_section, recombination_cross_section_times_energy};
pub use database::{AtomDatabase, DatabaseConfig, DatabaseStats};
pub use element::{Element, ELEMENTS, MAX_Z};
pub use ion::{Ion, IonStage};
pub use levels::{Level, LevelModel};
pub use rates::{ionization_rate, recombination_rate, RateCoefficients};

/// Rydberg energy in electron-volts: the hydrogen ground-state binding
/// energy used by the hydrogenic level formula.
pub const RYDBERG_EV: f64 = 13.605_693_122_994;

/// Boltzmann constant in eV/K, used to convert temperatures to `kT`.
pub const K_BOLTZMANN_EV_PER_K: f64 = 8.617_333_262e-5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ion_census_matches_paper() {
        let db = AtomDatabase::generate(DatabaseConfig::default());
        assert_eq!(db.ions().len(), 496);
    }

    #[test]
    fn constants_are_sane() {
        assert!((RYDBERG_EV - 13.6057).abs() < 1e-3);
        // kT at 1e7 K is ~862 eV.
        assert!((K_BOLTZMANN_EV_PER_K * 1e7 - 861.7).abs() < 1.0);
    }
}
