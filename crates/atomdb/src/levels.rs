//! Hydrogenic energy levels with per-ion cutoffs.
//!
//! Real ions have "theoretically ... an infinite number principal energy
//! levels"; the paper cuts the calculation off. We use a hydrogenic
//! model: level `n` of the recombined ion binds the captured electron
//! with `I = Ry * q_eff^2 / n^2`, and each ion carries a deterministic
//! cutoff `n_max` so that the number of levels — and therefore the work
//! per ion task — varies across ions exactly like a real database's
//! level census does.

use crate::ion::Ion;
use crate::RYDBERG_EV;

/// One bound level of a recombined ion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Level {
    /// Principal quantum number, `1..=n_max`.
    pub n: u16,
    /// Binding energy `I_{Z,j,n}` in eV: the captured electron's binding
    /// energy in this level (paper Eq. 1).
    pub binding_energy_ev: f64,
    /// Statistical weight `2 n^2` of the hydrogenic shell.
    pub weight: f64,
}

/// Deterministic level-census model.
///
/// `n_max(ion)` is a hash-like but fully deterministic function of the
/// ion spreading cutoffs over `[min_levels, max_levels]`. The defaults
/// give a mean of ~10 levels per ion, making per-ion task sizes uneven —
/// which is what exercises the load balancer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelModel {
    /// Smallest allowed cutoff (inclusive).
    pub min_levels: u16,
    /// Largest allowed cutoff (inclusive).
    pub max_levels: u16,
}

impl Default for LevelModel {
    fn default() -> Self {
        LevelModel {
            min_levels: 4,
            max_levels: 16,
        }
    }
}

impl LevelModel {
    /// The level cutoff for `ion`: deterministic, in
    /// `[min_levels, max_levels]`.
    #[must_use]
    pub fn n_max(&self, ion: Ion) -> u16 {
        let span = u32::from(self.max_levels.saturating_sub(self.min_levels)) + 1;
        let mix = u32::from(ion.z) * 13 + u32::from(ion.charge) * 7;
        self.min_levels + (mix % span) as u16
    }

    /// Materialize all levels of `ion`, ordered by increasing `n`
    /// (decreasing binding energy).
    #[must_use]
    pub fn levels(&self, ion: Ion) -> Vec<Level> {
        let n_max = self.n_max(ion);
        let q = ion.effective_charge();
        (1..=n_max)
            .map(|n| {
                let nf = f64::from(n);
                Level {
                    n,
                    binding_energy_ev: RYDBERG_EV * q * q / (nf * nf),
                    weight: 2.0 * nf * nf,
                }
            })
            .collect()
    }

    /// Total number of levels over all 496 ions — the work census used by
    /// the calibration module.
    #[must_use]
    pub fn total_levels(&self) -> u64 {
        let mut total = 0u64;
        for z in 1..=crate::MAX_Z {
            for charge in 1..=z {
                let ion = Ion::new(z, charge).expect("valid by construction");
                total += u64::from(self.n_max(ion));
            }
        }
        total
    }

    /// Mean number of levels per ion.
    #[must_use]
    pub fn mean_levels(&self) -> f64 {
        self.total_levels() as f64 / 496.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ion(z: u8, charge: u8) -> Ion {
        Ion::new(z, charge).unwrap()
    }

    #[test]
    fn binding_energy_decreases_with_n() {
        let model = LevelModel::default();
        let levels = model.levels(ion(26, 24));
        for pair in levels.windows(2) {
            assert!(pair[0].binding_energy_ev > pair[1].binding_energy_ev);
        }
    }

    #[test]
    fn ground_level_matches_hydrogenic_formula() {
        let model = LevelModel::default();
        let levels = model.levels(ion(2, 2)); // He III recombining to He II
        assert!((levels[0].binding_energy_ev - 4.0 * RYDBERG_EV).abs() < 1e-9);
    }

    #[test]
    fn cutoff_in_configured_range() {
        let model = LevelModel::default();
        for z in 1..=crate::MAX_Z {
            for charge in 1..=z {
                let n = model.n_max(ion(z, charge));
                assert!(n >= model.min_levels && n <= model.max_levels);
            }
        }
    }

    #[test]
    fn census_is_deterministic() {
        let a = LevelModel::default();
        let b = LevelModel::default();
        assert_eq!(a.total_levels(), b.total_levels());
        for z in [1u8, 8, 26, 31] {
            for charge in 1..=z {
                assert_eq!(a.levels(ion(z, charge)), b.levels(ion(z, charge)));
            }
        }
    }

    #[test]
    fn mean_levels_is_mid_range() {
        let model = LevelModel::default();
        let mean = model.mean_levels();
        assert!(mean > 6.0 && mean < 14.0, "mean {mean}");
    }

    #[test]
    fn weights_are_hydrogenic() {
        let model = LevelModel::default();
        for level in model.levels(ion(10, 5)) {
            let n = f64::from(level.n);
            assert_eq!(level.weight, 2.0 * n * n);
        }
    }

    #[test]
    fn degenerate_model_has_constant_cutoff() {
        let model = LevelModel {
            min_levels: 8,
            max_levels: 8,
        };
        for z in 1..=crate::MAX_Z {
            assert_eq!(model.n_max(ion(z, 1)), 8);
        }
        assert_eq!(model.total_levels(), 8 * 496);
    }
}
