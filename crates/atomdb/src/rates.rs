//! Ionization and recombination rate coefficients for the NEI substrate.
//!
//! Paper Eq. 4 evolves the ion-stage populations of an element with
//! per-stage ionization rates `S_i(T)` and recombination rates
//! `alpha_i(T)`. We use standard functional forms:
//!
//! * collisional ionization (Lotz/Seaton-like Arrhenius shape):
//!   `S = A_ion * sqrt(T_ev) / I^2 * exp(-I / T_ev)`
//! * radiative recombination (power law):
//!   `alpha = A_rec * (q+1)^2 * (T_ev)^(-0.7)`
//!
//! with `I` the stage's ionization potential and `T_ev = kT` in eV.
//! These reproduce the essential NEI dynamics: ionization switches on
//! exponentially with temperature while recombination dominates cooling
//! plasmas, and high charge states have stiff fast/slow rate contrasts —
//! the property that makes the ODEs "stiff and sparse" (paper §IV-D).

use crate::ion::IonStage;
use crate::K_BOLTZMANN_EV_PER_K;

/// Normalization of the ionization rate, cm³/s scale.
pub const A_ION: f64 = 2.5e-6;
/// Normalization of the recombination rate, cm³/s scale.
pub const A_REC: f64 = 5.2e-12;

/// Collisional ionization rate coefficient `S_{Z,i}(T)` out of `stage`
/// (stage charge `i` to `i+1`), in cm³/s. Temperature in kelvin.
/// A bare nucleus cannot ionize further: returns 0 for `charge == z`.
#[must_use]
pub fn ionization_rate(stage: IonStage, temperature_k: f64) -> f64 {
    if stage.charge >= stage.z || temperature_k <= 0.0 {
        return 0.0;
    }
    let t_ev = temperature_k * K_BOLTZMANN_EV_PER_K;
    let i_pot = stage.ionization_potential_ev();
    A_ION * t_ev.sqrt() / (i_pot * i_pot) * (-i_pot / t_ev).exp()
}

/// Radiative recombination rate coefficient `alpha_{Z,i}(T)` into `stage`
/// (stage charge `i+1` to `i` captures; we index by the *recombining*
/// stage, so this is nonzero for `charge >= 1`), in cm³/s.
#[must_use]
pub fn recombination_rate(stage: IonStage, temperature_k: f64) -> f64 {
    if stage.charge == 0 || temperature_k <= 0.0 {
        return 0.0;
    }
    let t_ev = temperature_k * K_BOLTZMANN_EV_PER_K;
    let q = f64::from(stage.charge);
    A_REC * q * q * t_ev.powf(-0.7)
}

/// Both coefficients of one stage at one temperature, the unit the NEI
/// solver's right-hand side consumes. The paper notes these "need to be
/// computed in real time", i.e. per evaluation — we preserve that cost
/// structure by not caching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateCoefficients {
    /// Ionization rate out of this stage, cm³/s.
    pub ionization: f64,
    /// Recombination rate out of this stage (to the stage below), cm³/s.
    pub recombination: f64,
}

impl RateCoefficients {
    /// Evaluate both coefficients for `stage` at `temperature_k`.
    #[must_use]
    pub fn at(stage: IonStage, temperature_k: f64) -> RateCoefficients {
        RateCoefficients {
            ionization: ionization_rate(stage, temperature_k),
            recombination: recombination_rate(stage, temperature_k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(z: u8, charge: u8) -> IonStage {
        IonStage::new(z, charge).unwrap()
    }

    #[test]
    fn bare_nucleus_cannot_ionize() {
        assert_eq!(ionization_rate(stage(8, 8), 1e7), 0.0);
    }

    #[test]
    fn neutral_cannot_recombine_further() {
        assert_eq!(recombination_rate(stage(8, 0), 1e7), 0.0);
    }

    #[test]
    fn ionization_grows_with_temperature() {
        let s = stage(8, 3);
        let cold = ionization_rate(s, 1e5);
        let hot = ionization_rate(s, 1e7);
        assert!(hot > cold);
    }

    #[test]
    fn recombination_falls_with_temperature() {
        let s = stage(8, 3);
        let cold = recombination_rate(s, 1e5);
        let hot = recombination_rate(s, 1e7);
        assert!(cold > hot);
    }

    #[test]
    fn rates_are_nonnegative_everywhere() {
        for z in [1u8, 8, 26] {
            for charge in 0..=z {
                for t in [1e4, 1e6, 1e8] {
                    assert!(ionization_rate(stage(z, charge), t) >= 0.0);
                    assert!(recombination_rate(stage(z, charge), t) >= 0.0);
                }
            }
        }
    }

    #[test]
    fn high_charge_states_need_hotter_plasma() {
        // At 1e6 K, ionizing O+6 (I ~ 667 eV) is much slower than O+1.
        let low = ionization_rate(stage(8, 1), 1e6);
        let high = ionization_rate(stage(8, 6), 1e6);
        assert!(low > high * 10.0);
    }

    #[test]
    fn zero_temperature_is_inert() {
        assert_eq!(ionization_rate(stage(8, 2), 0.0), 0.0);
        assert_eq!(recombination_rate(stage(8, 2), 0.0), 0.0);
    }

    #[test]
    fn coefficients_bundle_matches_functions() {
        let s = stage(26, 10);
        let rc = RateCoefficients::at(s, 3e6);
        assert_eq!(rc.ionization, ionization_rate(s, 3e6));
        assert_eq!(rc.recombination, recombination_rate(s, 3e6));
    }
}
