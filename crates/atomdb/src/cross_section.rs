//! Kramers-form radiative recombination cross sections.
//!
//! `sigma_rec_n(E_e)` in paper Eq. 1 is the cross section for a free
//! electron of kinetic energy `E_e` to recombine into level `n`. We use
//! the classical Kramers result (via the Milne relation from the Kramers
//! bound-free photoionization cross section):
//!
//! ```text
//! sigma_rec_n(E_e)  ∝  I_n^2 / ( n * E_e * (E_e + I_n) )
//! ```
//!
//! which captures the physically relevant behaviour for the integrand:
//! it diverges like `1/E_e` at threshold (making the bins nearest the
//! recombination edge the hardest to integrate) and falls off like
//! `1/E_e^2` far above it.

/// Normalization constant in cm² (order of the Kramers cross section at
/// threshold for hydrogen): purely a scale factor for the synthetic
/// database; spectra are reported as normalized flux.
pub const SIGMA0_CM2: f64 = 2.105e-22;

/// Radiative recombination cross section into level `n` (binding energy
/// `binding_ev`) for an electron of kinetic energy `electron_ev`.
///
/// Returns 0 for non-positive electron energies (no free electron).
/// Units: cm² when energies are in eV.
#[must_use]
pub fn recombination_cross_section(n: u16, binding_ev: f64, electron_ev: f64) -> f64 {
    if electron_ev <= 0.0 || binding_ev <= 0.0 || n == 0 {
        return 0.0;
    }
    let i2 = binding_ev * binding_ev;
    SIGMA0_CM2 * i2 / (f64::from(n) * electron_ev * (electron_ev + binding_ev))
}

/// The product `sigma_rec_n(E_e) * E_e` with the `1/E_e` threshold
/// divergence cancelled analytically:
///
/// ```text
/// sigma * E_e = SIGMA0 * I^2 / ( n * (E_e + I) )
/// ```
///
/// This is the combination the RRC integrand actually needs (Eq. 1
/// multiplies the cross section by the electron energy), and unlike the
/// raw cross section it is finite and continuous at threshold — closed
/// quadrature rules that sample the threshold endpoint (Simpson on the
/// GPU) would otherwise see a spurious zero there.
#[must_use]
pub fn recombination_cross_section_times_energy(n: u16, binding_ev: f64, electron_ev: f64) -> f64 {
    if electron_ev < 0.0 || binding_ev <= 0.0 || n == 0 {
        return 0.0;
    }
    let i2 = binding_ev * binding_ev;
    SIGMA0_CM2 * i2 / (f64::from(n) * (electron_ev + binding_ev))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_below_threshold() {
        assert_eq!(recombination_cross_section(1, 13.6, 0.0), 0.0);
        assert_eq!(recombination_cross_section(1, 13.6, -1.0), 0.0);
        assert_eq!(recombination_cross_section(0, 13.6, 1.0), 0.0);
        assert_eq!(recombination_cross_section(1, 0.0, 1.0), 0.0);
    }

    #[test]
    fn decreases_with_electron_energy() {
        let lo = recombination_cross_section(1, 13.6, 1.0);
        let mid = recombination_cross_section(1, 13.6, 10.0);
        let hi = recombination_cross_section(1, 13.6, 100.0);
        assert!(lo > mid && mid > hi);
    }

    #[test]
    fn decreases_with_level_number() {
        let ground = recombination_cross_section(1, 13.6, 5.0);
        let excited = recombination_cross_section(4, 13.6, 5.0);
        assert!(ground > excited);
    }

    #[test]
    fn high_energy_tail_is_inverse_square() {
        let e = 1.0e4;
        let a = recombination_cross_section(2, 54.4, e);
        let b = recombination_cross_section(2, 54.4, 2.0 * e);
        let ratio = a / b;
        assert!((ratio - 4.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn threshold_divergence_is_inverse_linear() {
        let a = recombination_cross_section(1, 13.6, 1e-3);
        let b = recombination_cross_section(1, 13.6, 2e-3);
        let ratio = a / b;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn sigma_times_energy_is_continuous_at_threshold() {
        let at_zero = recombination_cross_section_times_energy(1, 13.6, 0.0);
        let near_zero = recombination_cross_section_times_energy(1, 13.6, 1e-9);
        assert!(at_zero > 0.0);
        assert!((at_zero - near_zero).abs() / at_zero < 1e-9);
        // And it matches sigma * E away from threshold.
        let e = 7.5;
        let product = recombination_cross_section(1, 13.6, e) * e;
        let direct = recombination_cross_section_times_energy(1, 13.6, e);
        assert!((product - direct).abs() / direct < 1e-12);
    }

    #[test]
    fn scales_with_binding_energy() {
        // More tightly bound levels capture more strongly at fixed E.
        let weak = recombination_cross_section(1, 13.6, 50.0);
        let strong = recombination_cross_section(1, 544.0, 50.0);
        assert!(strong > weak);
    }
}
