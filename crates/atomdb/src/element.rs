//! Chemical elements hydrogen through gallium.

/// Highest atomic number in the database (gallium). With every
/// recombining stage of every element this yields the paper's 496 ions.
pub const MAX_Z: u8 = 31;

/// A chemical element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Element {
    /// Atomic number.
    pub z: u8,
    /// IUPAC symbol.
    pub symbol: &'static str,
    /// Logarithmic abundance on the astronomical scale where
    /// `log10 N(H) = 12`. Values follow the familiar solar photosphere
    /// pattern (synthetic database; see crate docs).
    pub log_abundance: f64,
}

impl Element {
    /// Linear abundance relative to hydrogen (`N(elem)/N(H)`).
    #[must_use]
    pub fn abundance(&self) -> f64 {
        10f64.powf(self.log_abundance - 12.0)
    }

    /// Look up an element by atomic number. `None` outside `1..=MAX_Z`.
    #[must_use]
    pub fn by_z(z: u8) -> Option<&'static Element> {
        if z == 0 || z > MAX_Z {
            None
        } else {
            Some(&ELEMENTS[z as usize - 1])
        }
    }
}

/// The element table, indexed by `z - 1`.
pub static ELEMENTS: [Element; MAX_Z as usize] = [
    Element {
        z: 1,
        symbol: "H",
        log_abundance: 12.00,
    },
    Element {
        z: 2,
        symbol: "He",
        log_abundance: 10.99,
    },
    Element {
        z: 3,
        symbol: "Li",
        log_abundance: 1.16,
    },
    Element {
        z: 4,
        symbol: "Be",
        log_abundance: 1.15,
    },
    Element {
        z: 5,
        symbol: "B",
        log_abundance: 2.60,
    },
    Element {
        z: 6,
        symbol: "C",
        log_abundance: 8.56,
    },
    Element {
        z: 7,
        symbol: "N",
        log_abundance: 8.05,
    },
    Element {
        z: 8,
        symbol: "O",
        log_abundance: 8.93,
    },
    Element {
        z: 9,
        symbol: "F",
        log_abundance: 4.56,
    },
    Element {
        z: 10,
        symbol: "Ne",
        log_abundance: 8.09,
    },
    Element {
        z: 11,
        symbol: "Na",
        log_abundance: 6.33,
    },
    Element {
        z: 12,
        symbol: "Mg",
        log_abundance: 7.58,
    },
    Element {
        z: 13,
        symbol: "Al",
        log_abundance: 6.47,
    },
    Element {
        z: 14,
        symbol: "Si",
        log_abundance: 7.55,
    },
    Element {
        z: 15,
        symbol: "P",
        log_abundance: 5.45,
    },
    Element {
        z: 16,
        symbol: "S",
        log_abundance: 7.21,
    },
    Element {
        z: 17,
        symbol: "Cl",
        log_abundance: 5.50,
    },
    Element {
        z: 18,
        symbol: "Ar",
        log_abundance: 6.56,
    },
    Element {
        z: 19,
        symbol: "K",
        log_abundance: 5.12,
    },
    Element {
        z: 20,
        symbol: "Ca",
        log_abundance: 6.36,
    },
    Element {
        z: 21,
        symbol: "Sc",
        log_abundance: 3.10,
    },
    Element {
        z: 22,
        symbol: "Ti",
        log_abundance: 4.99,
    },
    Element {
        z: 23,
        symbol: "V",
        log_abundance: 4.00,
    },
    Element {
        z: 24,
        symbol: "Cr",
        log_abundance: 5.67,
    },
    Element {
        z: 25,
        symbol: "Mn",
        log_abundance: 5.39,
    },
    Element {
        z: 26,
        symbol: "Fe",
        log_abundance: 7.67,
    },
    Element {
        z: 27,
        symbol: "Co",
        log_abundance: 4.92,
    },
    Element {
        z: 28,
        symbol: "Ni",
        log_abundance: 6.25,
    },
    Element {
        z: 29,
        symbol: "Cu",
        log_abundance: 4.21,
    },
    Element {
        z: 30,
        symbol: "Zn",
        log_abundance: 4.60,
    },
    Element {
        z: 31,
        symbol: "Ga",
        log_abundance: 3.13,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_indexed_by_z() {
        for (i, e) in ELEMENTS.iter().enumerate() {
            assert_eq!(e.z as usize, i + 1);
        }
    }

    #[test]
    fn hydrogen_abundance_is_unity() {
        let h = Element::by_z(1).unwrap();
        assert!((h.abundance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn helium_is_about_a_tenth_of_hydrogen() {
        let he = Element::by_z(2).unwrap();
        assert!(he.abundance() > 0.05 && he.abundance() < 0.2);
    }

    #[test]
    fn lookup_bounds() {
        assert!(Element::by_z(0).is_none());
        assert!(Element::by_z(MAX_Z).is_some());
        assert!(Element::by_z(MAX_Z + 1).is_none());
    }

    #[test]
    fn abundances_are_positive_and_below_hydrogen() {
        for e in &ELEMENTS[1..] {
            assert!(e.abundance() > 0.0);
            assert!(e.abundance() < 1.0, "{}", e.symbol);
        }
    }
}
