//! Ions and ionization stages.

use crate::element::{Element, MAX_Z};

/// An ion identified by element and charge.
///
/// In the paper's notation an RRC event is a free electron recombining
/// with the ion `(Z, j+1)` into level `n` of `(Z, j)`. Here `charge` is
/// the charge of the *recombining* ion, so `charge` runs from 1 (singly
/// ionized) to `Z` (bare nucleus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ion {
    /// Atomic number of the element.
    pub z: u8,
    /// Charge of the recombining ion, `1..=z`.
    pub charge: u8,
}

impl Ion {
    /// Construct an ion, validating `1 <= charge <= z <= MAX_Z`.
    #[must_use]
    pub fn new(z: u8, charge: u8) -> Option<Ion> {
        if z == 0 || z > MAX_Z || charge == 0 || charge > z {
            None
        } else {
            Some(Ion { z, charge })
        }
    }

    /// The element this ion belongs to.
    #[must_use]
    pub fn element(&self) -> &'static Element {
        Element::by_z(self.z).expect("Ion::new validated z")
    }

    /// Effective nuclear charge seen by the captured electron once bound
    /// (hydrogenic screening approximation): the recombined system has
    /// charge `charge - 1`, so the outer electron sees `charge`.
    #[must_use]
    pub fn effective_charge(&self) -> f64 {
        f64::from(self.charge)
    }

    /// Spectroscopic-style label, e.g. `Fe+16`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}+{}", self.element().symbol, self.charge)
    }

    /// Dense index of this ion in the canonical enumeration
    /// (element-major, charge-minor), `0..496`.
    #[must_use]
    pub fn dense_index(&self) -> usize {
        // Ions of elements with atomic number < z contribute sum_{k<z} k.
        let prior = (usize::from(self.z) - 1) * usize::from(self.z) / 2;
        prior + usize::from(self.charge) - 1
    }

    /// Inverse of [`Ion::dense_index`].
    #[must_use]
    pub fn from_dense_index(index: usize) -> Option<Ion> {
        let mut z = 1usize;
        let mut base = 0usize;
        while z <= MAX_Z as usize {
            if index < base + z {
                return Ion::new(z as u8, (index - base + 1) as u8);
            }
            base += z;
            z += 1;
        }
        None
    }
}

/// One ionization stage of an element, including the neutral stage —
/// used by the NEI substrate, where the state vector of element `Z`
/// has `Z + 1` entries (charge `0..=Z`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IonStage {
    /// Atomic number.
    pub z: u8,
    /// Charge of the stage, `0..=z`.
    pub charge: u8,
}

impl IonStage {
    /// Construct a stage, validating `charge <= z <= MAX_Z`.
    #[must_use]
    pub fn new(z: u8, charge: u8) -> Option<IonStage> {
        if z == 0 || z > MAX_Z || charge > z {
            None
        } else {
            Some(IonStage { z, charge })
        }
    }

    /// Ground-state ionization potential of this stage in eV (hydrogenic
    /// scaling from the effective charge the outermost electron sees).
    #[must_use]
    pub fn ionization_potential_ev(&self) -> f64 {
        let q_eff = f64::from(self.charge) + 1.0;
        crate::RYDBERG_EV * q_eff * q_eff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_is_496() {
        let mut count = 0usize;
        for z in 1..=MAX_Z {
            for charge in 1..=z {
                assert!(Ion::new(z, charge).is_some());
                count += 1;
            }
        }
        assert_eq!(count, 496);
    }

    #[test]
    fn dense_index_roundtrip() {
        let mut seen = vec![false; 496];
        for z in 1..=MAX_Z {
            for charge in 1..=z {
                let ion = Ion::new(z, charge).unwrap();
                let idx = ion.dense_index();
                assert!(idx < 496, "{ion:?} -> {idx}");
                assert!(!seen[idx], "collision at {idx}");
                seen[idx] = true;
                assert_eq!(Ion::from_dense_index(idx), Some(ion));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn validation_rejects_bad_ions() {
        assert!(Ion::new(0, 1).is_none());
        assert!(Ion::new(5, 0).is_none());
        assert!(Ion::new(5, 6).is_none());
        assert!(Ion::new(MAX_Z + 1, 1).is_none());
    }

    #[test]
    fn labels_are_readable() {
        assert_eq!(Ion::new(26, 16).unwrap().label(), "Fe+16");
        assert_eq!(Ion::new(1, 1).unwrap().label(), "H+1");
    }

    #[test]
    fn stage_ionization_potential_scales_with_charge() {
        let neutral = IonStage::new(8, 0).unwrap();
        let high = IonStage::new(8, 7).unwrap();
        assert!(high.ionization_potential_ev() > neutral.ionization_potential_ev());
        // Hydrogen neutral stage: 13.6 eV.
        let h = IonStage::new(1, 0).unwrap();
        assert!((h.ionization_potential_ev() - crate::RYDBERG_EV).abs() < 1e-12);
    }

    #[test]
    fn from_dense_index_out_of_range() {
        assert!(Ion::from_dense_index(496).is_none());
        assert_eq!(Ion::from_dense_index(0), Some(Ion { z: 1, charge: 1 }));
        assert_eq!(Ion::from_dense_index(495), Some(Ion { z: 31, charge: 31 }));
    }
}
