//! The assembled synthetic database.

use crate::element::{Element, MAX_Z};
use crate::ion::Ion;
use crate::levels::{Level, LevelModel};

/// Generation parameters for [`AtomDatabase`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatabaseConfig {
    /// The level-census model (cutoff range per ion).
    pub level_model: LevelModel,
    /// Restrict the database to elements `1..=max_z`; defaults to the full
    /// range (496 ions). Smaller values give scaled-down workloads for
    /// tests and examples.
    pub max_z: u8,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            level_model: LevelModel::default(),
            max_z: MAX_Z,
        }
    }
}

/// Aggregate counts used by workload generators and the calibration
/// module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatabaseStats {
    /// Number of ions in the database.
    pub ions: usize,
    /// Total number of levels across all ions.
    pub levels: u64,
    /// Largest level count of any single ion.
    pub max_levels_per_ion: u16,
}

/// The synthetic atomic database: ions, their levels, and the physics
/// lookups the spectral and NEI substrates need.
///
/// Levels are materialized eagerly — the full default database is ~5000
/// levels, trivially small — and stored ion-major so an ion task can
/// borrow its level slice without indirection.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomDatabase {
    config: DatabaseConfig,
    ions: Vec<Ion>,
    /// `levels[i]` holds the levels of `ions[i]`.
    levels: Vec<Vec<Level>>,
}

impl AtomDatabase {
    /// Generate the database deterministically from `config`.
    #[must_use]
    pub fn generate(config: DatabaseConfig) -> AtomDatabase {
        let max_z = config.max_z.clamp(1, MAX_Z);
        let mut ions = Vec::new();
        let mut levels = Vec::new();
        for z in 1..=max_z {
            for charge in 1..=z {
                let ion = Ion::new(z, charge).expect("valid by construction");
                ions.push(ion);
                levels.push(config.level_model.levels(ion));
            }
        }
        AtomDatabase {
            config,
            ions,
            levels,
        }
    }

    /// The generation parameters.
    #[must_use]
    pub fn config(&self) -> &DatabaseConfig {
        &self.config
    }

    /// All ions, element-major then charge-minor.
    #[must_use]
    pub fn ions(&self) -> &[Ion] {
        &self.ions
    }

    /// Levels of the `i`-th ion of [`AtomDatabase::ions`].
    #[must_use]
    pub fn levels_by_index(&self, i: usize) -> &[Level] {
        &self.levels[i]
    }

    /// Levels of `ion`, or `None` if the ion is outside this database's
    /// element range.
    #[must_use]
    pub fn levels(&self, ion: Ion) -> Option<&[Level]> {
        if ion.z > self.config.max_z.clamp(1, MAX_Z) {
            return None;
        }
        // ions are stored in dense_index order restricted to max_z.
        let idx = ion.dense_index();
        self.levels.get(idx).map(Vec::as_slice)
    }

    /// The element of the `i`-th ion.
    #[must_use]
    pub fn element_by_index(&self, i: usize) -> &'static Element {
        self.ions[i].element()
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> DatabaseStats {
        let levels: u64 = self.levels.iter().map(|l| l.len() as u64).sum();
        let max = self
            .levels
            .iter()
            .map(|l| l.len() as u16)
            .max()
            .unwrap_or(0);
        DatabaseStats {
            ions: self.ions.len(),
            levels,
            max_levels_per_ion: max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_database_has_496_ions() {
        let db = AtomDatabase::generate(DatabaseConfig::default());
        assert_eq!(db.stats().ions, 496);
    }

    #[test]
    fn restricted_database_is_smaller() {
        let db = AtomDatabase::generate(DatabaseConfig {
            max_z: 8,
            ..DatabaseConfig::default()
        });
        // 1+2+...+8 = 36 ions.
        assert_eq!(db.stats().ions, 36);
    }

    #[test]
    fn levels_lookup_matches_index_lookup() {
        let db = AtomDatabase::generate(DatabaseConfig::default());
        for (i, &ion) in db.ions().iter().enumerate() {
            assert_eq!(db.levels(ion), Some(db.levels_by_index(i)));
        }
    }

    #[test]
    fn lookup_outside_range_is_none() {
        let db = AtomDatabase::generate(DatabaseConfig {
            max_z: 8,
            ..DatabaseConfig::default()
        });
        assert!(db.levels(Ion::new(26, 1).unwrap()).is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = AtomDatabase::generate(DatabaseConfig::default());
        let b = AtomDatabase::generate(DatabaseConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn stats_levels_agree_with_model_census() {
        let cfg = DatabaseConfig::default();
        let db = AtomDatabase::generate(cfg);
        assert_eq!(db.stats().levels, cfg.level_model.total_levels());
        assert!(db.stats().max_levels_per_ion <= cfg.level_model.max_levels);
    }

    #[test]
    fn clone_preserves_structure() {
        // The database no longer serializes (it regenerates
        // deterministically from `DatabaseConfig` instead, which is what
        // run specs store); cloning must stay a faithful deep copy.
        let db = AtomDatabase::generate(DatabaseConfig {
            max_z: 4,
            ..DatabaseConfig::default()
        });
        let back = db.clone();
        assert_eq!(db.ions, back.ions);
        assert_eq!(db.config, back.config);
        for (a, b) in db.levels.iter().zip(&back.levels) {
            assert_eq!(a.len(), b.len());
            for (la, lb) in a.iter().zip(b) {
                assert_eq!(la.n, lb.n);
                assert!((la.binding_energy_ev - lb.binding_energy_ev).abs() < 1e-12);
            }
        }
    }
}
