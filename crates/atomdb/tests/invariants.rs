//! Database-wide physical invariants, checked over every ion.

use atomdb::{AtomDatabase, DatabaseConfig, Ion, IonStage, LevelModel};
use desim::rng;

#[test]
fn binding_energies_scale_with_charge_squared() {
    let model = LevelModel::default();
    // Ground-state binding of hydrogenic ions: Ry * q^2.
    for z in 1..=31u8 {
        for charge in 1..=z {
            let ion = Ion::new(z, charge).unwrap();
            let ground = model.levels(ion)[0].binding_energy_ev;
            let expected = atomdb::RYDBERG_EV * f64::from(charge) * f64::from(charge);
            assert!(
                (ground - expected).abs() < 1e-9,
                "{}: {ground} vs {expected}",
                ion.label()
            );
        }
    }
}

#[test]
fn every_ion_has_levels_and_positive_cross_sections() {
    let db = AtomDatabase::generate(DatabaseConfig::default());
    for (i, ion) in db.ions().iter().enumerate() {
        let levels = db.levels_by_index(i);
        assert!(!levels.is_empty(), "{}", ion.label());
        for level in levels {
            let sigma = atomdb::recombination_cross_section(level.n, level.binding_energy_ev, 10.0);
            assert!(sigma > 0.0, "{} n={}", ion.label(), level.n);
        }
    }
}

#[test]
fn ionization_chain_rates_are_consistent() {
    // Detailed balance direction: at very high T ionization beats
    // recombination for every stage; at very low T the reverse.
    for z in [2u8, 8, 26] {
        for charge in 1..z {
            let stage = IonStage::new(z, charge).unwrap();
            let hot_s = atomdb::ionization_rate(stage, 1e9);
            let hot_a = atomdb::recombination_rate(stage, 1e9);
            assert!(hot_s > hot_a, "Z={z} q={charge} hot");
            let cold_s = atomdb::ionization_rate(stage, 1e4);
            let cold_a = atomdb::recombination_rate(stage, 1e4);
            assert!(cold_a > cold_s, "Z={z} q={charge} cold");
        }
    }
}

#[test]
fn dense_index_is_a_bijection() {
    for idx in 0..496usize {
        let ion = Ion::from_dense_index(idx).unwrap();
        assert_eq!(ion.dense_index(), idx);
    }
}

#[test]
fn level_census_respects_bounds() {
    let mut r = rng(0x1E7E1);
    for _ in 0..50 {
        let min = r.gen_range_usize(2..10) as u16;
        let extra = r.gen_range_usize(0..20) as u16;
        let model = LevelModel {
            min_levels: min,
            max_levels: min + extra,
        };
        for z in [1u8, 7, 19, 31] {
            for charge in 1..=z {
                let n = model.n_max(Ion::new(z, charge).unwrap());
                assert!(n >= min && n <= min + extra);
            }
        }
        assert!(model.total_levels() >= u64::from(min) * 496);
    }
}

#[test]
fn cross_section_monotone_in_electron_energy() {
    let mut r = rng(0x516A);
    for _ in 0..100 {
        let binding = r.gen_range(1.0..1000.0);
        let n = r.gen_range_usize(1..20) as u16;
        let mut prev = f64::MAX;
        for step in 1..50 {
            let e = step as f64 * 5.0;
            let sigma = atomdb::recombination_cross_section(n, binding, e);
            assert!(sigma < prev, "not monotone at E={e}");
            prev = sigma;
        }
    }
}
