//! Database-wide physical invariants, checked over every ion.

use atomdb::{AtomDatabase, DatabaseConfig, Ion, IonStage, LevelModel};
use proptest::prelude::*;

#[test]
fn binding_energies_scale_with_charge_squared() {
    let model = LevelModel::default();
    // Ground-state binding of hydrogenic ions: Ry * q^2.
    for z in 1..=31u8 {
        for charge in 1..=z {
            let ion = Ion::new(z, charge).unwrap();
            let ground = model.levels(ion)[0].binding_energy_ev;
            let expected = atomdb::RYDBERG_EV * f64::from(charge) * f64::from(charge);
            assert!(
                (ground - expected).abs() < 1e-9,
                "{}: {ground} vs {expected}",
                ion.label()
            );
        }
    }
}

#[test]
fn every_ion_has_levels_and_positive_cross_sections() {
    let db = AtomDatabase::generate(DatabaseConfig::default());
    for (i, ion) in db.ions().iter().enumerate() {
        let levels = db.levels_by_index(i);
        assert!(!levels.is_empty(), "{}", ion.label());
        for level in levels {
            let sigma = atomdb::recombination_cross_section(
                level.n,
                level.binding_energy_ev,
                10.0,
            );
            assert!(sigma > 0.0, "{} n={}", ion.label(), level.n);
        }
    }
}

#[test]
fn ionization_chain_rates_are_consistent() {
    // Detailed balance direction: at very high T ionization beats
    // recombination for every stage; at very low T the reverse.
    for z in [2u8, 8, 26] {
        for charge in 1..z {
            let stage = IonStage::new(z, charge).unwrap();
            let hot_s = atomdb::ionization_rate(stage, 1e9);
            let hot_a = atomdb::recombination_rate(stage, 1e9);
            assert!(hot_s > hot_a, "Z={z} q={charge} hot");
            let cold_s = atomdb::ionization_rate(stage, 1e4);
            let cold_a = atomdb::recombination_rate(stage, 1e4);
            assert!(cold_a > cold_s, "Z={z} q={charge} cold");
        }
    }
}

proptest! {
    #[test]
    fn dense_index_is_a_bijection(idx in 0usize..496) {
        let ion = Ion::from_dense_index(idx).unwrap();
        prop_assert_eq!(ion.dense_index(), idx);
    }

    #[test]
    fn level_census_respects_bounds(min in 2u16..10, extra in 0u16..20) {
        let model = LevelModel { min_levels: min, max_levels: min + extra };
        for z in [1u8, 7, 19, 31] {
            for charge in 1..=z {
                let n = model.n_max(Ion::new(z, charge).unwrap());
                prop_assert!(n >= min && n <= min + extra);
            }
        }
        prop_assert_eq!(model.total_levels() >= u64::from(min) * 496, true);
    }

    #[test]
    fn cross_section_monotone_in_electron_energy(
        binding in 1.0f64..1000.0,
        n in 1u16..20,
    ) {
        let mut prev = f64::MAX;
        for step in 1..50 {
            let e = step as f64 * 5.0;
            let sigma = atomdb::recombination_cross_section(n, binding, e);
            prop_assert!(sigma < prev, "not monotone at E={e}");
            prev = sigma;
        }
    }
}
