//! QAGS-style globally adaptive quadrature.
//!
//! This is the CPU fallback path of the hybrid scheduler (paper
//! Algorithm 1 line 7: `CPU-Integr(L, U, N, f_rrc, errabs, errrel)`): when
//! every GPU queue is at its maximum length, the MPI process integrates
//! locally with "the traditional QAGS routine".
//!
//! Structure follows QUADPACK's `QAGS`: a worst-error-first interval
//! bisection loop with a global error budget, accelerated with Wynn's
//! ε-algorithm. One deliberate substitution (see `DESIGN.md`): the
//! Gauss–Kronrod 10–21 pair is replaced by a nested Gauss–Legendre
//! 10/21-point pair whose nodes are computed to machine precision at
//! construction, instead of hand-copied Kronrod constants. The adaptive
//! logic, tolerance semantics and failure modes are the same.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::gauss::GaussLegendre;
use crate::wynn::EpsilonTable;
use crate::{Estimate, QuadError, QuadResult};

/// Tunables for [`qags`]. The defaults mirror QUADPACK's: 50 subdivisions,
/// extrapolation on.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Absolute error goal (`epsabs`).
    pub errabs: f64,
    /// Relative error goal (`epsrel`).
    pub errrel: f64,
    /// Maximum number of stored subintervals before giving up.
    pub max_subdivisions: usize,
    /// Whether to run the ε-algorithm on the sequence of global estimates.
    pub use_extrapolation: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            errabs: 1e-10,
            errrel: 1e-8,
            max_subdivisions: 50,
            use_extrapolation: true,
        }
    }
}

/// Reusable storage for [`qags_with`]: the interval heap and the two
/// Gauss rules. Reusing a workspace across the millions of small RRC
/// integrals avoids re-deriving nodes and re-allocating the heap for
/// every energy bin (see the perf guide on workhorse collections).
#[derive(Debug)]
pub struct QagsWorkspace {
    low_rule: GaussLegendre,
    high_rule: GaussLegendre,
    heap: BinaryHeap<Interval>,
}

impl Default for QagsWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl QagsWorkspace {
    /// Build a workspace with the standard 10/21-point rule pair.
    #[must_use]
    pub fn new() -> Self {
        QagsWorkspace {
            low_rule: GaussLegendre::new(10),
            high_rule: GaussLegendre::new(21),
            heap: BinaryHeap::new(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    lo: f64,
    hi: f64,
    value: f64,
    error: f64,
}

impl PartialEq for Interval {
    fn eq(&self, other: &Self) -> bool {
        self.error == other.error
    }
}
impl Eq for Interval {}
impl PartialOrd for Interval {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Interval {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by error; NaN errors sort last.
        self.error
            .partial_cmp(&other.error)
            .unwrap_or(Ordering::Less)
    }
}

/// Integrate `f` over `[lo, hi]` to tolerance `errabs` + `errrel * |I|`
/// with a fresh workspace. Convenience wrapper over [`qags_with`].
pub fn qags<F: FnMut(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    errabs: f64,
    errrel: f64,
) -> QuadResult<Estimate> {
    let mut ws = QagsWorkspace::new();
    let cfg = AdaptiveConfig {
        errabs,
        errrel,
        ..AdaptiveConfig::default()
    };
    qags_with(&mut ws, cfg, f, lo, hi)
}

/// Integrate `f` over `[lo, hi]` using the supplied workspace and config.
pub fn qags_with<F: FnMut(f64) -> f64>(
    ws: &mut QagsWorkspace,
    cfg: AdaptiveConfig,
    mut f: F,
    lo: f64,
    hi: f64,
) -> QuadResult<Estimate> {
    if !lo.is_finite() || !hi.is_finite() {
        return Err(QuadError::BadInterval { lo, hi });
    }
    if cfg.errabs <= 0.0 && cfg.errrel < 4.0 * f64::EPSILON {
        return Err(QuadError::BadTolerance {
            errabs: cfg.errabs,
            errrel: cfg.errrel,
        });
    }
    if lo == hi {
        return Ok(Estimate::ZERO);
    }
    let (a, b, sign) = if lo < hi {
        (lo, hi, 1.0)
    } else {
        (hi, lo, -1.0)
    };

    ws.heap.clear();
    let mut evaluations = 0u64;
    let first = evaluate_interval(ws, &mut f, a, b, &mut evaluations)?;
    let mut total_value = first.value;
    let mut total_error = first.error;
    ws.heap.push(first);

    let mut eps = EpsilonTable::new();
    let mut best_extrap: Option<(f64, f64)> = None;

    let tolerance = |value: f64| cfg.errabs.max(cfg.errrel * value.abs());

    let mut iterations = 0usize;
    while total_error > tolerance(total_value) {
        if ws.heap.len() >= cfg.max_subdivisions {
            // Try the extrapolated answer before reporting failure.
            if let Some((ev, ee)) = best_extrap {
                if ee <= tolerance(ev) {
                    return Ok(Estimate {
                        value: sign * ev,
                        abs_error: ee,
                        evaluations,
                    });
                }
            }
            return Err(QuadError::MaxSubdivisions {
                best: Estimate {
                    value: sign * total_value,
                    abs_error: total_error,
                    evaluations,
                },
                limit: cfg.max_subdivisions,
            });
        }
        let worst = ws
            .heap
            .pop()
            .expect("heap holds at least the initial interval");
        let mid = 0.5 * (worst.lo + worst.hi);
        if mid <= worst.lo || mid >= worst.hi {
            // The interval cannot be split further in f64: round-off.
            ws.heap.push(worst);
            return Err(QuadError::RoundoffDetected {
                best: Estimate {
                    value: sign * total_value,
                    abs_error: total_error,
                    evaluations,
                },
            });
        }
        let left = evaluate_interval(ws, &mut f, worst.lo, mid, &mut evaluations)?;
        let right = evaluate_interval(ws, &mut f, mid, worst.hi, &mut evaluations)?;
        total_value += left.value + right.value - worst.value;
        total_error += left.error + right.error - worst.error;
        ws.heap.push(left);
        ws.heap.push(right);

        if cfg.use_extrapolation {
            eps.push(total_value);
            if let Some((ev, ee)) = eps.extrapolated() {
                if ee.is_finite() && best_extrap.is_none_or(|(_, be)| ee < be) {
                    best_extrap = Some((ev, ee));
                }
            }
        }
        iterations += 1;
        if iterations > 16 * cfg.max_subdivisions {
            break; // Defensive: should be unreachable.
        }
    }

    // Prefer the extrapolated value when it claims better error AND the
    // raw sum has essentially converged to it.
    if let Some((ev, ee)) = best_extrap {
        if ee < total_error && (ev - total_value).abs() <= total_error {
            return Ok(Estimate {
                value: sign * ev,
                abs_error: ee.max(f64::EPSILON * ev.abs()),
                evaluations,
            });
        }
    }
    Ok(Estimate {
        value: sign * total_value,
        abs_error: total_error,
        evaluations,
    })
}

fn evaluate_interval<F: FnMut(f64) -> f64>(
    ws: &QagsWorkspace,
    f: &mut F,
    lo: f64,
    hi: f64,
    evaluations: &mut u64,
) -> QuadResult<Interval> {
    let mut bad_at = None;
    let mut wrap = |x: f64| {
        let y = f(x);
        if !y.is_finite() && bad_at.is_none() {
            bad_at = Some(x);
        }
        y
    };
    let low = ws.low_rule.integrate(&mut wrap, lo, hi);
    let high = ws.high_rule.integrate(&mut wrap, lo, hi);
    *evaluations += low.evaluations + high.evaluations;
    if let Some(at) = bad_at {
        return Err(QuadError::NonFiniteIntegrand { at });
    }
    // QUADPACK-style error heuristic: the raw difference, sharpened when it
    // is already small relative to the magnitude of the integral.
    let diff = (high.value - low.value).abs();
    let scale = high.value.abs().max(f64::MIN_POSITIVE);
    let error = if diff == 0.0 {
        f64::EPSILON * scale
    } else {
        let ratio = (200.0 * diff / scale).min(1.0);
        (scale * ratio.powf(1.5))
            .max(f64::EPSILON * scale)
            .min(diff * 200.0)
    };
    Ok(Interval {
        lo,
        hi,
        value: high.value,
        error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_integrand_converges() {
        let est = qags(f64::exp, 0.0, 1.0, 1e-12, 1e-12).unwrap();
        assert!((est.value - (std::f64::consts::E - 1.0)).abs() < 1e-10);
    }

    #[test]
    fn true_error_within_reported_error() {
        let exact = 2.0;
        let est = qags(f64::sin, 0.0, std::f64::consts::PI, 1e-10, 1e-10).unwrap();
        assert!((est.value - exact).abs() <= est.abs_error.max(1e-10));
    }

    #[test]
    fn handles_integrable_endpoint_singularity() {
        // integral of 1/sqrt(x) over (0, 1] = 2. Evaluate just inside.
        let est = qags(|x| 1.0 / x.max(1e-300).sqrt(), 1e-12, 1.0, 1e-8, 1e-8).unwrap();
        assert!((est.value - 2.0).abs() < 1e-3, "value {}", est.value);
    }

    #[test]
    fn empty_interval_is_zero() {
        let est = qags(|x| x * x, 2.0, 2.0, 1e-10, 1e-10).unwrap();
        assert_eq!(est.value, 0.0);
        assert_eq!(est.evaluations, 0);
    }

    #[test]
    fn reversed_interval_negates() {
        let fwd = qags(|x| x * x, 0.0, 1.0, 1e-12, 1e-12).unwrap();
        let rev = qags(|x| x * x, 1.0, 0.0, 1e-12, 1e-12).unwrap();
        assert!((fwd.value + rev.value).abs() < 1e-13);
    }

    #[test]
    fn rejects_nan_endpoint() {
        let err = qags(|x| x, f64::NAN, 1.0, 1e-8, 1e-8).unwrap_err();
        assert!(matches!(err, QuadError::BadInterval { .. }));
    }

    #[test]
    fn rejects_zero_tolerances() {
        let err = qags(|x| x, 0.0, 1.0, 0.0, 0.0).unwrap_err();
        assert!(matches!(err, QuadError::BadTolerance { .. }));
    }

    #[test]
    fn reports_non_finite_integrand() {
        let err = qags(|x| 1.0 / (x - 0.5), 0.0, 1.0, 1e-13, 1e-13);
        // Either the singular point is never hit exactly (fine) or the
        // routine reports it; in both cases we must not return Ok with a
        // wildly wrong tiny error for a divergent integral.
        if let Ok(est) = err {
            assert!(est.abs_error > 0.0);
        }
    }

    #[test]
    fn max_subdivisions_carries_best_estimate() {
        let cfg = AdaptiveConfig {
            errabs: 1e-300,
            errrel: 1e-15,
            max_subdivisions: 3,
            use_extrapolation: false,
        };
        let mut ws = QagsWorkspace::new();
        // Nastily oscillatory at this budget.
        let r = qags_with(&mut ws, cfg, |x: f64| (50.0 * x).sin().abs(), 0.0, 1.0);
        match r {
            Err(QuadError::MaxSubdivisions { best, limit }) => {
                assert_eq!(limit, 3);
                assert!(best.value.is_finite());
            }
            Ok(_) => {} // acceptable if it converged anyway
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn workspace_reuse_is_consistent() {
        let mut ws = QagsWorkspace::new();
        let cfg = AdaptiveConfig::default();
        let a = qags_with(&mut ws, cfg, f64::exp, 0.0, 1.0).unwrap();
        let b = qags_with(&mut ws, cfg, f64::exp, 0.0, 1.0).unwrap();
        assert_eq!(a.value, b.value);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn rrc_like_integrand() {
        // Shape of the RRC integrand: sigma(E) * (E - I) * exp(-(E-I)/kT) * E
        // over one narrow bin; must converge fast and agree with Simpson on
        // many panels.
        let kt = 0.8;
        let ionization = 1.2;
        let f = |e: f64| {
            let de = (e - ionization).max(0.0);
            de.powf(0.5) * (-de / kt).exp() * e
        };
        let est = qags(f, 1.3, 1.35, 1e-12, 1e-10).unwrap();
        let reference = crate::rules::simpson(f, 1.3, 1.35, 4096);
        assert!((est.value - reference.value).abs() < 1e-9);
    }
}
