//! Gauss–Legendre quadrature with computed nodes.
//!
//! Nodes and weights are found by Newton iteration on the Legendre
//! polynomial `P_n`, seeded with the Chebyshev-like asymptotic guess.
//! This reproduces tabulated values to machine precision for all orders
//! used here, avoiding any hand-copied constant tables.

use crate::Estimate;

/// A Gauss–Legendre rule of fixed order `n` on the reference interval
/// `[-1, 1]`, mappable to any finite `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussLegendre {
    /// Positive-half nodes (the rule is symmetric); `nodes[i]` in `(0, 1]`
    /// plus possibly 0 for odd orders.
    nodes: Vec<f64>,
    weights: Vec<f64>,
    order: usize,
}

impl GaussLegendre {
    /// Construct the `n`-point rule. `n` is clamped to `[1, 256]`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let n = n.clamp(1, 256);
        let m = n.div_ceil(2);
        let mut nodes = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        for i in 0..m {
            // Initial guess (Abramowitz & Stegun 25.4.30 style).
            let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            // Newton iteration on P_n(x) = 0.
            for _ in 0..100 {
                let (p, dp) = legendre_and_derivative(n, x);
                let dx = p / dp;
                x -= dx;
                if dx.abs() < 1e-15 {
                    break;
                }
            }
            let (_, dp) = legendre_and_derivative(n, x);
            nodes.push(x);
            weights.push(2.0 / ((1.0 - x * x) * dp * dp));
        }
        GaussLegendre {
            nodes,
            weights,
            order: n,
        }
    }

    /// The order (number of points) of the rule.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Integrate `f` over `[lo, hi]` with this rule.
    pub fn integrate<F: FnMut(f64) -> f64>(&self, mut f: F, lo: f64, hi: f64) -> Estimate {
        let c = 0.5 * (hi + lo);
        let h = 0.5 * (hi - lo);
        let mut sum = 0.0;
        let mut evals = 0u64;
        for (&x, &w) in self.nodes.iter().zip(&self.weights) {
            if x.abs() < 1e-14 && self.order % 2 == 1 {
                // The central node of an odd-order rule: count once.
                sum += w * f(c);
                evals += 1;
            } else {
                sum += w * (f(c + h * x) + f(c - h * x));
                evals += 2;
            }
        }
        let value = sum * h;
        Estimate {
            value,
            abs_error: f64::EPSILON * value.abs() * self.order as f64,
            evaluations: evals,
        }
    }
}

/// Evaluate `(P_n(x), P_n'(x))` via the standard three-term recurrence.
fn legendre_and_derivative(n: usize, x: f64) -> (f64, f64) {
    let mut p0 = 1.0; // P_0
    let mut p1 = x; // P_1
    if n == 0 {
        return (1.0, 0.0);
    }
    for k in 2..=n {
        let kf = k as f64;
        let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
        p0 = p1;
        p1 = p2;
    }
    // P_n'(x) = n (x P_n - P_{n-1}) / (x^2 - 1)
    let dp = (n as f64) * (x * p1 - p0) / (x * x - 1.0);
    (p1, dp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_two() {
        for n in [1usize, 2, 3, 5, 8, 16, 33, 64] {
            let rule = GaussLegendre::new(n);
            let mut total = 0.0;
            for (i, &w) in rule.weights.iter().enumerate() {
                let x = rule.nodes[i];
                if x.abs() < 1e-14 && n % 2 == 1 {
                    total += w;
                } else {
                    total += 2.0 * w;
                }
            }
            assert!((total - 2.0).abs() < 1e-12, "order {n}: sum {total}");
        }
    }

    #[test]
    fn n_point_rule_exact_to_degree_2n_minus_1() {
        for n in [2usize, 4, 7, 12] {
            let rule = GaussLegendre::new(n);
            let deg = 2 * n - 1;
            // Integrate x^deg over [0, 1]; exact value 1/(deg+1).
            let est = rule.integrate(|x| x.powi(deg as i32), 0.0, 1.0);
            let exact = 1.0 / (deg as f64 + 1.0);
            assert!(
                (est.value - exact).abs() < 1e-12,
                "n={n}: {} vs {exact}",
                est.value
            );
        }
    }

    #[test]
    fn two_point_nodes_match_known_value() {
        // x = 1/sqrt(3) for the 2-point rule.
        let rule = GaussLegendre::new(2);
        assert!((rule.nodes[0] - 1.0 / 3.0f64.sqrt()).abs() < 1e-14);
        assert!((rule.weights[0] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn converges_on_transcendental() {
        let exact = 1.0 - (-2.0f64).exp();
        let r8 = GaussLegendre::new(8).integrate(|x| (-x).exp(), 0.0, 2.0);
        assert!((r8.value - exact).abs() < 1e-12);
    }

    #[test]
    fn odd_order_has_central_node() {
        let rule = GaussLegendre::new(5);
        assert!(rule.nodes.iter().any(|x| x.abs() < 1e-14));
        let est = rule.integrate(|x| x.powi(9), -1.0, 1.0);
        assert!(est.value.abs() < 1e-13); // odd function
    }

    #[test]
    fn evaluation_count_equals_order() {
        for n in [2usize, 5, 10, 21] {
            let mut calls = 0u64;
            let est = GaussLegendre::new(n).integrate(
                |x| {
                    calls += 1;
                    x
                },
                0.0,
                1.0,
            );
            assert_eq!(calls, n as u64);
            assert_eq!(est.evaluations, n as u64);
        }
    }
}
