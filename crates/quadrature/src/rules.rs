//! Fixed composite Newton–Cotes rules.
//!
//! These are the cheap, non-adaptive back-ends. Composite Simpson with 64
//! panels per energy bin is what the paper's GPU kernel evaluates (it
//! "can provide enough accuracy just by dividing the integral range into
//! 64 equal pieces", paper §IV-B); trapezoid and Boole exist as cheaper /
//! higher-order alternatives for the pluggable kernel interface.

use crate::Estimate;

/// A composite Newton–Cotes rule selector, used where a caller wants to
/// pick the rule at run time (the paper's "general interface of the
/// GPU-accelerated component ... different numerical integration
/// algorithms can be connected on demand").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompositeRule {
    /// Composite midpoint rule, order 2.
    Midpoint,
    /// Composite trapezoid rule, order 2.
    Trapezoid,
    /// Composite Simpson rule, order 4. The paper's GPU default.
    Simpson,
    /// Composite Boole rule, order 6.
    Boole,
}

impl CompositeRule {
    /// Apply the rule to `f` over `[lo, hi]` with `panels` subintervals.
    pub fn integrate<F: FnMut(f64) -> f64>(
        self,
        f: F,
        lo: f64,
        hi: f64,
        panels: usize,
    ) -> Estimate {
        match self {
            CompositeRule::Midpoint => midpoint(f, lo, hi, panels),
            CompositeRule::Trapezoid => trapezoid(f, lo, hi, panels),
            CompositeRule::Simpson => simpson(f, lo, hi, panels),
            CompositeRule::Boole => boole(f, lo, hi, panels),
        }
    }

    /// Number of integrand evaluations the rule performs for `panels`
    /// subintervals. Used by the GPU cost model to charge work.
    #[must_use]
    pub fn evaluations(self, panels: usize) -> u64 {
        let panels = panels.max(1) as u64;
        match self {
            CompositeRule::Midpoint => panels,
            CompositeRule::Trapezoid => panels + 1,
            CompositeRule::Simpson => 2 * panels + 1,
            CompositeRule::Boole => 4 * panels + 1,
        }
    }

    /// Algebraic order of accuracy of the rule (error ~ h^order).
    #[must_use]
    pub fn order(self) -> u32 {
        match self {
            CompositeRule::Midpoint | CompositeRule::Trapezoid => 2,
            CompositeRule::Simpson => 4,
            CompositeRule::Boole => 6,
        }
    }
}

fn span(lo: f64, hi: f64, panels: usize) -> (f64, usize) {
    let panels = panels.max(1);
    ((hi - lo) / panels as f64, panels)
}

/// Composite midpoint rule with `panels` subintervals.
pub fn midpoint<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, panels: usize) -> Estimate {
    let (h, n) = span(lo, hi, panels);
    let mut sum = 0.0;
    for i in 0..n {
        sum += f(lo + (i as f64 + 0.5) * h);
    }
    let value = sum * h;
    Estimate {
        value,
        abs_error: rough_error(value, n, 2),
        evaluations: n as u64,
    }
}

/// Composite trapezoid rule with `panels` subintervals.
pub fn trapezoid<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, panels: usize) -> Estimate {
    let (h, n) = span(lo, hi, panels);
    let mut sum = 0.5 * (f(lo) + f(hi));
    for i in 1..n {
        sum += f(lo + i as f64 * h);
    }
    let value = sum * h;
    Estimate {
        value,
        abs_error: rough_error(value, n, 2),
        evaluations: (n + 1) as u64,
    }
}

/// Composite Simpson rule with `panels` subintervals (each panel uses the
/// three-point Simpson formula, so the total node count is `2*panels + 1`).
///
/// This is the exact arithmetic performed per energy bin by the simulated
/// GPU kernel (the `gpu-sim` crate's port of paper Algorithm 2), kept here so the
/// CPU reference path and the device path share one implementation.
pub fn simpson<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, panels: usize) -> Estimate {
    let (h, n) = span(lo, hi, panels);
    let mut sum = f(lo) + f(hi);
    for i in 0..n {
        let a = lo + i as f64 * h;
        sum += 4.0 * f(a + 0.5 * h);
        if i + 1 < n {
            sum += 2.0 * f(a + h);
        }
    }
    let value = sum * h / 6.0;
    Estimate {
        value,
        abs_error: rough_error(value, n, 4),
        evaluations: (2 * n + 1) as u64,
    }
}

/// Composite Boole (5-point Newton–Cotes) rule with `panels` subintervals.
pub fn boole<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, panels: usize) -> Estimate {
    let (h, n) = span(lo, hi, panels);
    let q = h / 4.0;
    let mut value = 0.0;
    // Panels share their endpoints; evaluate each node exactly once.
    let mut left_val = f(lo);
    for i in 0..n {
        let a = lo + i as f64 * h;
        let right_val = f(a + 4.0 * q);
        let s = 7.0 * left_val
            + 32.0 * f(a + q)
            + 12.0 * f(a + 2.0 * q)
            + 32.0 * f(a + 3.0 * q)
            + 7.0 * right_val;
        value += s * h / 90.0;
        left_val = right_val;
    }
    Estimate {
        value,
        abs_error: rough_error(value, n, 6),
        evaluations: (4 * n + 1) as u64,
    }
}

/// A cheap a-priori error heuristic: `|I| * C / panels^order`, clamped to
/// machine precision. Fixed rules cannot measure their own error; callers
/// that need certified errors use [`crate::adaptive::qags`].
fn rough_error(value: f64, panels: usize, order: u32) -> f64 {
    let scale = (panels as f64).powi(order as i32);
    (value.abs() / scale).max(f64::EPSILON * value.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn simpson_exact_on_cubics() {
        // Simpson integrates polynomials of degree <= 3 exactly.
        let est = simpson(|x| 3.0 * x * x * x - x + 2.0, -1.0, 2.0, 1);
        let exact = |x: f64| 0.75 * x.powi(4) - 0.5 * x * x + 2.0 * x;
        assert!(close(est.value, exact(2.0) - exact(-1.0), 1e-14));
    }

    #[test]
    fn boole_exact_on_quintics() {
        let est = boole(|x| x.powi(5), 0.0, 1.0, 1);
        assert!(close(est.value, 1.0 / 6.0, 1e-14));
    }

    #[test]
    fn trapezoid_exact_on_linear() {
        let est = trapezoid(|x| 2.0 * x + 1.0, 0.0, 3.0, 4);
        assert!(close(est.value, 12.0, 1e-14));
    }

    #[test]
    fn midpoint_exact_on_linear() {
        let est = midpoint(|x| 5.0 * x - 2.0, -1.0, 1.0, 3);
        assert!(close(est.value, -4.0, 1e-14));
    }

    #[test]
    fn simpson_converges_on_exp() {
        let exact = std::f64::consts::E - 1.0;
        let coarse = simpson(f64::exp, 0.0, 1.0, 2);
        let fine = simpson(f64::exp, 0.0, 1.0, 64);
        assert!((fine.value - exact).abs() < (coarse.value - exact).abs());
        assert!((fine.value - exact).abs() < 1e-10);
    }

    #[test]
    fn simpson_64_panels_matches_paper_accuracy_claim() {
        // Paper: "the Simpson algorithm can provide enough accuracy just by
        // dividing the integral range into 64 equal pieces". Check a smooth,
        // exponentially decaying integrand like the RRC kernel.
        let exact = 1.0 - (-1.0f64).exp();
        let est = simpson(|x| (-x).exp(), 0.0, 1.0, 64);
        assert!((est.value - exact).abs() / exact < 1e-9);
    }

    #[test]
    fn evaluation_counts_match_actual_calls() {
        for rule in [
            CompositeRule::Midpoint,
            CompositeRule::Trapezoid,
            CompositeRule::Simpson,
            CompositeRule::Boole,
        ] {
            let mut calls = 0u64;
            let est = rule.integrate(
                |x| {
                    calls += 1;
                    x
                },
                0.0,
                1.0,
                7,
            );
            assert_eq!(calls, rule.evaluations(7), "{rule:?}");
            assert_eq!(est.evaluations, calls, "{rule:?}");
        }
    }

    #[test]
    fn zero_panels_clamps_to_one() {
        let est = simpson(|x| x, 0.0, 2.0, 0);
        assert!(close(est.value, 2.0, 1e-14));
    }

    #[test]
    fn reversed_interval_gives_negated_value() {
        let fwd = simpson(|x| x * x, 0.0, 1.0, 8);
        let rev = simpson(|x| x * x, 1.0, 0.0, 8);
        assert!(close(fwd.value, -rev.value, 1e-14));
    }

    #[test]
    fn rule_order_increases_accuracy_on_smooth_f() {
        let exact = (std::f64::consts::PI / 2.0).sin() - 0.0f64.sin();
        let n = 8;
        let et = trapezoid(f64::cos, 0.0, std::f64::consts::PI / 2.0, n);
        let es = simpson(f64::cos, 0.0, std::f64::consts::PI / 2.0, n);
        let eb = boole(f64::cos, 0.0, std::f64::consts::PI / 2.0, n);
        let errs = [
            (et.value - exact).abs(),
            (es.value - exact).abs(),
            (eb.value - exact).abs(),
        ];
        assert!(errs[0] > errs[1] && errs[1] > errs[2], "{errs:?}");
    }
}
