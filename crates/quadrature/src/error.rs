use std::fmt;

/// Errors reported by the adaptive quadrature routines.
#[derive(Debug, Clone, PartialEq)]
pub enum QuadError {
    /// The integration interval is degenerate or reversed in a way the
    /// routine cannot normalize (e.g. NaN endpoints).
    BadInterval { lo: f64, hi: f64 },
    /// Requested tolerances are unsatisfiable (both effectively zero or
    /// below machine precision for the magnitude of the integral).
    BadTolerance { errabs: f64, errrel: f64 },
    /// The subdivision limit was reached before the tolerance was met.
    /// The best estimate obtained so far is carried in the error so the
    /// caller can still use it (QUADPACK convention).
    MaxSubdivisions { best: crate::Estimate, limit: usize },
    /// Round-off error was detected: further subdivision cannot improve
    /// the estimate. Carries the best estimate so far.
    RoundoffDetected { best: crate::Estimate },
    /// The integrand returned a non-finite value at the given abscissa.
    NonFiniteIntegrand { at: f64 },
}

impl fmt::Display for QuadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuadError::BadInterval { lo, hi } => {
                write!(f, "bad integration interval [{lo}, {hi}]")
            }
            QuadError::BadTolerance { errabs, errrel } => {
                write!(
                    f,
                    "unsatisfiable tolerances errabs={errabs}, errrel={errrel}"
                )
            }
            QuadError::MaxSubdivisions { limit, best } => write!(
                f,
                "subdivision limit {limit} reached (best value {} +/- {})",
                best.value, best.abs_error
            ),
            QuadError::RoundoffDetected { best } => write!(
                f,
                "round-off detected (best value {} +/- {})",
                best.value, best.abs_error
            ),
            QuadError::NonFiniteIntegrand { at } => {
                write!(f, "integrand returned a non-finite value at x={at}")
            }
        }
    }
}

impl std::error::Error for QuadError {}

/// Convenience alias for quadrature results.
pub type QuadResult<T> = Result<T, QuadError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QuadError::BadInterval { lo: 1.0, hi: 0.0 };
        assert!(e.to_string().contains("bad integration interval"));
        let e = QuadError::NonFiniteIntegrand { at: 2.5 };
        assert!(e.to_string().contains("x=2.5"));
    }
}
