//! Lane-parallel vector math with zero external dependencies.
//!
//! The RRC hot path bottoms out in `exp` calls — one per quadrature
//! node once the sample loop is vectorized — so this module provides a
//! data-parallel exponential, [`vexp`], built the classic Cephes way:
//!
//! 1. **Range reduction**: decompose `x = n·ln2 + r` with `n` the
//!    nearest integer to `x·log2(e)` (computed branch-free via the
//!    round-to-nearest "magic number" `1.5·2^52`) and `ln2` split into
//!    a high and a low part so `r = (x − n·C1) − n·C2` is exact to
//!    within one rounding of the tail. This bounds `|r| ≤ ln2/2 + ε`.
//! 2. **Polynomial core**: a degree-12 Horner evaluation of the Taylor
//!    coefficients `1/k!` on `r`. The truncation remainder is below
//!    `0.3466^13/13! ≈ 1.7e−16`, comfortably inside the ≤ 1e−14
//!    relative-error budget the spectral layer requires.
//! 3. **Reassembly**: `2^n` is built by integer bit-twiddling of the
//!    exponent field and multiplied back in.
//!
//! Two implementations are selected once per process via
//! `is_x86_feature_detected!`:
//!
//! * **AVX2+FMA intrinsics** — the fast path. Remainder lanes (batch
//!   length not a multiple of the chunk width) go through a scalar
//!   replay of the same sequence built on [`f64::mul_add`]; software
//!   fma is correctly rounded, i.e. bitwise identical to the hardware
//!   FMA lanes, so results never depend on where an element falls
//!   relative to the chunk boundaries.
//! * **Portable chunked lanes** — `[f64; 4]` loops of plain multiplies
//!   and adds (no fused ops) the compiler can autovectorize on any
//!   target, with the same-sequence scalar [`vexp1`] on the remainder.
//!
//! Each path is internally position-invariant; across paths the fused
//! vs unfused rounding differs by at most ~1 ulp, far inside the 1e−14
//! budget. The environment variable `HSPEC_SIMD=scalar` forces the
//! portable path so CI can cover both on one machine.
//!
//! [`MathMode`] is the switch the rest of the system threads through:
//! `Exact` keeps today's scalar-`exp` bitwise behavior (and stays the
//! default under `deterministic_kernel`), `Vector` routes whole node
//! grids through [`vexp`] and enables lane-parallel quadrature
//! accumulation. NaN inputs are outside the contract (the RRC integrand
//! never produces them); arguments below −708 underflow to `0.0` and
//! above +708 overflow to `+∞`.

use std::sync::OnceLock;

/// Which math kernels the spectral hot path uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MathMode {
    /// Scalar libm `exp` and the seed summation order — bitwise
    /// reproducible, the reference everything else is checked against.
    #[default]
    Exact,
    /// Lane-parallel [`vexp`] sampling and chunked weighted
    /// accumulation — relative deviation from `Exact` ≤ 1e−12.
    Vector,
}

impl MathMode {
    /// Parse the spelling used by run-spec JSON and the CLI.
    #[must_use]
    pub fn parse(s: &str) -> Option<MathMode> {
        match s {
            "exact" => Some(MathMode::Exact),
            "vector" => Some(MathMode::Vector),
            _ => None,
        }
    }

    /// The inverse of [`MathMode::parse`].
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            MathMode::Exact => "exact",
            MathMode::Vector => "vector",
        }
    }
}

/// Lane width of the chunked loops. Fixed at 4 (`__m256d`); wider
/// hardware simply pipelines consecutive chunks.
pub const LANES: usize = 4;

/// log2(e), the range-reduction multiplier.
const LOG2E: f64 = std::f64::consts::LOG2_E;
/// 1.5·2^52: adding then subtracting rounds to the nearest integer.
const MAGIC: f64 = 6_755_399_441_055_744.0;
/// ln2 split: C1 holds the high bits exactly, C2 the remainder.
const C1: f64 = 6.931_457_519_531_25e-1;
const C2: f64 = 1.428_606_820_309_417_2e-6;
/// Arguments below this underflow to zero, above it overflow to +∞.
/// ±708 keeps `2^n` strictly inside the normal range.
const LO: f64 = -708.0;
const HI: f64 = 708.0;

/// Taylor coefficients 1/k!, highest order first (degree 12).
const POLY: [f64; 13] = [
    1.0 / 479_001_600.0,
    1.0 / 39_916_800.0,
    1.0 / 3_628_800.0,
    1.0 / 362_880.0,
    1.0 / 40_320.0,
    1.0 / 5_040.0,
    1.0 / 720.0,
    1.0 / 120.0,
    1.0 / 24.0,
    1.0 / 6.0,
    0.5,
    1.0,
    1.0,
];

/// Scalar vectorized-`exp`, unfused arithmetic: the exact per-element
/// operation sequence of the portable path, used for its remainder
/// lanes and for one-off evaluations.
#[must_use]
#[inline]
pub fn vexp1(x: f64) -> f64 {
    // Not `clamp`: NaN must saturate to LO exactly like the
    // `_mm256_max_pd`/`_mm256_min_pd` chain of the intrinsics path.
    #[allow(clippy::manual_clamp)]
    let xc = x.max(LO).min(HI);
    let nf = xc * LOG2E + MAGIC;
    let n = nf - MAGIC;
    let r = (xc - n * C1) - n * C2;
    let mut p = POLY[0];
    for &c in &POLY[1..] {
        p = p * r + c;
    }
    finish(x, n, p)
}

/// Scalar replay of the AVX2+FMA lane sequence. [`f64::mul_add`] is
/// correctly rounded, so this is bitwise identical to a hardware FMA
/// lane — the remainder-tail handler of the intrinsics path.
#[must_use]
#[inline]
fn vexp1_fused(x: f64) -> f64 {
    // Not `clamp`: NaN handling must match the vector min/max chain.
    #[allow(clippy::manual_clamp)]
    let xc = x.max(LO).min(HI);
    let nf = xc.mul_add(LOG2E, MAGIC);
    let n = nf - MAGIC;
    let r = (-n).mul_add(C2, (-n).mul_add(C1, xc));
    let mut p = POLY[0];
    for &c in &POLY[1..] {
        p = p.mul_add(r, c);
    }
    finish(x, n, p)
}

/// Shared epilogue: `p · 2^n` with the out-of-range lanes overridden.
#[inline]
fn finish(x: f64, n: f64, p: f64) -> f64 {
    // n is integral and in [-1022, 1022]; 2^n is a normal double.
    let scale = f64::from_bits(((n as i64 + 1023) as u64) << 52);
    let y = p * scale;
    if x < LO {
        0.0
    } else if x > HI {
        f64::INFINITY
    } else {
        y
    }
}

/// Replace every element of `xs` with its exponential, in place.
///
/// Dispatches once per process: AVX2+FMA intrinsics when the CPU has
/// them (and `HSPEC_SIMD=scalar` is not set), otherwise the portable
/// chunked loop. Relative error is ≤ 1e−14 against [`f64::exp`] over
/// the whole finite range on either path, and each path gives
/// bit-identical answers for an element regardless of batch length or
/// position — see the module docs.
#[inline]
pub fn vexp(xs: &mut [f64]) {
    dispatch()(xs);
}

/// `true` when the AVX2+FMA intrinsics path is active.
#[must_use]
pub fn using_avx2() -> bool {
    resolve().1
}

/// Resolved implementation: the batch entry point plus an
/// `using_avx2` flag.
type VexpImpl = (fn(&mut [f64]), bool);

fn dispatch() -> fn(&mut [f64]) {
    resolve().0
}

fn resolve() -> VexpImpl {
    static IMPL: OnceLock<VexpImpl> = OnceLock::new();
    *IMPL.get_or_init(|| {
        let forced_scalar = std::env::var("HSPEC_SIMD").is_ok_and(|v| v == "scalar");
        #[cfg(target_arch = "x86_64")]
        if !forced_scalar && is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return (vexp_avx2_entry, true);
        }
        let _ = forced_scalar;
        (vexp_portable, false)
    })
}

/// Portable chunked-lane path: four independent [`vexp1`] pipelines per
/// iteration, written so the compiler can keep the Horner chains of all
/// lanes in flight at once.
fn vexp_portable(xs: &mut [f64]) {
    let mut chunks = xs.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        let mut lane = [0.0f64; LANES];
        for (l, &x) in lane.iter_mut().zip(chunk.iter()) {
            *l = vexp1(x);
        }
        chunk.copy_from_slice(&lane);
    }
    for x in chunks.into_remainder() {
        *x = vexp1(*x);
    }
}

#[cfg(target_arch = "x86_64")]
fn vexp_avx2_entry(xs: &mut [f64]) {
    // Safety: selected only after `is_x86_feature_detected!` confirmed
    // both avx2 and fma.
    unsafe { vexp_avx2(xs) }
}

/// One 4-lane exponential in the exact operation order of
/// [`vexp1_fused`]; `2^n` reassembly uses exact integer ops.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[inline]
unsafe fn exp4(x: core::arch::x86_64::__m256d) -> core::arch::x86_64::__m256d {
    use core::arch::x86_64::{
        _mm256_add_epi64, _mm256_andnot_pd, _mm256_blendv_pd, _mm256_castsi256_pd, _mm256_cmp_pd,
        _mm256_cvtepi32_epi64, _mm256_cvtpd_epi32, _mm256_fmadd_pd, _mm256_fnmadd_pd,
        _mm256_max_pd, _mm256_min_pd, _mm256_mul_pd, _mm256_set1_epi64x, _mm256_set1_pd,
        _mm256_slli_epi64, _mm256_sub_pd, _CMP_GT_OQ, _CMP_LT_OQ,
    };
    let lo = _mm256_set1_pd(LO);
    let hi = _mm256_set1_pd(HI);
    let xc = _mm256_min_pd(_mm256_max_pd(x, lo), hi);
    let magic = _mm256_set1_pd(MAGIC);
    let nf = _mm256_fmadd_pd(xc, _mm256_set1_pd(LOG2E), magic);
    let n = _mm256_sub_pd(nf, magic);
    let r = _mm256_fnmadd_pd(
        n,
        _mm256_set1_pd(C2),
        _mm256_fnmadd_pd(n, _mm256_set1_pd(C1), xc),
    );
    let mut p = _mm256_set1_pd(POLY[0]);
    for &c in &POLY[1..] {
        p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(c));
    }
    // n fits i32 exactly; build 2^n in the exponent field.
    let ni = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(n));
    let scale = _mm256_castsi256_pd(_mm256_slli_epi64(
        _mm256_add_epi64(ni, _mm256_set1_epi64x(1023)),
        52,
    ));
    let y = _mm256_mul_pd(p, scale);
    // Underflow lanes (x < LO) to 0.0, overflow lanes (x > HI) to +∞.
    let under = _mm256_cmp_pd::<_CMP_LT_OQ>(x, lo);
    let over = _mm256_cmp_pd::<_CMP_GT_OQ>(x, hi);
    _mm256_blendv_pd(
        _mm256_andnot_pd(under, y),
        _mm256_set1_pd(f64::INFINITY),
        over,
    )
}

/// AVX2+FMA path. One chunk per iteration — the loop carries no
/// dependency, so the out-of-order window already overlaps the Horner
/// chains of consecutive chunks (wider manual interleaving was measured
/// slower here: it spills the broadcast coefficient registers).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn vexp_avx2(xs: &mut [f64]) {
    use core::arch::x86_64::{_mm256_loadu_pd, _mm256_storeu_pd};
    let mut chunks = xs.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        let y = exp4(_mm256_loadu_pd(chunk.as_ptr()));
        _mm256_storeu_pd(chunk.as_mut_ptr(), y);
    }
    for x in chunks.into_remainder() {
        *x = vexp1_fused(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(approx: f64, exact: f64) -> f64 {
        if exact == 0.0 {
            approx.abs()
        } else {
            ((approx - exact) / exact).abs()
        }
    }

    #[test]
    fn vexp_matches_libm_within_budget_over_the_rrc_range() {
        // Log-spaced magnitudes covering the full RRC exponent range:
        // the integrand argument is -(E - threshold)/kT, which the
        // 40 kT window clamps to [-40, 0], but grids and tests push
        // arguments anywhere in the finite range. Both scalar
        // sequences — unfused (portable path) and fused (AVX2 tail) —
        // must meet the budget; the dispatched batch form is covered by
        // the position-invariance test below.
        let mut worst = 0.0f64;
        let mut mag = 1e-300f64;
        while mag < 708.0 {
            for x in [mag, -mag] {
                worst = worst.max(rel_err(vexp1(x), x.exp()));
                worst = worst.max(rel_err(vexp1_fused(x), x.exp()));
            }
            mag *= 1.7;
        }
        // The cutoff region the window logic actually exercises.
        for i in 0..=4000 {
            let x = -40.0 * (i as f64) / 4000.0;
            worst = worst.max(rel_err(vexp1(x), x.exp()));
            worst = worst.max(rel_err(vexp1_fused(x), x.exp()));
        }
        assert!(worst <= 1e-14, "worst relative error {worst:e}");
    }

    #[test]
    fn vexp1_edge_cases() {
        for f in [vexp1, vexp1_fused] {
            assert_eq!(f(0.0), 1.0);
            assert_eq!(f(f64::NEG_INFINITY), 0.0);
            assert_eq!(f(f64::INFINITY), f64::INFINITY);
            assert_eq!(f(-750.0), 0.0, "deep underflow flushes to zero");
            assert_eq!(f(750.0), f64::INFINITY);
            // Just inside the clamp: still a normal, still accurate.
            let x = -707.9;
            assert!(rel_err(f(x), x.exp()) <= 1e-14);
        }
    }

    #[test]
    fn batches_are_position_invariant_for_all_remainder_lengths() {
        // Lengths covering every `len % LANES` residue: an element's
        // result must not depend on whether it landed in a full chunk
        // or the scalar remainder tail, on whichever path dispatch
        // chose. Evaluating one element at a time forces every element
        // through the tail handler.
        for len in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 129] {
            let xs: Vec<f64> = (0..len)
                .map(|i| -40.0 * (i as f64 + 0.5) / len as f64)
                .collect();
            let mut batch = xs.clone();
            vexp(&mut batch);
            for (i, (&got, &x)) in batch.iter().zip(&xs).enumerate() {
                let mut one = [x];
                vexp(&mut one);
                assert_eq!(
                    got.to_bits(),
                    one[0].to_bits(),
                    "len {len} element {i} (x = {x})"
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_and_portable_paths_agree_to_the_last_ulp() {
        if !(is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")) {
            return;
        }
        // Fused vs unfused rounding may differ, but only in the final
        // bit of the polynomial/reduction arithmetic: ≤ 2 ulp apart.
        let xs: Vec<f64> = (0..1003)
            .map(|i| -709.5 + 1419.0 * (i as f64) / 1002.0)
            .collect();
        let mut a = xs.clone();
        // Safety: guarded by the feature check above.
        unsafe { vexp_avx2(&mut a) };
        let mut b = xs.clone();
        vexp_portable(&mut b);
        for (i, (&fa, &fb)) in a.iter().zip(&b).enumerate() {
            let ulps = (fa.to_bits() as i64 - fb.to_bits() as i64).abs();
            assert!(ulps <= 2, "element {i} (x = {}): {ulps} ulp apart", xs[i]);
        }
    }

    #[test]
    fn math_mode_parses_and_round_trips() {
        assert_eq!(MathMode::parse("exact"), Some(MathMode::Exact));
        assert_eq!(MathMode::parse("vector"), Some(MathMode::Vector));
        assert_eq!(MathMode::parse("fast"), None);
        assert_eq!(MathMode::default(), MathMode::Exact);
        for m in [MathMode::Exact, MathMode::Vector] {
            assert_eq!(MathMode::parse(m.as_str()), Some(m));
        }
    }
}
