//! One-dimensional numerical integration.
//!
//! This crate provides the integration back-ends used throughout the
//! hybrid spectral-calculation system:
//!
//! * [`rules`] — fixed composite Newton–Cotes rules (midpoint, trapezoid,
//!   Simpson, Boole). Composite Simpson over 64 panels is the method the
//!   paper's GPU kernel runs per energy bin (paper Algorithm 2).
//! * [`romberg`](mod@romberg) — Romberg integration with a configurable number of
//!   dichotomy levels `k` (paper Eq. 3); used for the higher-accuracy /
//!   higher-cost experiments (paper Fig. 6, Table I).
//! * [`gauss`] — Gauss–Legendre rules with nodes computed to machine
//!   precision by Newton iteration on the Legendre polynomials.
//! * [`bins`] — fused bin-range composite quadrature
//!   ([`integrate_bins`]): one call integrates a contiguous run of
//!   energy bins, evaluating each shared bin edge exactly once while
//!   staying bitwise identical to the per-bin rules. This is the
//!   kernel-side hot path (what Algorithm 2's per-thread bin loop
//!   compiles to).
//! * [`simd`] — lane-parallel vector math ([`vexp`], a range-reduced
//!   polynomial exponential with AVX2 runtime dispatch and a portable
//!   fallback) and the [`MathMode`] switch between the bitwise-exact
//!   scalar kernels and the vectorized ones.
//! * [`adaptive`] — a QAGS-style globally adaptive quadrature (interval
//!   bisection driven by a worst-first heap, Wynn ε-extrapolation), the
//!   CPU fallback path of the scheduler, mirroring QUADPACK's `QAGS`
//!   call contract (`errabs`, `errrel`).
//! * [`improper`] — QAGI-style semi-infinite integrals (the `t/(1-t)`
//!   compactification) and a recursive adaptive Simpson that serves as
//!   an independent cross-check of the global strategy.
//!
//! All routines integrate `Fn(f64) -> f64` integrands over finite
//! intervals and report both a value and an error estimate.
//!
//! ```
//! use quadrature::{qags, romberg, simpson};
//!
//! let exact = 1.0 - (-1.0f64).exp();
//! let s = simpson(|x| (-x).exp(), 0.0, 1.0, 64);       // the GPU rule
//! let r = romberg(|x| (-x).exp(), 0.0, 1.0, 9);        // the high-accuracy rule
//! let q = qags(|x| (-x).exp(), 0.0, 1.0, 1e-12, 1e-10) // the CPU fallback
//!     .unwrap();
//! assert!((s.value - exact).abs() < 1e-9);
//! assert!((r.value - exact).abs() < 1e-12);
//! assert!((q.value - exact).abs() <= q.abs_error.max(1e-10));
//! ```

pub mod adaptive;
pub mod bins;
pub mod gauss;
pub mod improper;
pub mod romberg;
pub mod rules;
pub mod sampler;
pub mod simd;
pub mod wynn;

mod error;

pub use adaptive::{qags, qags_with, AdaptiveConfig, QagsWorkspace};
pub use bins::{integrate_bins, integrate_bins_sampled, integrate_bins_sampled_mode, BinRule};
pub use error::{QuadError, QuadResult};
pub use gauss::GaussLegendre;
pub use improper::{adaptive_simpson, qagi};
pub use romberg::romberg;
pub use rules::{boole, midpoint, simpson, trapezoid, CompositeRule};
pub use sampler::{BatchSampler, FnSampler};
pub use simd::{vexp, vexp1, MathMode};

/// Outcome of a quadrature routine: the integral estimate together with an
/// estimated absolute error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Approximation of the definite integral.
    pub value: f64,
    /// Estimated absolute error of `value`.
    pub abs_error: f64,
    /// Number of integrand evaluations performed.
    pub evaluations: u64,
}

impl Estimate {
    /// A zero estimate with no error, e.g. for an empty interval.
    pub const ZERO: Estimate = Estimate {
        value: 0.0,
        abs_error: 0.0,
        evaluations: 0,
    };

    /// Combine two estimates over adjacent intervals.
    #[must_use]
    pub fn merge(self, other: Estimate) -> Estimate {
        Estimate {
            value: self.value + other.value,
            abs_error: self.abs_error + other.abs_error,
            evaluations: self.evaluations + other.evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let a = Estimate {
            value: 1.0,
            abs_error: 0.1,
            evaluations: 5,
        };
        let b = Estimate {
            value: 2.0,
            abs_error: 0.2,
            evaluations: 7,
        };
        let m = a.merge(b);
        assert_eq!(m.value, 3.0);
        assert!((m.abs_error - 0.3).abs() < 1e-15);
        assert_eq!(m.evaluations, 12);
    }

    #[test]
    fn zero_is_neutral_for_merge() {
        let a = Estimate {
            value: 4.5,
            abs_error: 0.25,
            evaluations: 11,
        };
        let m = a.merge(Estimate::ZERO);
        assert_eq!(m.value, a.value);
        assert_eq!(m.abs_error, a.abs_error);
        assert_eq!(m.evaluations, a.evaluations);
    }
}
