//! Romberg integration (Richardson-extrapolated trapezoid rule).
//!
//! The paper's higher-accuracy GPU path (§IV-B, Eq. 3):
//!
//! ```text
//! T_m^(k) = 4^m/(4^m-1) * T_{m-1}^(k+1)  -  1/(4^m-1) * T_{m-1}^(k)
//! ```
//!
//! where `k` is "the times of dichotomy". The computational cost of a
//! single integral grows as `2^k` integrand evaluations, which is exactly
//! the knob the paper sweeps in Fig. 6 / Table I (k = 7, 9, 11, 13).

use crate::Estimate;

/// Romberg integration of `f` over `[lo, hi]` with `k` dichotomy levels.
///
/// Level 0 is the plain trapezoid rule on the whole interval; each further
/// level halves the step (doubling the evaluation count) and extends the
/// Richardson tableau one column. The returned error estimate is the
/// difference between the last two diagonal entries.
///
/// `k` is clamped to `[1, 30]`: below 1 there is no extrapolation to do,
/// above 30 the evaluation count (`2^k + 1`) would overflow any realistic
/// budget.
pub fn romberg<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, k: u32) -> Estimate {
    let k = k.clamp(1, 30) as usize;
    let mut row: Vec<f64> = Vec::with_capacity(k + 1);
    let mut prev: Vec<f64> = Vec::with_capacity(k + 1);

    let h0 = hi - lo;
    let mut evaluations: u64 = 2;
    let mut trap = 0.5 * h0 * (f(lo) + f(hi));
    prev.push(trap);

    let mut diag_prev = trap;
    let mut abs_error = trap.abs();

    for level in 1..=k {
        // Refine the trapezoid estimate: add the midpoints of the current
        // panels. After `level` refinements there are 2^level panels.
        let panels_before = 1usize << (level - 1);
        let h = h0 / panels_before as f64;
        let mut mid_sum = 0.0;
        for i in 0..panels_before {
            mid_sum += f(lo + (i as f64 + 0.5) * h);
        }
        evaluations += panels_before as u64;
        trap = 0.5 * (trap + h * mid_sum);

        row.clear();
        row.push(trap);
        // Richardson extrapolation across the tableau row (paper Eq. 3).
        let mut pow4 = 1.0;
        for m in 1..=level {
            pow4 *= 4.0;
            let t = (pow4 * row[m - 1] - prev[m - 1]) / (pow4 - 1.0);
            row.push(t);
        }
        let diag = row[level];
        abs_error = (diag - diag_prev).abs();
        diag_prev = diag;
        std::mem::swap(&mut prev, &mut row);
    }

    Estimate {
        value: diag_prev,
        abs_error: abs_error.max(f64::EPSILON * diag_prev.abs()),
        evaluations,
    }
}

/// Number of integrand evaluations [`romberg`] performs for `k` levels.
/// Used by the GPU cost model: work per task is `2^k + 1`.
#[must_use]
pub fn romberg_evaluations(k: u32) -> u64 {
    let k = k.clamp(1, 30);
    (1u64 << k) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_low_degree_polynomials() {
        // k levels of Romberg integrate polynomials of degree <= 2k+1 exactly.
        let est = romberg(|x| x.powi(5) - 2.0 * x.powi(3) + x, 0.0, 2.0, 3);
        let exact = 64.0 / 6.0 - 2.0 * 4.0 + 2.0;
        assert!(
            (est.value - exact).abs() < 1e-10,
            "{} vs {exact}",
            est.value
        );
    }

    #[test]
    fn converges_on_exp_with_level() {
        let exact = std::f64::consts::E - 1.0;
        let e3 = (romberg(f64::exp, 0.0, 1.0, 3).value - exact).abs();
        let e6 = (romberg(f64::exp, 0.0, 1.0, 6).value - exact).abs();
        assert!(e6 < e3);
        assert!(e6 < 1e-12);
    }

    #[test]
    fn evaluation_count_is_two_to_k_plus_one() {
        for k in [1u32, 3, 7, 10] {
            let mut calls = 0u64;
            let est = romberg(
                |x| {
                    calls += 1;
                    x * x
                },
                0.0,
                1.0,
                k,
            );
            assert_eq!(calls, romberg_evaluations(k), "k={k}");
            assert_eq!(est.evaluations, calls, "k={k}");
        }
    }

    #[test]
    fn error_estimate_bounds_true_error_on_smooth_f() {
        let exact = 2.0; // integral of sin over [0, pi]
        let est = romberg(f64::sin, 0.0, std::f64::consts::PI, 8);
        let true_err = (est.value - exact).abs();
        // The diagonal-difference estimate should be within a couple of
        // orders of magnitude of the truth and not wildly optimistic.
        assert!(true_err <= est.abs_error * 100.0 + 1e-14);
    }

    #[test]
    fn beats_simpson_at_same_evaluation_budget() {
        // Paper: "Romberg algorithm can obtain higher accuracy but without
        // adding any extra computational complexity" (relative to Simpson at
        // the same sample count).
        let exact = (1.0f64).exp() - 1.0;
        let k = 7u32;
        let romb = romberg(f64::exp, 0.0, 1.0, k);
        // Same evaluation budget for Simpson: 2n+1 = 2^k + 1 => n = 2^(k-1).
        let simp = crate::rules::simpson(f64::exp, 0.0, 1.0, 1 << (k - 1));
        assert!((romb.value - exact).abs() <= (simp.value - exact).abs());
    }

    #[test]
    fn k_is_clamped() {
        let a = romberg(|x| x, 0.0, 1.0, 0);
        let b = romberg(|x| x, 0.0, 1.0, 1);
        assert_eq!(a.evaluations, b.evaluations);
    }
}
