//! Bin-range composite quadrature with shared-edge reuse.
//!
//! The spectral hot path integrates one integrand over a *contiguous
//! run* of energy bins (paper Algorithm 2: each GPU thread walks its
//! chunk of bins). Integrating the bins independently evaluates every
//! interior bin edge twice — once as bin `i`'s upper node and once as
//! bin `i+1`'s lower node. [`integrate_bins`] performs the whole run in
//! one call, evaluating each shared edge exactly once and writing the
//! per-bin results into a caller-provided slice.
//!
//! The per-bin arithmetic (node placement, summation order, scaling) is
//! kept *identical* to the per-bin routines [`crate::simpson`] and
//! [`crate::romberg`], so per-bin results are bitwise equal to the
//! unfused path — the only change is that the cached edge sample is
//! reused instead of recomputed. Edge reuse keys on bitwise equality of
//! the abscissas (`bins[i].1 == bins[i+1].0`); runs whose bins do not
//! share edges (e.g. a threshold-clamped leading bin) simply fall back
//! to a fresh evaluation for that bin's lower node.

use crate::sampler::{BatchSampler, FnSampler};
use crate::simd::{MathMode, LANES};

/// The composite rule applied per bin by [`integrate_bins`].
///
/// Only the rules with shareable edge nodes are offered here;
/// interior-node rules (Gauss–Legendre) gain nothing from fusion and
/// keep using their per-bin form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinRule {
    /// Composite Simpson with `panels` pieces per bin (paper GPU
    /// default: 64).
    Simpson {
        /// Panels per bin.
        panels: usize,
    },
    /// Romberg with `k` dichotomy levels per bin (paper Fig. 6).
    Romberg {
        /// Dichotomy levels.
        k: u32,
    },
}

impl BinRule {
    /// Integrand evaluations per *isolated* bin (the first bin of a
    /// run, or any bin whose lower edge cannot be reused).
    #[must_use]
    pub fn evals_per_isolated_bin(&self) -> u64 {
        match *self {
            BinRule::Simpson { panels } => 2 * panels.max(1) as u64 + 1,
            BinRule::Romberg { k } => crate::romberg::romberg_evaluations(k),
        }
    }

    /// Integrand evaluations per bin whose lower-edge sample is shared
    /// with the previous bin — one fewer than the isolated count.
    #[must_use]
    pub fn evals_per_fused_bin(&self) -> u64 {
        self.evals_per_isolated_bin() - 1
    }
}

/// Integrate `f` over every bin of `bins` with `rule`, accumulating the
/// per-bin integral into the matching slot of `out` (`out[i] +=
/// integral of f over bins[i]`).
///
/// Whenever `bins[i].0` is bitwise equal to `bins[i-1].1` the sample
/// `f` took at that edge is reused, saving one evaluation per interior
/// edge of each contiguous run. Returns the number of integrand
/// evaluations actually performed.
///
/// Per-bin results are bitwise identical to calling
/// [`crate::simpson`] / [`crate::romberg`] on each bin separately.
///
/// # Panics
/// Panics if `out.len() != bins.len()`.
///
/// ```
/// use quadrature::{integrate_bins, simpson, BinRule};
///
/// let f = |x: f64| (-x).exp();
/// let bins = [(0.0, 0.5), (0.5, 1.0), (1.0, 1.5)];
/// let mut fused = [0.0; 3];
/// let evals = integrate_bins(BinRule::Simpson { panels: 8 }, f, &bins, &mut fused);
/// for (i, &(lo, hi)) in bins.iter().enumerate() {
///     assert_eq!(fused[i], simpson(f, lo, hi, 8).value);
/// }
/// // 17 nodes for the first bin, 16 for each fused successor.
/// assert_eq!(evals, 17 + 16 + 16);
/// ```
pub fn integrate_bins<F: FnMut(f64) -> f64>(
    rule: BinRule,
    f: F,
    bins: &[(f64, f64)],
    out: &mut [f64],
) -> u64 {
    integrate_bins_sampled(rule, &mut FnSampler(f), bins, out)
}

/// [`integrate_bins`] over a [`BatchSampler`]: each bin's node grid is
/// evaluated with one `sample_batch` call, letting structured integrands
/// (the prepared RRC form) amortize per-node transcendentals. With the
/// default per-node `sample_batch` this is *exactly* [`integrate_bins`]
/// — same nodes, same accumulation order, bitwise identical results.
pub fn integrate_bins_sampled<S: BatchSampler>(
    rule: BinRule,
    s: &mut S,
    bins: &[(f64, f64)],
    out: &mut [f64],
) -> u64 {
    integrate_bins_sampled_mode(rule, s, bins, out, MathMode::Exact)
}

/// [`integrate_bins_sampled`] with an explicit [`MathMode`].
///
/// `Exact` is the seed behavior: the scalar accumulation loops, bitwise
/// identical to the per-bin rules. `Vector` replaces the weighted
/// accumulation with lane-parallel partial sums (explicit remainder
/// handling for node counts not divisible by the lane width); per-bin
/// relative deviation from `Exact` stays ≤ 1e−12 for well-conditioned
/// integrands — it is a re-association of the same products.
pub fn integrate_bins_sampled_mode<S: BatchSampler>(
    rule: BinRule,
    s: &mut S,
    bins: &[(f64, f64)],
    out: &mut [f64],
    math: MathMode,
) -> u64 {
    assert_eq!(out.len(), bins.len(), "out / bins length mismatch");
    match rule {
        BinRule::Simpson { panels } => simpson_bins(s, bins, out, panels, math),
        BinRule::Romberg { k } => romberg_bins(s, bins, out, k, math),
    }
}

/// Fill `xs` with composite-Simpson nodes in ascending order:
/// `lo, m_0, i_1, m_1, i_2, ..., m_{n-1}, hi` (2n+1 nodes). Node
/// expressions match `rules::simpson` bit for bit.
fn simpson_nodes(xs: &mut Vec<f64>, lo: f64, hi: f64, n: usize) {
    let h = (hi - lo) / n as f64;
    xs.clear();
    xs.push(lo);
    for i in 0..n {
        let a = lo + i as f64 * h;
        xs.push(a + 0.5 * h);
        if i + 1 < n {
            xs.push(a + h);
        }
    }
    xs.push(hi);
}

/// Lane-parallel weighted sum of the interior Simpson nodes
/// `vals[1..2n]`. The interior weights alternate `4, 2, 4, 2, …`
/// starting and ending on `4`, so every aligned chunk of [`LANES`]
/// nodes sees the constant weight vector `[4, 2, 4, 2]`; the trailing
/// `(2n − 1) % LANES` nodes get an explicit scalar remainder pass.
fn simpson_interior_lanes(interior: &[f64]) -> f64 {
    const W: [f64; LANES] = [4.0, 2.0, 4.0, 2.0];
    // Two accumulator vectors so the add-latency chains of consecutive
    // chunks overlap.
    let mut acc = [0.0f64; LANES];
    let mut acc2 = [0.0f64; LANES];
    let mut pairs = interior.chunks_exact(2 * LANES);
    for pair in &mut pairs {
        for j in 0..LANES {
            acc[j] += pair[j] * W[j];
        }
        for j in 0..LANES {
            acc2[j] += pair[LANES + j] * W[j];
        }
    }
    let mut tail = pairs.remainder().chunks_exact(LANES);
    for chunk in &mut tail {
        for j in 0..LANES {
            acc[j] += chunk[j] * W[j];
        }
    }
    // Chunks have even length, so the remainder restarts on weight 4.
    let mut rem = 0.0;
    let mut w = 4.0;
    for &v in tail.remainder() {
        rem += w * v;
        w = 6.0 - w;
    }
    for j in 0..LANES {
        acc[j] += acc2[j];
    }
    ((acc[0] + acc[2]) + (acc[1] + acc[3])) + rem
}

/// Lane-parallel plain sum with a scalar remainder, for the Romberg
/// midpoint batches.
fn sum_lanes(vals: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut chunks = vals.chunks_exact(LANES);
    for chunk in &mut chunks {
        for j in 0..LANES {
            acc[j] += chunk[j];
        }
    }
    let mut rem = 0.0;
    for &v in chunks.remainder() {
        rem += v;
    }
    ((acc[0] + acc[2]) + (acc[1] + acc[3])) + rem
}

fn simpson_bins<S: BatchSampler>(
    s: &mut S,
    bins: &[(f64, f64)],
    out: &mut [f64],
    panels: usize,
    math: MathMode,
) -> u64 {
    let n = panels.max(1);
    let mut evals: u64 = 0;
    // The cached sample at the previous bin's upper edge.
    let mut edge: Option<(f64, f64)> = None;
    // Node and value scratch, reused across bins.
    let mut xs: Vec<f64> = Vec::with_capacity(2 * n + 1);
    let mut vals: Vec<f64> = vec![0.0; 2 * n + 1];
    for (slot, &(lo, hi)) in out.iter_mut().zip(bins) {
        simpson_nodes(&mut xs, lo, hi, n);
        match edge {
            Some((x, v)) if x == lo => {
                vals[0] = v;
                s.sample_batch(&xs[1..], &mut vals[1..]);
                evals += 2 * n as u64;
            }
            _ => {
                s.sample_batch(&xs, &mut vals);
                evals += 2 * n as u64 + 1;
            }
        }
        let h = (hi - lo) / n as f64;
        let sum = match math {
            // The accumulation mirrors `rules::simpson` exactly:
            // endpoints first, then per panel 4x the midpoint and 2x
            // the interior node, scaled by h/6.
            MathMode::Exact => {
                let mut sum = vals[0] + vals[2 * n];
                for i in 0..n {
                    sum += 4.0 * vals[2 * i + 1];
                    if i + 1 < n {
                        sum += 2.0 * vals[2 * i + 2];
                    }
                }
                sum
            }
            MathMode::Vector => vals[0] + vals[2 * n] + simpson_interior_lanes(&vals[1..2 * n]),
        };
        *slot += sum * h / 6.0;
        edge = Some((hi, vals[2 * n]));
    }
    evals
}

fn romberg_bins<S: BatchSampler>(
    s: &mut S,
    bins: &[(f64, f64)],
    out: &mut [f64],
    k: u32,
    math: MathMode,
) -> u64 {
    let k = k.clamp(1, 30) as usize;
    let mut evals: u64 = 0;
    let mut edge: Option<(f64, f64)> = None;
    // Tableau rows and node/value scratch hoisted out of the bin loop:
    // allocation-free after the first bin.
    let mut row: Vec<f64> = Vec::with_capacity(k + 1);
    let mut prev: Vec<f64> = Vec::with_capacity(k + 1);
    let mut xs: Vec<f64> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    for (slot, &(lo, hi)) in out.iter_mut().zip(bins) {
        let f_lo = match edge {
            Some((x, v)) if x == lo => v,
            _ => {
                evals += 1;
                s.sample(lo)
            }
        };
        let f_hi = s.sample(hi);
        evals += 1;
        // From here the arithmetic mirrors `romberg::romberg` exactly;
        // each level's midpoints form one ascending uniform batch.
        let h0 = hi - lo;
        let mut trap = 0.5 * h0 * (f_lo + f_hi);
        prev.clear();
        prev.push(trap);
        let mut diag_prev = trap;
        for level in 1..=k {
            let panels_before = 1usize << (level - 1);
            let h = h0 / panels_before as f64;
            xs.clear();
            for i in 0..panels_before {
                xs.push(lo + (i as f64 + 0.5) * h);
            }
            vals.resize(panels_before, 0.0);
            s.sample_batch(&xs, &mut vals[..panels_before]);
            let mid_sum = match math {
                MathMode::Exact => {
                    let mut mid_sum = 0.0;
                    for &v in &vals[..panels_before] {
                        mid_sum += v;
                    }
                    mid_sum
                }
                MathMode::Vector => sum_lanes(&vals[..panels_before]),
            };
            evals += panels_before as u64;
            trap = 0.5 * (trap + h * mid_sum);
            row.clear();
            row.push(trap);
            let mut pow4 = 1.0;
            for m in 1..=level {
                pow4 *= 4.0;
                let t = (pow4 * row[m - 1] - prev[m - 1]) / (pow4 - 1.0);
                row.push(t);
            }
            diag_prev = row[level];
            std::mem::swap(&mut prev, &mut row);
        }
        *slot += diag_prev;
        edge = Some((hi, f_hi));
    }
    evals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{romberg, simpson};

    fn grid(lo: f64, hi: f64, bins: usize) -> Vec<(f64, f64)> {
        // Shared edges are computed once, so adjacent bins agree bitwise.
        let edge = |i: usize| lo + (hi - lo) * (i as f64 / bins as f64);
        (0..bins).map(|i| (edge(i), edge(i + 1))).collect()
    }

    #[test]
    fn simpson_bins_match_per_bin_rule_bitwise() {
        let f = |x: f64| (-(x * 0.31)).exp() * (x + 1.0).recip();
        let bins = grid(0.3, 9.7, 41);
        let mut out = vec![0.0; bins.len()];
        integrate_bins(BinRule::Simpson { panels: 16 }, f, &bins, &mut out);
        for (i, &(lo, hi)) in bins.iter().enumerate() {
            assert_eq!(out[i], simpson(f, lo, hi, 16).value, "bin {i}");
        }
    }

    #[test]
    fn romberg_bins_match_per_bin_rule_bitwise() {
        let f = |x: f64| (x * 0.8).sin() + 2.0;
        let bins = grid(-1.0, 4.0, 17);
        let mut out = vec![0.0; bins.len()];
        integrate_bins(BinRule::Romberg { k: 6 }, f, &bins, &mut out);
        for (i, &(lo, hi)) in bins.iter().enumerate() {
            assert_eq!(out[i], romberg(f, lo, hi, 6).value, "bin {i}");
        }
    }

    #[test]
    fn shared_edges_are_evaluated_once() {
        for (rule, isolated) in [
            (BinRule::Simpson { panels: 8 }, 17u64),
            (BinRule::Romberg { k: 5 }, 33u64),
        ] {
            assert_eq!(rule.evals_per_isolated_bin(), isolated);
            let bins = grid(0.0, 1.0, 10);
            let mut calls = 0u64;
            let mut out = vec![0.0; bins.len()];
            let reported = integrate_bins(
                rule,
                |x| {
                    calls += 1;
                    x * x
                },
                &bins,
                &mut out,
            );
            assert_eq!(calls, reported);
            // First bin pays full price; the 9 successors share an edge.
            assert_eq!(reported, isolated + 9 * (isolated - 1));
        }
    }

    #[test]
    fn non_contiguous_bins_fall_back_to_fresh_edges() {
        // A gap between bins 1 and 2: no reuse across the gap.
        let bins = vec![(0.0, 1.0), (1.0, 2.0), (3.0, 4.0)];
        let mut calls = 0u64;
        let mut out = vec![0.0; 3];
        let rule = BinRule::Simpson { panels: 4 };
        let reported = integrate_bins(
            rule,
            |x| {
                calls += 1;
                x
            },
            &bins,
            &mut out,
        );
        assert_eq!(calls, reported);
        let full = rule.evals_per_isolated_bin();
        assert_eq!(reported, full + (full - 1) + full);
        for (i, &(lo, hi)) in bins.iter().enumerate() {
            assert_eq!(out[i], simpson(|x| x, lo, hi, 4).value, "bin {i}");
        }
    }

    #[test]
    fn accumulates_into_existing_values() {
        let bins = vec![(0.0, 2.0)];
        let mut out = vec![10.0];
        integrate_bins(BinRule::Simpson { panels: 2 }, |x| x, &bins, &mut out);
        assert!((out[0] - 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_a_no_op() {
        let mut out: Vec<f64> = Vec::new();
        let evals = integrate_bins(BinRule::Simpson { panels: 8 }, |x| x, &[], &mut out);
        assert_eq!(evals, 0);
    }

    #[test]
    fn vector_mode_handles_every_lane_remainder() {
        // Panel counts chosen so the interior node count 2n-1 covers
        // every residue mod LANES, plus the paper's 64-panel rule; bin
        // counts likewise not multiples of the lane width.
        let f = |x: f64| (-(x * 0.47)).exp() * (x * 1.3).cos();
        for panels in [1usize, 2, 3, 4, 5, 6, 7, 9, 64] {
            for bins_n in [1usize, 2, 3, 5, 7, 13] {
                let bins = grid(0.1, 6.3, bins_n);
                let mut exact = vec![0.0; bins_n];
                let mut vector = vec![0.0; bins_n];
                let rule = BinRule::Simpson { panels };
                let e1 = integrate_bins_sampled_mode(
                    rule,
                    &mut FnSampler(f),
                    &bins,
                    &mut exact,
                    MathMode::Exact,
                );
                let e2 = integrate_bins_sampled_mode(
                    rule,
                    &mut FnSampler(f),
                    &bins,
                    &mut vector,
                    MathMode::Vector,
                );
                assert_eq!(e1, e2, "same nodes regardless of mode");
                // Exact mode must stay bitwise identical to the
                // per-bin rule even at odd panel counts...
                for (i, &(lo, hi)) in bins.iter().enumerate() {
                    assert_eq!(exact[i], simpson(f, lo, hi, panels).value);
                    // ...and Vector mode is a re-association of the
                    // same products: ≤ 1e-12 relative.
                    let scale = exact[i].abs().max(1e-300);
                    assert!(
                        ((vector[i] - exact[i]) / scale).abs() <= 1e-12,
                        "panels {panels} bins {bins_n} bin {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn romberg_vector_mode_matches_exact_within_budget() {
        let f = |x: f64| (0.4 * x).exp() + x.sin();
        // k up to 6 gives midpoint batches of 1,2,4,8,16,32 — both
        // sub-lane and multi-chunk sizes.
        for k in [1u32, 2, 3, 4, 5, 6] {
            let bins = grid(-0.5, 2.5, 7);
            let mut exact = vec![0.0; 7];
            let mut vector = vec![0.0; 7];
            let rule = BinRule::Romberg { k };
            integrate_bins_sampled_mode(
                rule,
                &mut FnSampler(f),
                &bins,
                &mut exact,
                MathMode::Exact,
            );
            integrate_bins_sampled_mode(
                rule,
                &mut FnSampler(f),
                &bins,
                &mut vector,
                MathMode::Vector,
            );
            for (i, (&a, &b)) in exact.iter().zip(&vector).enumerate() {
                assert_eq!(a, romberg(f, bins[i].0, bins[i].1, k).value);
                let scale = a.abs().max(1e-300);
                assert!(((b - a) / scale).abs() <= 1e-12, "k {k} bin {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut out = vec![0.0; 2];
        let _ = integrate_bins(
            BinRule::Simpson { panels: 8 },
            |x| x,
            &[(0.0, 1.0)],
            &mut out,
        );
    }
}
