//! Batched integrand sampling.
//!
//! The bin-range hot path ([`crate::integrate_bins_sampled`]) evaluates
//! an integrand on whole grids of quadrature nodes at once. For an
//! arbitrary closure that is just a loop — bitwise identical to calling
//! it per node — but integrands that know their own analytic structure
//! can override [`BatchSampler::sample_batch`] and evaluate the grid
//! far faster than node-by-node (the RRC integrand replaces one `exp`
//! per node with one `exp` per bin plus a running multiply).

/// An integrand that can be sampled one node at a time or over a whole
/// node grid.
///
/// `sample_batch`'s default implementation calls [`BatchSampler::sample`]
/// once per node in order, so implementing only `sample` gives exactly
/// the per-node behavior. Overrides may return values that differ from
/// the per-node path by at most a few parts in `1e-13` relative — the
/// documented accuracy budget of the fused pipeline.
pub trait BatchSampler {
    /// Evaluate the integrand at `x`.
    fn sample(&mut self, x: f64) -> f64;

    /// Fill `out[j] = f(xs[j])` for every node.
    ///
    /// `xs` is sorted ascending whenever the quadrature routines in
    /// this crate call it (each batch is one bin's nodes, or one
    /// Romberg level's midpoints), which is what structured overrides
    /// rely on.
    ///
    /// # Panics
    /// Implementations may assume and assert `xs.len() == out.len()`.
    fn sample_batch(&mut self, xs: &[f64], out: &mut [f64]) {
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = self.sample(x);
        }
    }
}

/// Adapter giving any `FnMut(f64) -> f64` closure the per-node
/// [`BatchSampler`] behavior.
#[derive(Debug, Clone, Copy)]
pub struct FnSampler<F>(pub F);

impl<F: FnMut(f64) -> f64> BatchSampler for FnSampler<F> {
    #[inline]
    fn sample(&mut self, x: f64) -> f64 {
        (self.0)(x)
    }
}

impl<S: BatchSampler + ?Sized> BatchSampler for &mut S {
    #[inline]
    fn sample(&mut self, x: f64) -> f64 {
        (**self).sample(x)
    }

    #[inline]
    fn sample_batch(&mut self, xs: &[f64], out: &mut [f64]) {
        (**self).sample_batch(xs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_batch_is_per_node() {
        let mut calls = 0u32;
        let mut s = FnSampler(|x: f64| {
            calls += 1;
            x * 2.0
        });
        let xs = [1.0, 2.0, 3.0];
        let mut out = [0.0; 3];
        s.sample_batch(&xs, &mut out);
        assert_eq!(out, [2.0, 4.0, 6.0]);
        assert_eq!(calls, 3);
    }

    #[test]
    fn mut_ref_delegates() {
        let mut s = FnSampler(|x: f64| x + 1.0);
        let mut r = &mut s;
        assert_eq!(r.sample(1.0), 2.0);
        let mut out = [0.0];
        (&mut r).sample_batch(&[4.0], &mut out);
        assert_eq!(out, [5.0]);
    }
}
