//! Improper (semi-infinite) integrals and recursive adaptive Simpson.
//!
//! QUADPACK pairs `QAGS` with `QAGI` for infinite ranges; the RRC
//! physics occasionally wants `[E0, ∞)` integrals (total recombination
//! power, Maxwellian normalizations), so we provide the same
//! transformation: `x = a + t/(1-t)` maps `[a, ∞)` onto `[0, 1)` with
//! Jacobian `1/(1-t)^2`, after which the finite-interval machinery
//! applies unchanged.

use crate::adaptive::{qags_with, AdaptiveConfig, QagsWorkspace};
use crate::{Estimate, QuadResult};

/// Integrate `f` over `[a, +inf)` to the given tolerances, via the
/// `t/(1-t)` compactification and QAGS on the transformed integrand.
///
/// # Errors
/// Propagates the underlying QAGS failure modes (bad tolerance,
/// subdivision limit, non-finite integrand).
pub fn qagi<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    errabs: f64,
    errrel: f64,
) -> QuadResult<Estimate> {
    let mut ws = QagsWorkspace::new();
    let cfg = AdaptiveConfig {
        errabs,
        errrel,
        ..AdaptiveConfig::default()
    };
    // t = 1 is the image of x = +inf; stop a hair short of it. The
    // integrand must decay for the integral to exist; the Jacobian
    // blow-up at t -> 1 is then tamed by that decay.
    qags_with(
        &mut ws,
        cfg,
        |t| {
            let one_minus = 1.0 - t;
            let x = a + t / one_minus;
            f(x) / (one_minus * one_minus)
        },
        0.0,
        1.0 - 1e-14,
    )
}

/// Recursive adaptive Simpson with Richardson acceptance: the textbook
/// alternative to the global heap strategy — it subdivides locally and
/// accepts a panel when `|S(left)+S(right) - S(whole)| <= 15 tol`.
/// Provided as an independent cross-check of [`crate::adaptive::qags`]
/// (two adaptive codes agreeing is worth more than one).
pub fn adaptive_simpson<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, tol: f64) -> Estimate {
    fn simpson3(fa: f64, fm: f64, fb: f64, h: f64) -> f64 {
        h / 6.0 * (fa + 4.0 * fm + fb)
    }
    #[allow(clippy::too_many_arguments)]
    fn recurse<F: FnMut(f64) -> f64>(
        f: &mut F,
        lo: f64,
        hi: f64,
        fa: f64,
        fm: f64,
        fb: f64,
        whole: f64,
        tol: f64,
        depth: u32,
        evals: &mut u64,
    ) -> (f64, f64) {
        let mid = 0.5 * (lo + hi);
        let lm = 0.5 * (lo + mid);
        let rm = 0.5 * (mid + hi);
        let flm = f(lm);
        let frm = f(rm);
        *evals += 2;
        let left = simpson3(fa, flm, fm, mid - lo);
        let right = simpson3(fm, frm, fb, hi - mid);
        let delta = left + right - whole;
        if depth == 0 || delta.abs() <= 15.0 * tol {
            // Richardson: the refined sum plus the extrapolated error.
            (left + right + delta / 15.0, delta.abs() / 15.0)
        } else {
            let (lv, le) = recurse(f, lo, mid, fa, flm, fm, left, tol * 0.5, depth - 1, evals);
            let (rv, re) = recurse(f, mid, hi, fm, frm, fb, right, tol * 0.5, depth - 1, evals);
            (lv + rv, le + re)
        }
    }

    if lo == hi {
        return Estimate::ZERO;
    }
    let (a, b, sign) = if lo < hi {
        (lo, hi, 1.0)
    } else {
        (hi, lo, -1.0)
    };
    let mut evals = 3u64;
    let fa = f(a);
    let mid = 0.5 * (a + b);
    let fm = f(mid);
    let fb = f(b);
    let whole = simpson3(fa, fm, fb, b - a);
    let (value, err) = recurse(
        &mut f,
        a,
        b,
        fa,
        fm,
        fb,
        whole,
        tol.max(1e-300),
        48,
        &mut evals,
    );
    Estimate {
        value: sign * value,
        abs_error: err.max(f64::EPSILON * value.abs()),
        evaluations: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qagi_integrates_exponential_tail() {
        // integral over [0, inf) of e^-x = 1.
        let est = qagi(|x| (-x).exp(), 0.0, 1e-12, 1e-10).unwrap();
        assert!((est.value - 1.0).abs() < 1e-8, "{}", est.value);
    }

    #[test]
    fn qagi_gaussian_half_line() {
        // integral over [0, inf) of e^{-x^2} = sqrt(pi)/2.
        let est = qagi(|x| (-x * x).exp(), 0.0, 1e-12, 1e-10).unwrap();
        let exact = std::f64::consts::PI.sqrt() / 2.0;
        assert!((est.value - exact).abs() < 1e-8, "{}", est.value);
    }

    #[test]
    fn qagi_respects_the_lower_bound() {
        // integral over [2, inf) of e^-x = e^-2.
        let est = qagi(|x| (-x).exp(), 2.0, 1e-13, 1e-11).unwrap();
        assert!((est.value - (-2.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn qagi_matches_maxwellian_normalization() {
        // The RRC prefactor's Maxwellian: integral over [0,inf) of
        // sqrt(E) e^{-E/kT} dE = sqrt(pi)/2 (kT)^{3/2}.
        let kt = 861.7;
        let est = qagi(|e| e.sqrt() * (-e / kt).exp(), 0.0, 1e-10, 1e-10).unwrap();
        let exact = std::f64::consts::PI.sqrt() / 2.0 * kt.powf(1.5);
        assert!((est.value - exact).abs() / exact < 1e-8);
    }

    #[test]
    fn adaptive_simpson_matches_qags() {
        let f = |x: f64| (3.0 * x).sin() * (-0.5 * x).exp() + 2.0;
        let a = adaptive_simpson(f, 0.0, 5.0, 1e-11);
        let q = crate::adaptive::qags(f, 0.0, 5.0, 1e-12, 1e-12).unwrap();
        assert!(
            (a.value - q.value).abs() < 1e-8,
            "{} vs {}",
            a.value,
            q.value
        );
    }

    #[test]
    fn adaptive_simpson_concentrates_work_at_features() {
        // A narrow bump: adaptive evaluation count must be far below a
        // uniform grid achieving the same accuracy.
        let bump = |x: f64| 1.0 / (1e-4 + (x - 0.3) * (x - 0.3));
        let est = adaptive_simpson(bump, 0.0, 1.0, 1e-9);
        let exact = ((0.7f64 / 1e-2).atan() + (0.3f64 / 1e-2).atan()) / 1e-2;
        assert!(
            (est.value - exact).abs() / exact < 1e-6,
            "{} vs {exact}",
            est.value
        );
        assert!(est.evaluations < 100_000, "{} evals", est.evaluations);
    }

    #[test]
    fn adaptive_simpson_handles_reversed_and_empty_intervals() {
        let fwd = adaptive_simpson(|x| x * x, 0.0, 2.0, 1e-12);
        let rev = adaptive_simpson(|x| x * x, 2.0, 0.0, 1e-12);
        assert!((fwd.value + rev.value).abs() < 1e-12);
        assert_eq!(adaptive_simpson(|x| x, 1.0, 1.0, 1e-12).value, 0.0);
    }

    #[test]
    fn error_estimates_are_honest() {
        let f = |x: f64| (10.0 * x).cos();
        let est = adaptive_simpson(f, 0.0, 1.0, 1e-10);
        let exact = (10.0f64).sin() / 10.0;
        assert!((est.value - exact).abs() <= est.abs_error.max(1e-9) * 100.0);
    }
}
