//! Wynn's ε-algorithm for sequence extrapolation.
//!
//! QUADPACK's `QAGS` accelerates the sequence of global integral
//! estimates with the ε-algorithm so that integrands with endpoint
//! singularities still converge quickly. This module implements the same
//! accelerator for our [`crate::adaptive::qags`].

/// Incremental ε-algorithm table.
///
/// Push successive partial estimates with [`EpsilonTable::push`]; after at
/// least three entries, [`EpsilonTable::extrapolated`] returns the current
/// accelerated value together with a crude error estimate (the change
/// between the last two accelerated values).
#[derive(Debug, Clone, Default)]
pub struct EpsilonTable {
    /// Last row of the ε table (even columns only are estimates).
    row: Vec<f64>,
    last: Option<f64>,
    prev: Option<f64>,
}

impl EpsilonTable {
    /// Create an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of raw sequence entries pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.row.len()
    }

    /// Whether the table holds no entries yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.row.is_empty()
    }

    /// Feed the next raw sequence element, updating the table diagonal.
    pub fn push(&mut self, s: f64) {
        // Standard in-place diagonal update: row holds the previous
        // anti-diagonal; we rebuild it extended by one.
        let n = self.row.len();
        let mut new_row = Vec::with_capacity(n + 1);
        new_row.push(s);
        let mut aux = 0.0; // epsilon_{-1} = 0
        for j in 0..n {
            let denom = new_row[j] - self.row[j];
            let e = if denom.abs() < f64::MIN_POSITIVE * 16.0 {
                // Degenerate difference: propagate a huge value so this
                // column stops influencing the extrapolation.
                f64::MAX
            } else {
                aux + 1.0 / denom
            };
            aux = self.row[j];
            new_row.push(e);
        }
        self.row = new_row;

        // Even-indexed entries of the anti-diagonal are estimates; take the
        // highest usable one.
        let mut best = s;
        let mut idx = 0;
        while idx + 2 < self.row.len() {
            idx += 2;
            let cand = self.row[idx];
            if cand.is_finite() && cand.abs() < f64::MAX / 2.0 {
                best = cand;
            } else {
                break;
            }
        }
        self.prev = self.last;
        self.last = Some(best);
    }

    /// Current accelerated estimate and a crude error estimate, if at
    /// least two pushes have happened.
    #[must_use]
    pub fn extrapolated(&self) -> Option<(f64, f64)> {
        match (self.last, self.prev) {
            (Some(l), Some(p)) => Some((l, (l - p).abs())),
            (Some(l), None) => Some((l, l.abs())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accelerates_geometric_series() {
        // Partial sums of sum 1/2^k -> 2. The epsilon algorithm should hit
        // the limit essentially exactly after a few terms.
        let mut table = EpsilonTable::new();
        let mut partial = 0.0;
        for k in 0..10 {
            partial += 0.5f64.powi(k);
            table.push(partial);
        }
        let (value, _err) = table.extrapolated().unwrap();
        assert!((value - 2.0).abs() < 1e-12, "value {value}");
    }

    #[test]
    fn accelerates_pi_leibniz() {
        // The Leibniz series converges like 1/n; epsilon acceleration makes
        // it usable. After 12 terms the raw sum is off by ~0.08; the
        // accelerated value should be far closer.
        let mut table = EpsilonTable::new();
        let mut partial = 0.0;
        for k in 0..12 {
            partial += 4.0 * (-1.0f64).powi(k) / (2.0 * k as f64 + 1.0);
            table.push(partial);
        }
        let (value, _) = table.extrapolated().unwrap();
        let raw_err = (partial - std::f64::consts::PI).abs();
        let acc_err = (value - std::f64::consts::PI).abs();
        assert!(acc_err < raw_err / 1000.0, "raw {raw_err}, acc {acc_err}");
    }

    #[test]
    fn constant_sequence_is_fixed_point() {
        let mut table = EpsilonTable::new();
        for _ in 0..5 {
            table.push(3.25);
        }
        let (value, err) = table.extrapolated().unwrap();
        assert_eq!(value, 3.25);
        assert_eq!(err, 0.0);
    }

    #[test]
    fn empty_table_has_no_estimate() {
        let table = EpsilonTable::new();
        assert!(table.extrapolated().is_none());
        assert!(table.is_empty());
    }
}
