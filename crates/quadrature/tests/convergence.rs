//! Convergence-order and property tests for the integration methods.
//!
//! The randomized cases are deterministic seeded sweeps (`desim::rng`),
//! so failures reproduce exactly.

use desim::rng;
use quadrature::{boole, qags, romberg, simpson, trapezoid, CompositeRule, GaussLegendre};

/// Empirical order of a composite rule: fit the error decay between two
/// panel counts on a smooth integrand.
fn empirical_order(rule: CompositeRule, n1: usize, n2: usize) -> f64 {
    let exact = 1.0 - (-2.0f64).exp();
    let f = |x: f64| (-x).exp();
    let e1 = (rule.integrate(f, 0.0, 2.0, n1).value - exact).abs();
    let e2 = (rule.integrate(f, 0.0, 2.0, n2).value - exact).abs();
    (e1 / e2).ln() / (n2 as f64 / n1 as f64).ln()
}

#[test]
fn composite_rules_show_their_theoretical_orders() {
    // Order 2 rules.
    for rule in [CompositeRule::Midpoint, CompositeRule::Trapezoid] {
        let p = empirical_order(rule, 8, 32);
        assert!((p - 2.0).abs() < 0.2, "{rule:?}: order {p}");
    }
    // Simpson: order 4.
    let p = empirical_order(CompositeRule::Simpson, 8, 32);
    assert!((p - 4.0).abs() < 0.3, "simpson order {p}");
    // Boole: order 6.
    let p = empirical_order(CompositeRule::Boole, 4, 16);
    assert!((p - 6.0).abs() < 0.5, "boole order {p}");
}

#[test]
fn romberg_converges_superalgebraically_on_analytic_f() {
    let exact = (1.0f64).sin();
    let errs: Vec<f64> = (3..9)
        .map(|k| (romberg(f64::cos, 0.0, 1.0, k).value - exact).abs())
        .collect();
    // Each extra level multiplies accuracy by far more than the factor-4
    // an order-2 method would give (until hitting machine precision).
    for pair in errs.windows(2) {
        if pair[0] > 1e-14 {
            assert!(pair[1] < pair[0] / 4.0, "{errs:?}");
        }
    }
}

#[test]
fn gauss_legendre_converges_exponentially_on_analytic_f() {
    let exact = (1.0f64).exp() - 1.0;
    let e4 = (GaussLegendre::new(4).integrate(f64::exp, 0.0, 1.0).value - exact).abs();
    let e8 = (GaussLegendre::new(8).integrate(f64::exp, 0.0, 1.0).value - exact).abs();
    assert!(e8 < e4 * 1e-4 || e8 < 1e-15, "e4={e4}, e8={e8}");
}

#[test]
fn qags_resolves_a_sharp_edge_automatically() {
    // An RRC-like integrand: zero below the edge, sharply rising above.
    let edge = 0.37;
    let f = move |x: f64| if x < edge { 0.0 } else { (x - edge).sqrt() };
    let exact = (1.0 - edge).powf(1.5) * 2.0 / 3.0;
    let est = qags(f, 0.0, 1.0, 1e-10, 1e-10).unwrap();
    assert!((est.value - exact).abs() < 1e-7, "{} vs {exact}", est.value);
}

/// Linearity: integral of a*f + b*g = a*I(f) + b*I(g).
#[test]
fn integration_is_linear() {
    let mut r = rng(0x11EA2);
    for _ in 0..100 {
        let a = r.gen_range(-3.0..3.0);
        let b = r.gen_range(-3.0..3.0);
        let f = |x: f64| x.sin();
        let g = |x: f64| (2.0 * x).cos();
        let combined = simpson(|x| a * f(x) + b * g(x), 0.0, 2.0, 128).value;
        let separate = a * simpson(f, 0.0, 2.0, 128).value + b * simpson(g, 0.0, 2.0, 128).value;
        assert!((combined - separate).abs() < 1e-12 * (1.0 + combined.abs()));
    }
}

/// Substitution invariance: integrating f(cx)/c over [0, c*L] equals
/// integrating f over [0, L].
#[test]
fn scaling_substitution() {
    let mut r = rng(0x5CA1E);
    for _ in 0..100 {
        let c = r.gen_range(0.2..5.0);
        let f = |x: f64| (-x).exp() * x;
        let direct = romberg(f, 0.0, 2.0, 10).value;
        let scaled = romberg(|x| f(x / c) / c, 0.0, 2.0 * c, 10).value;
        assert!((direct - scaled).abs() < 1e-8 * (1.0 + direct.abs()));
    }
}

/// Positive integrands give positive integrals for every method.
#[test]
fn positivity() {
    let mut r = rng(0x705);
    for _ in 0..100 {
        let lo = r.gen_range(-3.0..3.0);
        let hi = lo + r.gen_range(0.1..4.0);
        let f = |x: f64| x.cos().powi(2) + 0.1;
        assert!(trapezoid(f, lo, hi, 16).value > 0.0);
        assert!(simpson(f, lo, hi, 16).value > 0.0);
        assert!(boole(f, lo, hi, 8).value > 0.0);
        assert!(romberg(f, lo, hi, 6).value > 0.0);
        assert!(qags(f, lo, hi, 1e-9, 1e-9).unwrap().value > 0.0);
    }
}

/// All methods agree with each other on smooth integrands.
#[test]
fn cross_method_agreement() {
    let mut r = rng(0xA62EE);
    for _ in 0..40 {
        let freq = r.gen_range(0.2..3.0);
        let phase = r.gen_range(0.0..std::f64::consts::TAU);
        let f = move |x: f64| (freq * x + phase).sin().exp();
        let s = simpson(f, 0.0, 3.0, 512).value;
        let romb = romberg(f, 0.0, 3.0, 12).value;
        let q = qags(f, 0.0, 3.0, 1e-11, 1e-11).unwrap().value;
        let g = GaussLegendre::new(48).integrate(f, 0.0, 3.0).value;
        let scale = 1.0 + s.abs();
        assert!((s - romb).abs() / scale < 1e-8);
        assert!((s - q).abs() / scale < 1e-8);
        assert!((s - g).abs() / scale < 1e-8);
    }
}

/// The fused bin-range path reproduces per-bin results within 1e-12
/// relative on random integrands and random (contiguous) grids — and in
/// fact bitwise, which the in-crate unit tests assert; here we check the
/// documented contract on wider random input.
#[test]
fn fused_bins_match_per_bin_within_1e12() {
    use quadrature::{integrate_bins, BinRule};
    let mut r = rng(0xB175);
    for _ in 0..50 {
        let lo = r.gen_range(-4.0..4.0);
        let span = r.gen_range(0.5..20.0);
        let n_bins = r.gen_range_usize(1..64);
        let a = r.gen_range(0.1..3.0);
        let b = r.gen_range(-2.0..2.0);
        let f = move |x: f64| (-a * x * x).exp() + b * x.sin() + 2.5;
        let edge = |i: usize| lo + span * (i as f64 / n_bins as f64);
        let bins: Vec<(f64, f64)> = (0..n_bins).map(|i| (edge(i), edge(i + 1))).collect();
        for (rule, per_bin) in [
            (
                BinRule::Simpson { panels: 16 },
                Box::new(move |lo, hi| simpson(f, lo, hi, 16).value)
                    as Box<dyn Fn(f64, f64) -> f64>,
            ),
            (
                BinRule::Romberg { k: 6 },
                Box::new(move |lo, hi| romberg(f, lo, hi, 6).value),
            ),
        ] {
            let mut fused = vec![0.0; n_bins];
            integrate_bins(rule, f, &bins, &mut fused);
            for (i, &(blo, bhi)) in bins.iter().enumerate() {
                let reference = per_bin(blo, bhi);
                assert!(
                    (fused[i] - reference).abs() <= 1e-12 * reference.abs().max(1e-300),
                    "{rule:?} bin {i}: {} vs {reference}",
                    fused[i]
                );
            }
        }
    }
}
