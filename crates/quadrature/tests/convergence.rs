//! Convergence-order and property tests for the integration methods.

use proptest::prelude::*;
use quadrature::{boole, qags, romberg, simpson, trapezoid, CompositeRule, GaussLegendre};

/// Empirical order of a composite rule: fit the error decay between two
/// panel counts on a smooth integrand.
fn empirical_order(rule: CompositeRule, n1: usize, n2: usize) -> f64 {
    let exact = 1.0 - (-2.0f64).exp();
    let f = |x: f64| (-x).exp();
    let e1 = (rule.integrate(f, 0.0, 2.0, n1).value - exact).abs();
    let e2 = (rule.integrate(f, 0.0, 2.0, n2).value - exact).abs();
    (e1 / e2).ln() / (n2 as f64 / n1 as f64).ln()
}

#[test]
fn composite_rules_show_their_theoretical_orders() {
    // Order 2 rules.
    for rule in [CompositeRule::Midpoint, CompositeRule::Trapezoid] {
        let p = empirical_order(rule, 8, 32);
        assert!((p - 2.0).abs() < 0.2, "{rule:?}: order {p}");
    }
    // Simpson: order 4.
    let p = empirical_order(CompositeRule::Simpson, 8, 32);
    assert!((p - 4.0).abs() < 0.3, "simpson order {p}");
    // Boole: order 6.
    let p = empirical_order(CompositeRule::Boole, 4, 16);
    assert!((p - 6.0).abs() < 0.5, "boole order {p}");
}

#[test]
fn romberg_converges_superalgebraically_on_analytic_f() {
    let exact = (1.0f64).sin();
    let errs: Vec<f64> = (3..9)
        .map(|k| (romberg(f64::cos, 0.0, 1.0, k).value - exact).abs())
        .collect();
    // Each extra level multiplies accuracy by far more than the factor-4
    // an order-2 method would give (until hitting machine precision).
    for pair in errs.windows(2) {
        if pair[0] > 1e-14 {
            assert!(pair[1] < pair[0] / 4.0, "{errs:?}");
        }
    }
}

#[test]
fn gauss_legendre_converges_exponentially_on_analytic_f() {
    let exact = (1.0f64).exp() - 1.0;
    let e4 = (GaussLegendre::new(4).integrate(f64::exp, 0.0, 1.0).value - exact).abs();
    let e8 = (GaussLegendre::new(8).integrate(f64::exp, 0.0, 1.0).value - exact).abs();
    assert!(e8 < e4 * 1e-4 || e8 < 1e-15, "e4={e4}, e8={e8}");
}

#[test]
fn qags_resolves_a_sharp_edge_automatically() {
    // An RRC-like integrand: zero below the edge, sharply rising above.
    let edge = 0.37;
    let f = move |x: f64| if x < edge { 0.0 } else { (x - edge).sqrt() };
    let exact = (1.0 - edge).powf(1.5) * 2.0 / 3.0;
    let est = qags(f, 0.0, 1.0, 1e-10, 1e-10).unwrap();
    assert!(
        (est.value - exact).abs() < 1e-7,
        "{} vs {exact}",
        est.value
    );
}

proptest! {
    /// Linearity: integral of a*f + b*g = a*I(f) + b*I(g).
    #[test]
    fn integration_is_linear(a in -3.0f64..3.0, b in -3.0f64..3.0) {
        let f = |x: f64| x.sin();
        let g = |x: f64| (2.0 * x).cos();
        let combined = simpson(|x| a * f(x) + b * g(x), 0.0, 2.0, 128).value;
        let separate = a * simpson(f, 0.0, 2.0, 128).value + b * simpson(g, 0.0, 2.0, 128).value;
        prop_assert!((combined - separate).abs() < 1e-12 * (1.0 + combined.abs()));
    }

    /// Substitution invariance: integrating f(cx)/c over [0, c*L] equals
    /// integrating f over [0, L].
    #[test]
    fn scaling_substitution(c in 0.2f64..5.0) {
        let f = |x: f64| (-x).exp() * x;
        let direct = romberg(f, 0.0, 2.0, 10).value;
        let scaled = romberg(|x| f(x / c) / c, 0.0, 2.0 * c, 10).value;
        prop_assert!((direct - scaled).abs() < 1e-8 * (1.0 + direct.abs()));
    }

    /// Positive integrands give positive integrals for every method.
    #[test]
    fn positivity(lo in -3.0f64..3.0, span in 0.1f64..4.0) {
        let hi = lo + span;
        let f = |x: f64| x.cos().powi(2) + 0.1;
        prop_assert!(trapezoid(f, lo, hi, 16).value > 0.0);
        prop_assert!(simpson(f, lo, hi, 16).value > 0.0);
        prop_assert!(boole(f, lo, hi, 8).value > 0.0);
        prop_assert!(romberg(f, lo, hi, 6).value > 0.0);
        prop_assert!(qags(f, lo, hi, 1e-9, 1e-9).unwrap().value > 0.0);
    }

    /// All methods agree with each other on smooth integrands.
    #[test]
    fn cross_method_agreement(freq in 0.2f64..3.0, phase in 0.0f64..6.28) {
        let f = move |x: f64| (freq * x + phase).sin().exp();
        let s = simpson(f, 0.0, 3.0, 512).value;
        let r = romberg(f, 0.0, 3.0, 12).value;
        let q = qags(f, 0.0, 3.0, 1e-11, 1e-11).unwrap().value;
        let g = GaussLegendre::new(48).integrate(f, 0.0, 3.0).value;
        let scale = 1.0 + s.abs();
        prop_assert!((s - r).abs() / scale < 1e-8);
        prop_assert!((s - q).abs() / scale < 1e-8);
        prop_assert!((s - g).abs() / scale < 1e-8);
    }
}
