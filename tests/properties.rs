//! Property-based tests of the core invariants, across crates.

use proptest::prelude::*;

use hybridspec::desim::{LoadHistogram, Simulation};
use hybridspec::quadrature::{boole, qags, romberg, simpson, trapezoid};
use hybridspec::sched::policy::{select_device, Selection};
use hybridspec::sched::Scheduler;
use hybridspec::spectral::EnergyGrid;

proptest! {
    // ---------- quadrature ----------

    /// All fixed rules agree with the exact antiderivative on cubics.
    #[test]
    fn rules_integrate_cubics(
        a in -3.0f64..3.0, b in -3.0f64..3.0, c in -3.0f64..3.0,
        lo in -5.0f64..5.0, span in 0.01f64..5.0,
    ) {
        let hi = lo + span;
        let f = |x: f64| a * x * x * x + b * x + c;
        let exact = |x: f64| a * x.powi(4) / 4.0 + b * x * x / 2.0 + c * x;
        let truth = exact(hi) - exact(lo);
        let scale = 1.0 + truth.abs();
        prop_assert!((simpson(f, lo, hi, 4).value - truth).abs() / scale < 1e-10);
        prop_assert!((boole(f, lo, hi, 2).value - truth).abs() / scale < 1e-10);
        prop_assert!((romberg(f, lo, hi, 4).value - truth).abs() / scale < 1e-9);
    }

    /// Refinement never makes composite rules worse on smooth functions
    /// (up to round-off).
    #[test]
    fn refinement_improves_smooth(lo in -2.0f64..0.0, span in 0.5f64..3.0) {
        let hi = lo + span;
        let exact = hi.exp() - lo.exp();
        let coarse = (trapezoid(f64::exp, lo, hi, 4).value - exact).abs();
        let fine = (trapezoid(f64::exp, lo, hi, 64).value - exact).abs();
        prop_assert!(fine <= coarse + 1e-12);
    }

    /// QAGS honors its reported error bound on well-behaved integrands.
    #[test]
    fn qags_error_bound_holds(freq in 0.5f64..8.0, span in 0.5f64..4.0) {
        let f = |x: f64| (freq * x).sin() + 2.0;
        let est = qags(f, 0.0, span, 1e-10, 1e-10).unwrap();
        let exact = span * 2.0 + (1.0 - (freq * span).cos()) / freq;
        prop_assert!(
            (est.value - exact).abs() <= est.abs_error.max(1e-8),
            "value {} exact {exact} err {}", est.value, est.abs_error
        );
    }

    /// Integration is additive over adjacent intervals.
    #[test]
    fn integral_additivity(mid_frac in 0.1f64..0.9, span in 0.5f64..4.0) {
        let f = |x: f64| (x * 1.3).cos() * (-x * 0.2).exp();
        let mid = span * mid_frac;
        let whole = simpson(f, 0.0, span, 256).value;
        let parts = simpson(f, 0.0, mid, 256).value + simpson(f, mid, span, 256).value;
        prop_assert!((whole - parts).abs() < 1e-9 * (1.0 + whole.abs()));
    }

    // ---------- scheduler policy ----------

    /// The selected device is always a lexicographic argmin of
    /// (load, history, index), and AllBusy iff every load >= qlen.
    #[test]
    fn policy_is_argmin(
        loads in proptest::collection::vec(0u64..20, 1..8),
        seed in 0u64..1000,
        qlen in 1u64..16,
    ) {
        let histories: Vec<u64> =
            loads.iter().enumerate().map(|(i, _)| (seed * 7 + i as u64 * 13) % 40).collect();
        match select_device(&loads, &histories, qlen) {
            Selection::Device(d) => {
                prop_assert!(loads[d] < qlen);
                for other in 0..loads.len() {
                    prop_assert!(
                        (loads[d], histories[d], d) <= (loads[other], histories[other], other)
                    );
                }
            }
            Selection::AllBusy => {
                prop_assert!(loads.iter().all(|&l| l >= qlen));
            }
        }
    }

    /// Under arbitrary alloc/free interleavings the scheduler conserves
    /// grants and never exceeds the queue bound.
    #[test]
    fn scheduler_conserves_under_interleaving(
        ops in proptest::collection::vec(any::<bool>(), 1..200),
        devices in 1usize..5,
        qlen in 1u64..6,
    ) {
        let s = Scheduler::new(devices, qlen);
        let mut outstanding = Vec::new();
        let mut granted = 0u64;
        for op in ops {
            if op {
                if let Some(g) = s.alloc() {
                    prop_assert!(s.load(g.device) <= qlen);
                    outstanding.push(g);
                    granted += 1;
                } else {
                    // AllBusy must mean all queues are at the bound.
                    for d in 0..devices {
                        prop_assert!(s.load(hybridspec::sched::DeviceId(d)) >= qlen);
                    }
                }
            } else if let Some(g) = outstanding.pop() {
                s.free(g);
            }
        }
        for g in outstanding.drain(..) {
            s.free(g);
        }
        let (loads, histories) = s.snapshot();
        prop_assert!(loads.iter().all(|&l| l == 0));
        prop_assert_eq!(histories.iter().sum::<u64>(), granted);
    }

    // ---------- desim ----------

    /// Events always execute in nondecreasing time order regardless of
    /// the insertion order.
    #[test]
    fn des_event_order(delays in proptest::collection::vec(0.0f64..100.0, 1..60)) {
        let n = delays.len();
        let mut sim = Simulation::new(Vec::<f64>::with_capacity(n));
        for d in delays {
            sim.schedule(d, move |sim| {
                let now = sim.now();
                sim.world.push(now);
            });
        }
        sim.run();
        prop_assert_eq!(sim.world.len(), n);
        for pair in sim.world.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
    }

    /// Load-histogram percentages always form a distribution.
    #[test]
    fn load_histogram_is_distribution(
        steps in proptest::collection::vec((0.0f64..10.0, 0u32..8), 2..50),
    ) {
        let mut h = LoadHistogram::new();
        let mut t = 0.0;
        for (dt, level) in steps {
            t += dt;
            h.record(t, level);
        }
        let total = h.total_time();
        if total > 0.0 {
            let sum: f64 = (0..=h.max_level()).map(|l| h.percent_at(l)).sum();
            prop_assert!((sum - 100.0).abs() < 1e-6);
            prop_assert!((h.percent_at_least(0) - 100.0).abs() < 1e-6);
        }
    }

    // ---------- spectral grid ----------

    /// Grid bins tile the range exactly and locate() inverts bin().
    #[test]
    fn grid_bins_partition(min in 1.0f64..100.0, span in 1.0f64..1000.0, bins in 1usize..200) {
        let g = EnergyGrid::linear(min, min + span, bins);
        for i in 0..bins.min(50) {
            let (lo, hi) = g.bin(i);
            prop_assert!(lo < hi);
            let c = 0.5 * (lo + hi);
            prop_assert_eq!(g.locate(c), Some(i));
        }
        prop_assert!((g.edge(bins) - (min + span)).abs() < 1e-9 * (min + span));
    }

    /// Partitioning a parameter space covers all indices exactly once.
    #[test]
    fn space_partition_covers(n_t in 1usize..20, parts in 1usize..30) {
        let space = hybridspec::spectral::ParameterSpace {
            temperatures_k: vec![1e6; n_t],
            densities_cm3: vec![1.0, 2.0],
            times_s: vec![0.0],
        };
        let ranges = space.partition(parts);
        let mut seen = vec![false; space.len()];
        for r in ranges {
            for i in r {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    // ---------- NEI ----------

    /// The solver keeps ion fractions on the unit simplex for arbitrary
    /// plasma states and spans.
    #[test]
    fn nei_preserves_simplex(
        z in 1u8..12,
        log_t in 4.0f64..8.5,
        log_ne in -2.0f64..4.0,
        log_span in 2.0f64..10.0,
    ) {
        let sys = hybridspec::nei::NeiSystem {
            z,
            electron_density: 10f64.powf(log_ne),
            temperature_k: 10f64.powf(log_t),
        };
        let mut x = vec![0.0; sys.dim()];
        x[0] = 1.0;
        let solver = hybridspec::nei::LsodaSolver::default();
        solver.integrate(&sys, &mut x, 0.0, 10f64.powf(log_span));
        let sum: f64 = x.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        prop_assert!(x.iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)));
    }
}
