//! Randomized property tests of the core invariants, across crates.
//!
//! Deterministic seeded sweeps (xoshiro via `desim::rng`) stand in for
//! an external property-testing framework: each case draws many random
//! inputs from a fixed seed, so failures are reproducible.

use hybridspec::desim::{rng, LoadHistogram, Simulation};
use hybridspec::quadrature::{boole, qags, romberg, simpson, trapezoid};
use hybridspec::sched::policy::{select_device, Selection};
use hybridspec::sched::Scheduler;
use hybridspec::spectral::EnergyGrid;

// ---------- quadrature ----------

/// All fixed rules agree with the exact antiderivative on cubics.
#[test]
fn rules_integrate_cubics() {
    let mut r = rng(0xC0B1C5);
    for _ in 0..200 {
        let a = r.gen_range(-3.0..3.0);
        let b = r.gen_range(-3.0..3.0);
        let c = r.gen_range(-3.0..3.0);
        let lo = r.gen_range(-5.0..5.0);
        let hi = lo + r.gen_range(0.01..5.0);
        let f = |x: f64| a * x * x * x + b * x + c;
        let exact = |x: f64| a * x.powi(4) / 4.0 + b * x * x / 2.0 + c * x;
        let truth = exact(hi) - exact(lo);
        let scale = 1.0 + truth.abs();
        assert!((simpson(f, lo, hi, 4).value - truth).abs() / scale < 1e-10);
        assert!((boole(f, lo, hi, 2).value - truth).abs() / scale < 1e-10);
        assert!((romberg(f, lo, hi, 4).value - truth).abs() / scale < 1e-9);
    }
}

/// Refinement never makes composite rules worse on smooth functions
/// (up to round-off).
#[test]
fn refinement_improves_smooth() {
    let mut r = rng(0x5EF1FE);
    for _ in 0..200 {
        let lo = r.gen_range(-2.0..0.0);
        let hi = lo + r.gen_range(0.5..3.0);
        let exact = hi.exp() - lo.exp();
        let coarse = (trapezoid(f64::exp, lo, hi, 4).value - exact).abs();
        let fine = (trapezoid(f64::exp, lo, hi, 64).value - exact).abs();
        assert!(fine <= coarse + 1e-12);
    }
}

/// QAGS honors its reported error bound on well-behaved integrands.
#[test]
fn qags_error_bound_holds() {
    let mut r = rng(0x9A95);
    for _ in 0..100 {
        let freq = r.gen_range(0.5..8.0);
        let span = r.gen_range(0.5..4.0);
        let f = |x: f64| (freq * x).sin() + 2.0;
        let est = qags(f, 0.0, span, 1e-10, 1e-10).unwrap();
        let exact = span * 2.0 + (1.0 - (freq * span).cos()) / freq;
        assert!(
            (est.value - exact).abs() <= est.abs_error.max(1e-8),
            "value {} exact {exact} err {}",
            est.value,
            est.abs_error
        );
    }
}

/// Integration is additive over adjacent intervals.
#[test]
fn integral_additivity() {
    let mut r = rng(0xADD);
    for _ in 0..100 {
        let mid_frac = r.gen_range(0.1..0.9);
        let span = r.gen_range(0.5..4.0);
        let f = |x: f64| (x * 1.3).cos() * (-x * 0.2).exp();
        let mid = span * mid_frac;
        let whole = simpson(f, 0.0, span, 256).value;
        let parts = simpson(f, 0.0, mid, 256).value + simpson(f, mid, span, 256).value;
        assert!((whole - parts).abs() < 1e-9 * (1.0 + whole.abs()));
    }
}

// ---------- scheduler policy ----------

/// The selected device is always a lexicographic argmin of
/// (load, history, index), and AllBusy iff every load >= qlen.
#[test]
fn policy_is_argmin() {
    let mut r = rng(0xA1);
    for seed in 0..300u64 {
        let n = r.gen_range_usize(1..8);
        let loads: Vec<u64> = (0..n).map(|_| r.gen_range_usize(0..20) as u64).collect();
        let qlen = r.gen_range_usize(1..16) as u64;
        let histories: Vec<u64> = loads
            .iter()
            .enumerate()
            .map(|(i, _)| (seed * 7 + i as u64 * 13) % 40)
            .collect();
        match select_device(&loads, &histories, qlen) {
            Selection::Device(d) => {
                assert!(loads[d] < qlen);
                for other in 0..loads.len() {
                    assert!((loads[d], histories[d], d) <= (loads[other], histories[other], other));
                }
            }
            Selection::AllBusy => {
                assert!(loads.iter().all(|&l| l >= qlen));
            }
        }
    }
}

/// Under arbitrary alloc/free interleavings the scheduler conserves
/// grants and never exceeds the queue bound.
#[test]
fn scheduler_conserves_under_interleaving() {
    let mut r = rng(0x5C4ED);
    for _ in 0..50 {
        let devices = r.gen_range_usize(1..5);
        let qlen = r.gen_range_usize(1..6) as u64;
        let n_ops = r.gen_range_usize(1..200);
        let s = Scheduler::new(devices, qlen);
        let mut outstanding = Vec::new();
        let mut granted = 0u64;
        for _ in 0..n_ops {
            if r.next_u64() & 1 == 1 {
                if let Some(g) = s.alloc() {
                    assert!(s.load(g.device) <= qlen);
                    outstanding.push(g);
                    granted += 1;
                } else {
                    // AllBusy must mean all queues are at the bound.
                    for d in 0..devices {
                        assert!(s.load(hybridspec::sched::DeviceId(d)) >= qlen);
                    }
                }
            } else if let Some(g) = outstanding.pop() {
                s.free(g);
            }
        }
        for g in outstanding.drain(..) {
            s.free(g);
        }
        let snap = s.snapshot();
        assert!(snap.loads.iter().all(|&l| l == 0));
        assert_eq!(snap.total_history(), granted);
    }
}

// ---------- desim ----------

/// Events always execute in nondecreasing time order regardless of
/// the insertion order.
#[test]
fn des_event_order() {
    let mut r = rng(0xDE5);
    for _ in 0..50 {
        let n = r.gen_range_usize(1..60);
        let mut sim = Simulation::new(Vec::<f64>::with_capacity(n));
        for _ in 0..n {
            let d = r.gen_range(0.0..100.0);
            sim.schedule(d, move |sim| {
                let now = sim.now();
                sim.world.push(now);
            });
        }
        sim.run();
        assert_eq!(sim.world.len(), n);
        for pair in sim.world.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }
}

/// Load-histogram percentages always form a distribution.
#[test]
fn load_histogram_is_distribution() {
    let mut r = rng(0x41570);
    for _ in 0..100 {
        let steps = r.gen_range_usize(2..50);
        let mut h = LoadHistogram::new();
        let mut t = 0.0;
        for _ in 0..steps {
            t += r.gen_range(0.0..10.0);
            let level = r.gen_range_usize(0..8) as u32;
            h.record(t, level);
        }
        let total = h.total_time();
        if total > 0.0 {
            let sum: f64 = (0..=h.max_level()).map(|l| h.percent_at(l)).sum();
            assert!((sum - 100.0).abs() < 1e-6);
            assert!((h.percent_at_least(0) - 100.0).abs() < 1e-6);
        }
    }
}

// ---------- spectral grid ----------

/// Grid bins tile the range exactly and locate() inverts bin().
#[test]
fn grid_bins_partition() {
    let mut r = rng(0x6B1D);
    for _ in 0..100 {
        let min = r.gen_range(1.0..100.0);
        let span = r.gen_range(1.0..1000.0);
        let bins = r.gen_range_usize(1..200);
        let g = EnergyGrid::linear(min, min + span, bins);
        for i in 0..bins.min(50) {
            let (lo, hi) = g.bin(i);
            assert!(lo < hi);
            let c = 0.5 * (lo + hi);
            assert_eq!(g.locate(c), Some(i));
        }
        assert!((g.edge(bins) - (min + span)).abs() < 1e-9 * (min + span));
    }
}

/// Partitioning a parameter space covers all indices exactly once.
#[test]
fn space_partition_covers() {
    let mut r = rng(0x5BACE);
    for _ in 0..100 {
        let n_t = r.gen_range_usize(1..20);
        let parts = r.gen_range_usize(1..30);
        let space = hybridspec::spectral::ParameterSpace {
            temperatures_k: vec![1e6; n_t],
            densities_cm3: vec![1.0, 2.0],
            times_s: vec![0.0],
        };
        let ranges = space.partition(parts);
        let mut seen = vec![false; space.len()];
        for range in ranges {
            for i in range {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}

// ---------- NEI ----------

/// The solver keeps ion fractions on the unit simplex for arbitrary
/// plasma states and spans.
#[test]
fn nei_preserves_simplex() {
    let mut r = rng(0x4E1);
    for _ in 0..25 {
        let z = r.gen_range_usize(1..12) as u8;
        let log_t = r.gen_range(4.0..8.5);
        let log_ne = r.gen_range(-2.0..4.0);
        let log_span = r.gen_range(2.0..10.0);
        let sys = hybridspec::nei::NeiSystem {
            z,
            electron_density: 10f64.powf(log_ne),
            temperature_k: 10f64.powf(log_t),
        };
        let mut x = vec![0.0; sys.dim()];
        x[0] = 1.0;
        let solver = hybridspec::nei::LsodaSolver::default();
        solver.integrate(&sys, &mut x, 0.0, 10f64.powf(log_span));
        let sum: f64 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        assert!(x.iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)));
    }
}
