//! Integration tests of the virtual-time replica: anchors, conservation
//! laws, and agreement between the replica's scheduler behaviour and
//! the real-threaded runtime's.

use hybridspec::hybrid::desmodel::{self, nei_config, spectral_config};
use hybridspec::hybrid::{Calibration, Granularity, SpectralWorkload};

fn inputs() -> (SpectralWorkload, Calibration) {
    let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig::default());
    (SpectralWorkload::paper(&db), Calibration::paper())
}

#[test]
fn serial_and_mpi_anchors() {
    let (w, c) = inputs();
    // Serial: one rank, no GPUs, one point.
    let mut cfg = spectral_config(&w, &c, Granularity::Ion, 0, 1, None);
    cfg.rank_tasks.truncate(1);
    let serial = desmodel::run(cfg);
    assert!((serial.makespan_s - 800.0).abs() < 1e-6);

    // 24-rank MPI: the 13.5x anchor.
    let mpi = desmodel::run(spectral_config(&w, &c, Granularity::Ion, 0, 1, None));
    let speedup = 19200.0 / mpi.makespan_s;
    assert!((speedup - 13.5).abs() < 0.5, "{speedup}");
}

#[test]
fn fig3_anchor_endpoints() {
    let (w, c) = inputs();
    for (gpus, target, tol) in [(1usize, 196.4, 0.12), (4, 311.4, 0.05)] {
        let r = desmodel::run(spectral_config(&w, &c, Granularity::Ion, gpus, 12, None));
        let speedup = 19200.0 / r.makespan_s;
        let rel = (speedup - target).abs() / target;
        assert!(rel < tol, "gpus={gpus}: {speedup} vs {target}");
    }
}

#[test]
fn task_conservation_across_configs() {
    let (w, c) = inputs();
    for granularity in [Granularity::Ion, Granularity::Level] {
        for gpus in [0usize, 1, 3] {
            for qlen in [1u64, 6, 12] {
                let r = desmodel::run(spectral_config(&w, &c, granularity, gpus, qlen, None));
                assert_eq!(
                    r.gpu_tasks + r.cpu_tasks,
                    w.total_tasks(granularity) as u64,
                    "{granularity:?} gpus={gpus} qlen={qlen}"
                );
                let history: u64 = r.device_history.iter().sum();
                assert_eq!(history, r.gpu_tasks);
            }
        }
    }
}

#[test]
fn device_histories_stay_balanced() {
    // The min-load + min-history policy spreads tasks evenly over equal
    // devices.
    let (w, c) = inputs();
    let r = desmodel::run(spectral_config(&w, &c, Granularity::Ion, 4, 12, None));
    let max = *r.device_history.iter().max().unwrap() as f64;
    let min = *r.device_history.iter().min().unwrap() as f64;
    assert!(min > 0.0);
    assert!(
        max / min < 1.05,
        "history imbalance: {:?}",
        r.device_history
    );
}

#[test]
fn load_histograms_never_exceed_queue_bound() {
    let (w, c) = inputs();
    for qlen in [2u64, 6, 12] {
        let r = desmodel::run(spectral_config(&w, &c, Granularity::Ion, 2, qlen, None));
        for (d, hist) in r.device_load.iter().enumerate() {
            assert!(
                u64::from(hist.max_level()) <= qlen,
                "qlen={qlen} device {d}: max load {}",
                hist.max_level()
            );
        }
    }
}

#[test]
fn virtual_time_is_deterministic() {
    let (w, c) = inputs();
    let a = desmodel::run(spectral_config(&w, &c, Granularity::Level, 3, 8, None));
    let b = desmodel::run(spectral_config(&w, &c, Granularity::Level, 3, 8, None));
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_eq!(a.gpu_tasks, b.gpu_tasks);
    assert_eq!(a.device_history, b.device_history);
}

#[test]
fn nei_replica_respects_anchors_and_scaling() {
    let c = Calibration::paper();
    let tasks_per_rank = 2000;
    let scale = 1e8 / (24.0 * tasks_per_rank as f64);
    let mpi = desmodel::run(nei_config(&c, 24, tasks_per_rank, 0, 8));
    assert!(((mpi.makespan_s * scale) - 8784.0).abs() / 8784.0 < 0.01);
    let t1 = desmodel::run(nei_config(&c, 24, tasks_per_rank, 1, 8)).makespan_s * scale;
    let t4 = desmodel::run(nei_config(&c, 24, tasks_per_rank, 4, 8)).makespan_s * scale;
    assert!(t4 < t1);
    // 1-GPU time lands within 25% of the Table II anchor (CPU overflow
    // assists, so we come in a bit under).
    assert!((t1 - 3137.0).abs() / 3137.0 < 0.25, "t1 {t1}");
}

#[test]
fn hyper_q_concurrency_helps_when_exclusive_dominates() {
    // With large device-exclusive times, allowing several active tasks
    // per device cannot help a single-server pipe (exclusive work is
    // still serial per physical SM pool in our model — concurrency only
    // overlaps queue slots), but it must never hurt correctness.
    let (w, c) = inputs();
    let mut cfg = spectral_config(&w, &c, Granularity::Ion, 2, 6, None);
    cfg.concurrent_per_gpu = 4;
    let r = desmodel::run(cfg);
    assert_eq!(
        r.gpu_tasks + r.cpu_tasks,
        w.total_tasks(Granularity::Ion) as u64
    );
}
