//! Whole-pipeline integration: synthetic hydro snapshot → hybrid
//! spectra → instrument folding, plus NEI along a tracer history —
//! every subsystem of the repository in one chain.

use std::sync::Arc;

use hybridspec::hybrid::{Granularity, HybridConfig, HybridRunner, SedovBlast};
use hybridspec::spectral::{EnergyGrid, InstrumentResponse, Integrator};

const YEAR_S: f64 = 3.156e7;

#[test]
fn sedov_to_folded_counts() {
    let blast = SedovBlast {
        ambient_cm3: 0.5,
        ..SedovBlast::default()
    };
    let age = 1000.0 * YEAR_S;
    let space = blast.snapshot(age, 4);
    assert_eq!(space.len(), 4);

    let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig {
        max_z: 8,
        ..atomdb::DatabaseConfig::default()
    });
    let grid = EnergyGrid::paper_waveband(80);
    let config = HybridConfig {
        db: Arc::new(db),
        grid,
        space,
        ranks: 2,
        gpus: 1,
        max_queue_len: 4,
        policy: hybridspec::sched::SchedPolicy::CostAware,
        granularity: Granularity::Ion,
        gpu_rule: hybridspec::gpu::DeviceRule::Simpson { panels: 64 },
        gpu_precision: hybridspec::gpu::Precision::Double,
        cpu_integrator: Integrator::paper_cpu(),
        async_window: 2,
        fused: true,
        math: hybridspec::quadrature::MathMode::Exact,
        pack_threshold: 0,
        resilience: hybridspec::hybrid::ResilienceConfig::default(),
        tuning: hybridspec::sched::TuningConfig::default(),
    };
    let report = HybridRunner::new(config).run();
    assert_eq!(report.spectra.len(), 4);

    // Every shell radiates; the outer (cooler, denser-weighted) shells
    // were sampled from physically valid interior states.
    for (i, spectrum) in report.spectra.iter().enumerate() {
        assert!(spectrum.total() > 0.0, "shell {i} is dark");
    }

    // Fold the rim spectrum through a CCD: counts are finite, positive,
    // and conserve the broadening (no NaNs from the response chain).
    let response = InstrumentResponse::ccd();
    let counts = response.fold(&report.spectra[3]);
    assert!(counts.iter().all(|c| c.is_finite() && *c >= 0.0));
    assert!(counts.iter().sum::<f64>() > 0.0);
}

#[test]
fn tracer_nei_state_feeds_spectral_weights() {
    // NEI fractions from a tracer history can replace the CIE population
    // in a custom emissivity calculation: check the plumbing composes.
    let blast = SedovBlast {
        ambient_cm3: 0.1,
        ..SedovBlast::default()
    };
    let age = 800.0 * YEAR_S;
    let history = blast.tracer_history(700.0 * YEAR_S, age, 6);
    let solver = hybridspec::nei::LsodaSolver::default();
    let mut oxygen = vec![0.0; 9];
    oxygen[0] = 1.0;
    history.integrate(&solver, 8, &mut oxygen, 0.0, age, 4);

    // Use the NEI fractions as per-ion weights on single-ion spectra.
    let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig {
        max_z: 8,
        ..atomdb::DatabaseConfig::default()
    });
    let grid = EnergyGrid::paper_waveband(60);
    let point = rrc_spectral::GridPoint {
        temperature_k: blast.postshock_temperature_k(age),
        density_cm3: blast.postshock_density_cm3(),
        time_s: age,
        index: 0,
    };
    let mut ws = quadrature::QagsWorkspace::new();
    let mut nei_weighted = vec![0.0; grid.bins()];
    for charge in 1..=8u8 {
        let fraction = oxygen[usize::from(charge)];
        if fraction <= 0.0 {
            continue;
        }
        let idx = atomdb::Ion::new(8, charge).unwrap().dense_index();
        let mut partial = vec![0.0; grid.bins()];
        rrc_spectral::ion_emissivity_into(
            &db,
            idx,
            &point,
            &grid,
            Integrator::Simpson { panels: 64 },
            &mut ws,
            &mut partial,
        );
        for (acc, v) in nei_weighted.iter_mut().zip(&partial) {
            *acc += fraction * v;
        }
    }
    let total: f64 = nei_weighted.iter().sum();
    assert!(total.is_finite());
    // The recently shocked tracer is underionized, so it must emit
    // *differently* from (in this construction, less than or comparably
    // to) a CIE plasma at the same temperature — mainly we check the
    // NEI -> spectral handoff is well-formed and nonzero.
    assert!(total >= 0.0);
    let sum: f64 = oxygen.iter().sum();
    assert!((sum - 1.0).abs() < 1e-7);
}
