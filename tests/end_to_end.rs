//! Cross-crate integration: the full hybrid pipeline against the serial
//! reference, across granularities, device counts and precisions.

use std::sync::Arc;

use hybridspec::gpu::{DeviceRule, Precision};
use hybridspec::hybrid::{Granularity, HybridConfig, HybridRunner};
use hybridspec::spectral::{Integrator, SerialCalculator};

fn base_config() -> HybridConfig {
    HybridConfig::small(6, 64, 3)
}

#[test]
fn hybrid_matches_serial_under_same_rule() {
    let mut cfg = base_config();
    cfg.cpu_integrator = Integrator::Simpson { panels: 64 };
    let runner = HybridRunner::new(cfg);
    let report = runner.run();
    let serial = SerialCalculator::new(
        (*runner.config().db).clone(),
        runner.config().grid.clone(),
        Integrator::Simpson { panels: 64 },
    );
    for (i, spectrum) in report.spectra.iter().enumerate() {
        let point = runner.config().space.point(i).unwrap();
        let reference = serial.spectrum_at(&point);
        // Same arithmetic, different accumulation grouping (per-task
        // partials vs per-level): round-off level agreement only.
        for (a, b) in spectrum.bins().iter().zip(reference.bins()) {
            assert!(
                (a - b).abs() <= 1e-12 * b.abs().max(1e-300),
                "point {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn gpu_count_does_not_change_results() {
    let mut results = Vec::new();
    for gpus in [0usize, 1, 3] {
        let mut cfg = base_config();
        cfg.gpus = gpus;
        cfg.cpu_integrator = Integrator::Simpson { panels: 64 };
        let report = HybridRunner::new(cfg).run();
        results.push(report);
    }
    // Every task accumulates through a per-task buffer on both paths,
    // so placement changes only which batch grids the prepared
    // integrand's exponential recurrence is anchored on — a last-ulp
    // effect bounded by the fused pipeline's 1e-12-relative budget.
    for pair in results.windows(2) {
        for (sa, sb) in pair[0].spectra.iter().zip(&pair[1].spectra) {
            for (a, b) in sa.bins().iter().zip(sb.bins()) {
                assert!((a - b).abs() <= 1e-12 * b.abs().max(1e-300), "{a} vs {b}");
            }
        }
    }
}

#[test]
fn rank_count_does_not_change_results() {
    let mut baseline = None;
    for ranks in [1usize, 2, 5] {
        let mut cfg = base_config();
        cfg.ranks = ranks;
        cfg.cpu_integrator = Integrator::Simpson { panels: 64 };
        let report = HybridRunner::new(cfg).run();
        match &baseline {
            None => baseline = Some(report),
            Some(base) => {
                // Rank count moves tasks between the GPU and CPU paths;
                // like device count, that is bounded by the fused
                // pipeline's accuracy budget rather than bit-exact.
                for (sa, sb) in base.spectra.iter().zip(&report.spectra) {
                    for (a, b) in sa.bins().iter().zip(sb.bins()) {
                        assert!((a - b).abs() <= 1e-12 * b.abs().max(1e-300), "{a} vs {b}");
                    }
                }
            }
        }
    }
}

#[test]
fn qags_fallback_and_gpu_simpson_agree_to_paper_accuracy() {
    // Force heavy CPU fallback with a tiny queue and one device.
    let mut cfg = base_config();
    cfg.gpus = 1;
    cfg.max_queue_len = 1;
    cfg.ranks = 6;
    let report = HybridRunner::new(cfg.clone()).run();
    assert!(report.cpu_tasks > 0, "wanted some CPU fallback");

    let serial =
        SerialCalculator::new((*cfg.db).clone(), cfg.grid.clone(), Integrator::paper_cpu());
    for (i, spectrum) in report.spectra.iter().enumerate() {
        let point = cfg.space.point(i).unwrap();
        let reference = serial.spectrum_at(&point);
        let errors = spectrum.significant_relative_errors_percent(&reference, 1e-9);
        let worst = errors.iter().fold(0.0f64, |m, e| m.max(e.abs()));
        assert!(worst < 0.01, "point {i}: worst {worst}%");
    }
}

#[test]
fn single_precision_gpu_stays_within_fig8_band() {
    let mut cfg = base_config();
    cfg.gpu_precision = Precision::Single;
    let report = HybridRunner::new(cfg.clone()).run();
    let serial =
        SerialCalculator::new((*cfg.db).clone(), cfg.grid.clone(), Integrator::paper_cpu());
    let reference = serial.spectrum_at(&cfg.space.point(0).unwrap());
    let errors = report.spectra[0].significant_relative_errors_percent(&reference, 1e-9);
    let worst = errors.iter().fold(0.0f64, |m, e| m.max(e.abs()));
    // Float-kernel errors: bigger than f64 round-off, far below 0.01%.
    assert!(worst < 3.3e-3, "worst {worst}%");
}

#[test]
fn romberg_gpu_rule_works_end_to_end() {
    let mut cfg = base_config();
    cfg.gpu_rule = DeviceRule::Romberg { k: 9 };
    let report = HybridRunner::new(cfg.clone()).run();
    let serial =
        SerialCalculator::new((*cfg.db).clone(), cfg.grid.clone(), Integrator::paper_cpu());
    let reference = serial.spectrum_at(&cfg.space.point(0).unwrap());
    let errors = report.spectra[0].significant_relative_errors_percent(&reference, 1e-9);
    let worst = errors.iter().fold(0.0f64, |m, e| m.max(e.abs()));
    assert!(worst < 0.01, "worst {worst}%");
}

#[test]
fn task_accounting_is_exact() {
    for granularity in [Granularity::Ion, Granularity::Level] {
        let mut cfg = base_config();
        cfg.granularity = granularity;
        let report = HybridRunner::new(cfg.clone()).run();
        let expected: u64 = match granularity {
            Granularity::Ion => (cfg.space.len() * cfg.db.ions().len()) as u64,
            Granularity::Level => (cfg.space.len() as u64) * cfg.db.stats().levels,
        };
        assert_eq!(
            report.gpu_tasks + report.cpu_tasks,
            expected,
            "{granularity:?}"
        );
        let history: u64 = report.device_history.iter().sum();
        assert_eq!(history, report.gpu_tasks, "{granularity:?}");
    }
}

#[test]
fn umbrella_reexports_compose() {
    // Every subsystem is reachable through the umbrella crate.
    let est = hybridspec::quadrature::simpson(|x| x, 0.0, 1.0, 4);
    assert!((est.value - 0.5).abs() < 1e-14);
    let db = hybridspec::atomdb::AtomDatabase::generate(Default::default());
    assert_eq!(db.ions().len(), 496);
    let region = hybridspec::mpi::SharedRegion::new(2);
    region.fetch_add(0, 3);
    assert_eq!(region.load(0), 3);
    let s = hybridspec::sched::Scheduler::new(1, 1);
    let g = s.alloc().unwrap();
    s.free(g);
    let mut sim = hybridspec::desim::Simulation::new(0u8);
    sim.schedule(1.0, |sim| sim.world = 7);
    sim.run();
    assert_eq!(sim.world, 7);
    let _ = Arc::new(hybridspec::gpu::DeviceProps::tesla_c2075());
}
