//! `hspec` — command-line front end for the hybrid spectral system.
//!
//! ```text
//! hspec spectrum --temp 3.5e6 --gpus 2 --bins 400 --out spectrum.tsv
//! hspec predict  --gpus 3 --qlen 8 --granularity ion
//! hspec tune     --gpus 2
//! hspec nei      --element 8 --temp 1e7 --span 1e10
//! hspec recalc   --temp 1e7 --dtemp-rel 1e-12 --steps 8 --gpus 2
//! hspec serve    --shards 4 --replicas 2 --requests 16
//! ```
//!
//! Arguments are `--key value` pairs parsed by a small hand-rolled
//! parser (no CLI dependency); every subcommand prints a short report
//! to stdout and data files as TSV.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

use hybridspec::hybrid::desmodel::{self, spectral_config};
use hybridspec::hybrid::{
    Calibration, Granularity, HybridConfig, HybridRunner, RunSpec, SedovBlast, SpectralWorkload,
};
use hybridspec::nei::{LsodaSolver, NeiSystem};
use hybridspec::sched::AutoTuner;
use hybridspec::spectral::{EnergyGrid, Integrator, ParameterSpace};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        print_usage();
        return ExitCode::from(2);
    };
    let args = match Args::parse(rest) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "spectrum" => cmd_spectrum(&args),
        "predict" => cmd_predict(&args),
        "tune" => cmd_tune(&args),
        "nei" => cmd_nei(&args),
        "recalc" => cmd_recalc(&args),
        "serve" => cmd_serve(&args),
        "remnant" => cmd_remnant(&args),
        "run" => cmd_run(&args),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn print_usage() {
    eprintln!(
        "hspec — hybrid CPU/GPU spectral calculation (ICPP 2015 reproduction)

USAGE:
  hspec spectrum [--temp K] [--density CM3] [--bins N] [--max-z Z]
                 [--ranks N] [--gpus N] [--qlen N] [--lines true]
                 [--policy cost-aware|paper-count] [--math exact|vector]
                 [--pack-threshold COST] [--out FILE.tsv]
                 [--tune] [--no-tune] [--tune-epoch N]
                 [--faults seed=N,launch=P,panic=P,dma=P,stall=P:MS,lose=DEV@OP]
  hspec predict  [--gpus N] [--qlen N] [--granularity ion|level]
                 [--romberg-k K] [--async-window N]
  hspec tune     [--gpus N]
  hspec nei      [--element Z] [--temp K] [--density CM3] [--span S]
  hspec recalc   [--temp K] [--dtemp-rel R] [--steps N] [--density CM3]
                 [--bins N] [--max-z Z] [--gpus N] [--tolerance TOL]
  hspec serve    [--shards N] [--replicas R] [--requests N] [--max-z Z]
                 [--bins N] [--gpus N] [--cache N] [--rebalance true|false]
                 [--affinity] [--no-affinity] [--router-cache N] [--hot-k K]
                 [--tune] [--no-tune] [--tune-epoch N] [--snapshot FILE.json]
  hspec remnant  [--age-yr YR] [--ambient CM3] [--shells N]
  hspec run      --spec FILE.json [--out FILE.tsv]
"
    );
}

/// Parsed `--key value` arguments.
struct Args {
    map: HashMap<String, String>,
}

/// The only flags that stand alone without a value; everything else
/// keeps the strict `--key value` shape.
const BARE_FLAGS: &[&str] = &["tune", "no-tune", "affinity", "no-affinity"];

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut map = HashMap::new();
        let mut iter = argv.iter();
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --flag, got '{key}'"));
            };
            if BARE_FLAGS.contains(&name) {
                map.insert(name.to_string(), "true".to_string());
                continue;
            }
            let Some(value) = iter.next() else {
                return Err(format!("--{name} needs a value"));
            };
            map.insert(name.to_string(), value.clone());
        }
        Ok(Args { map })
    }

    /// Resolve `--tune` / `--no-tune` / `--tune-epoch N` over the
    /// shared knob surface (`--no-tune` wins when both are given).
    fn tuning(
        &self,
        default: hybridspec::sched::TuningConfig,
    ) -> Result<hybridspec::sched::TuningConfig, String> {
        let mut tuning = default;
        if self.map.contains_key("tune") {
            tuning.enabled = true;
        }
        if self.map.contains_key("no-tune") {
            tuning.enabled = false;
        }
        tuning.epoch_tasks = self.get("tune-epoch", tuning.epoch_tasks)?.max(1);
        Ok(tuning)
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.map.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{raw}'")),
        }
    }
}

/// Parse a `--faults` spec into per-device fault plans.
///
/// Comma-separated `key=value` terms, all optional:
/// `seed=N` (default 42, each device derives `seed + d`),
/// `launch=P` / `panic=P` / `dma=P` (probabilistic rates),
/// `stall=P:MS` (rate and stall length, default 5 ms),
/// `lose=DEV@OP` (device `DEV` goes away for good at its `OP`-th
/// operation). Example: `--faults launch=0.1,dma=0.05,lose=1@40`.
fn parse_fault_spec(spec: &str, gpus: usize) -> Result<Vec<hybridspec::gpu::FaultPlan>, String> {
    use hybridspec::gpu::FaultPlan;
    let mut seed = 42u64;
    let mut launch = 0.0f64;
    let mut panic_rate = 0.0f64;
    let mut dma = 0.0f64;
    let mut stall = (0.0f64, 5u64);
    let mut lose: Option<(usize, u64)> = None;
    for term in spec.split(',').filter(|t| !t.is_empty()) {
        let (key, value) = term
            .split_once('=')
            .ok_or_else(|| format!("--faults term '{term}' is not key=value"))?;
        let bad = || format!("--faults {key}: cannot parse '{value}'");
        match key {
            "seed" => seed = value.parse().map_err(|_| bad())?,
            "launch" => launch = value.parse().map_err(|_| bad())?,
            "panic" => panic_rate = value.parse().map_err(|_| bad())?,
            "dma" => dma = value.parse().map_err(|_| bad())?,
            "stall" => {
                if let Some((rate, ms)) = value.split_once(':') {
                    stall = (
                        rate.parse().map_err(|_| bad())?,
                        ms.parse().map_err(|_| bad())?,
                    );
                } else {
                    stall.0 = value.parse().map_err(|_| bad())?;
                }
            }
            "lose" => {
                let (dev, op) = value
                    .split_once('@')
                    .ok_or_else(|| format!("--faults lose wants DEV@OP, got '{value}'"))?;
                lose = Some((
                    dev.parse()
                        .map_err(|_| format!("--faults lose: '{value}'"))?,
                    op.parse()
                        .map_err(|_| format!("--faults lose: '{value}'"))?,
                ));
            }
            other => return Err(format!("--faults: unknown key '{other}'")),
        }
    }
    Ok((0..gpus)
        .map(|d| {
            let mut plan = FaultPlan::seeded(seed.wrapping_add(d as u64))
                .launch_error_rate(launch)
                .kernel_panic_rate(panic_rate)
                .dma_error_rate(dma)
                .stall_rate(stall.0, stall.1);
            if let Some((dev, op)) = lose {
                if dev == d {
                    plan = plan.lose_device_at(op);
                }
            }
            plan
        })
        .collect())
}

fn cmd_spectrum(args: &Args) -> Result<(), String> {
    let temp: f64 = args.get("temp", 3.5e6)?;
    let density: f64 = args.get("density", 1.0)?;
    let bins: usize = args.get("bins", 400)?;
    let max_z: u8 = args.get("max-z", 31)?;
    let ranks: usize = args.get("ranks", 8)?;
    let gpus: usize = args.get("gpus", 2)?;
    let qlen: u64 = args.get("qlen", 6)?;
    let with_lines: bool = args.get("lines", false)?;
    let out: String = args.get("out", String::new())?;
    let pack_threshold: u64 = args.get("pack-threshold", 0)?;
    let math_raw = args.get("math", "exact".to_string())?;
    let math = hybridspec::quadrature::MathMode::parse(&math_raw)
        .ok_or_else(|| format!("--math must be exact|vector, got '{math_raw}'"))?;
    let policy = match args.get("policy", "cost-aware".to_string())?.as_str() {
        "cost-aware" => hybridspec::sched::SchedPolicy::CostAware,
        "paper-count" => hybridspec::sched::SchedPolicy::PaperCount,
        other => {
            return Err(format!(
                "--policy must be cost-aware|paper-count, got '{other}'"
            ))
        }
    };
    let faults_raw: String = args.get("faults", String::new())?;
    let mut resilience = hybridspec::hybrid::ResilienceConfig::default();
    if !faults_raw.is_empty() {
        resilience.faults = parse_fault_spec(&faults_raw, gpus)?;
    }

    let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig {
        max_z,
        ..atomdb::DatabaseConfig::default()
    });
    let grid = EnergyGrid::paper_waveband(bins);
    let config = HybridConfig {
        db: Arc::new(db.clone()),
        grid: grid.clone(),
        space: ParameterSpace {
            temperatures_k: vec![temp],
            densities_cm3: vec![density],
            times_s: vec![0.0],
        },
        ranks,
        gpus,
        max_queue_len: qlen,
        policy,
        granularity: Granularity::Ion,
        gpu_rule: hybridspec::gpu::DeviceRule::Simpson { panels: 64 },
        gpu_precision: hybridspec::gpu::Precision::Double,
        cpu_integrator: Integrator::paper_cpu(),
        async_window: 1,
        fused: true,
        math,
        pack_threshold,
        resilience,
        tuning: args.tuning(hybridspec::sched::TuningConfig::default())?,
    };
    let report = HybridRunner::new(config).run();
    let mut spectrum = report.spectra.into_iter().next().expect("one point");
    if with_lines {
        let point = rrc_spectral::GridPoint {
            temperature_k: temp,
            density_cm3: density,
            time_s: 0.0,
            index: 0,
        };
        let mut line_bins = vec![0.0; grid.bins()];
        for ion_index in 0..db.ions().len() {
            rrc_spectral::ion_lines_into(&db, ion_index, &point, &grid, &mut line_bins);
        }
        for (acc, v) in spectrum.bins_mut().iter_mut().zip(&line_bins) {
            *acc += v;
        }
    }
    println!(
        "T = {temp:.3e} K, n_e = {density} cm^-3, {} bins over 10-45 A",
        grid.bins()
    );
    println!(
        "hybrid run: {} GPU tasks / {} CPU tasks in {:.2}s wall",
        report.gpu_tasks, report.cpu_tasks, report.wall_s
    );
    if !faults_raw.is_empty() {
        println!(
            "fault ladder: {} faults, {} retries, {} CPU fallbacks, \
             {} quarantine(s); device health {:?}",
            report.task_faults,
            report.task_retries,
            report.fault_cpu_fallbacks,
            report.quarantines,
            report.device_health
        );
    }
    let series = spectrum.normalized().wavelength_series();
    if out.is_empty() {
        let peak = series
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        println!(
            "peak at {:.2} A; use --out FILE.tsv to dump the series",
            peak.0
        );
    } else {
        let mut tsv = String::from("wavelength_angstrom\tnormalized_flux\n");
        for (wl, flux) in &series {
            tsv.push_str(&format!("{wl:.6}\t{flux:.8e}\n"));
        }
        std::fs::write(&out, tsv).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {} rows to {out}", series.len());
    }
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let gpus: usize = args.get("gpus", 2)?;
    let qlen: u64 = args.get("qlen", 12)?;
    let granularity = match args.get("granularity", "ion".to_string())?.as_str() {
        "ion" => Granularity::Ion,
        "level" => Granularity::Level,
        other => return Err(format!("--granularity must be ion|level, got '{other}'")),
    };
    let romberg_k: u32 = args.get("romberg-k", 0)?;
    let window: usize = args.get("async-window", 1)?;

    let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig::default());
    let workload = SpectralWorkload::paper(&db);
    let calib = Calibration::paper();
    let mut cfg = spectral_config(
        &workload,
        &calib,
        granularity,
        gpus,
        qlen,
        (romberg_k > 0).then_some(romberg_k),
    );
    cfg.async_window = window;
    let report = desmodel::run(cfg);
    let serial = calib.serial_point_s * workload.points as f64;
    println!("virtual-time prediction (paper-scale workload, 24 grid points):");
    println!("  makespan:      {:.1} s", report.makespan_s);
    println!(
        "  speedup:       {:.1}x over serial APEC",
        serial / report.makespan_s
    );
    println!(
        "  task split:    {} GPU / {} CPU ({:.2}% on GPU)",
        report.gpu_tasks, report.cpu_tasks, report.gpu_ratio_percent
    );
    println!("  device history: {:?}", report.device_history);
    Ok(())
}

fn cmd_tune(args: &Args) -> Result<(), String> {
    let gpus: usize = args.get("gpus", 2)?;
    let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig::default());
    let workload = SpectralWorkload::paper(&db);
    let calib = Calibration::paper();
    // The one-shot sweep shares its patience budget with the resident
    // controller's knob surface.
    let tuning = hybridspec::sched::TuningConfig::default();
    let mut tuner = AutoTuner::paper_sweep().with_patience(tuning.patience);
    while let Some(q) = tuner.next_candidate() {
        let t = desmodel::run(spectral_config(
            &workload,
            &calib,
            Granularity::Ion,
            gpus,
            q,
            None,
        ))
        .makespan_s;
        println!("  qlen {q:2}: {t:.1} s");
        tuner.observe(q, t);
    }
    let (best, time) = tuner.best().expect("at least one probe");
    println!("inflexion at qlen {best} ({time:.1} s) for {gpus} GPU(s)");
    Ok(())
}

fn cmd_nei(args: &Args) -> Result<(), String> {
    let z: u8 = args.get("element", 8)?;
    let temp: f64 = args.get("temp", 1e7)?;
    let density: f64 = args.get("density", 1.0)?;
    let span: f64 = args.get("span", 1e10)?;
    if z == 0 || z > atomdb::MAX_Z {
        return Err(format!("--element must be 1..={}", atomdb::MAX_Z));
    }
    let sys = NeiSystem {
        z,
        electron_density: density,
        temperature_k: temp,
    };
    let mut x = vec![0.0; sys.dim()];
    x[0] = 1.0;
    let stats = LsodaSolver::default().integrate(&sys, &mut x, 0.0, span);
    let eq = hybridspec::nei::equilibrium_fractions(&sys);
    println!(
        "Z={z} at T={temp:.2e} K, n_e={density} cm^-3, span {span:.2e} s \
         ({} steps, {} LU, truncated: {})",
        stats.steps, stats.lu_factorizations, stats.truncated
    );
    println!("  stage   fraction   equilibrium");
    for (i, (a, b)) in x.iter().zip(&eq).enumerate() {
        if *a > 1e-6 || *b > 1e-6 {
            println!("  +{i:<5}  {a:9.5}  {b:9.5}");
        }
    }
    Ok(())
}

/// Drive a device-resident spectrum through a temperature sweep: one
/// full compute at the first point, then [`ResidentSpectrum::recalc`]
/// deltas for every further step, reporting per-step reuse and the
/// engine's resident accounting at shutdown.
fn cmd_recalc(args: &Args) -> Result<(), String> {
    use hybridspec::hybrid::{Engine, EngineConfig, ResidentSpectrum};

    let temp: f64 = args.get("temp", 1e7)?;
    let dtemp_rel: f64 = args.get("dtemp-rel", 1e-12)?;
    let steps: usize = args.get("steps", 8)?;
    let density: f64 = args.get("density", 1.0)?;
    let bins: usize = args.get("bins", 200)?;
    let max_z: u8 = args.get("max-z", 8)?;
    let gpus: usize = args.get("gpus", 2)?;
    let tolerance: f64 = args.get("tolerance", 1e-12)?;

    let db = Arc::new(atomdb::AtomDatabase::generate(atomdb::DatabaseConfig {
        max_z,
        ..atomdb::DatabaseConfig::default()
    }));
    let grid = EnergyGrid::linear(50.0, 2000.0, bins);
    let workers = 4;
    let engine = Engine::start(EngineConfig {
        db,
        workers,
        gpus,
        max_queue_len: 6,
        policy: hybridspec::sched::SchedPolicy::CostAware,
        gpu_rule: hybridspec::gpu::DeviceRule::Simpson { panels: 64 },
        gpu_precision: hybridspec::gpu::Precision::Double,
        cpu_integrator: Integrator::Simpson { panels: 64 },
        fused: true,
        async_window: 1,
        queue_depth: 2 * workers,
        deterministic_kernel: true,
        math: hybridspec::quadrature::MathMode::Exact,
        pack_threshold: 0,
        pack_max: 8,
        resilience: hybridspec::hybrid::ResilienceConfig::default(),
        tuning: hybridspec::sched::TuningConfig::default(),
    });
    println!(
        "resident sweep: {steps} step(s) of dT/T = {dtemp_rel:.1e} from {temp:.3e} K \
         at tolerance {tolerance:.1e}"
    );
    {
        let mut resident = ResidentSpectrum::new(&engine, grid).with_tolerance(tolerance);
        for step in 0..=steps {
            let point = rrc_spectral::GridPoint {
                temperature_k: temp * (1.0 + dtemp_rel * step as f64),
                density_cm3: density,
                time_s: 0.0,
                index: step,
            };
            let started = std::time::Instant::now();
            let summary = resident.recalc(&point).map_err(|e| e.to_string())?;
            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            let kind = if summary.full { "full " } else { "delta" };
            println!(
                "  step {step:3} ({kind}): reused {:3} / recomputed {:3} ion(s) in {elapsed_ms:8.2} ms",
                summary.reused, summary.recomputed
            );
        }
        let folded = resident.spectrum().expect("swept at least one point");
        println!(
            "  resident partials: {} ion(s) on-device; folded sum {:.6e}",
            resident.resident_ions(),
            folded.iter().sum::<f64>()
        );
    }
    let report = engine.shutdown();
    println!(
        "engine accounting: {} delta recalc(s) / {} full recompute(s); \
         {} reused vs {} recomputed ion(s); peak resident bytes {}",
        report.resident_delta_recalcs,
        report.resident_full_recomputes,
        report.resident_reused_ions,
        report.resident_recomputed_ions,
        report.resident_bytes_peak
    );
    Ok(())
}

/// Bring up the sharded service tier, optionally level it with the
/// capacity rebalancer, drive a deterministic open-loop load of
/// distinct plasma states through it, and print (or dump as JSON) the
/// router-level snapshot.
fn cmd_serve(args: &Args) -> Result<(), String> {
    use hybridspec::router::{RouterConfig, ShardRouter};
    use hybridspec::service::{ElementSelection, SpectrumRequest};

    let shards: usize = args.get("shards", 2)?;
    let replicas: usize = args.get("replicas", 1)?;
    let requests: usize = args.get("requests", 12)?;
    let max_z: u8 = args.get("max-z", 8)?;
    let bins: usize = args.get("bins", 64)?;
    let gpus: usize = args.get("gpus", 2)?;
    let cache: usize = args.get("cache", 4096)?;
    let rebalance: bool = args.get("rebalance", true)?;
    let router_cache: usize = args.get("router-cache", 0)?;
    let hot_k: usize = args.get("hot-k", 0)?;
    let deadline_ms: f64 = args.get("deadline-ms", 0.0)?;
    let priority_name: String = args.get("priority", "interactive".to_string())?;
    let hedge_quantile: f64 = args.get("hedge-quantile", 0.0)?;
    let snapshot_out: String = args.get("snapshot", String::new())?;
    let priority = desim::Priority::parse(&priority_name)
        .ok_or_else(|| format!("--priority must be interactive or bulk, got {priority_name}"))?;
    if shards == 0 || replicas == 0 {
        return Err("--shards and --replicas must be at least 1".into());
    }

    let db = Arc::new(atomdb::AtomDatabase::generate(atomdb::DatabaseConfig {
        max_z,
        ..atomdb::DatabaseConfig::default()
    }));
    let ions = db.ions().len();
    let grids = vec![EnergyGrid::paper_waveband(bins)];
    let mut cfg = RouterConfig::deterministic(db, grids);
    cfg.shards = shards;
    cfg.replicas = replicas;
    cfg.engine.gpus = gpus;
    cfg.engine.tuning = args.tuning(cfg.engine.tuning)?;
    cfg.cache_capacity = cache;
    cfg.route_cache_capacity = router_cache;
    cfg.hot_state_k = hot_k;
    cfg.hedge_quantile = hedge_quantile;
    // --no-affinity overrides the enabled default (and --affinity, if both).
    if args.map.contains_key("no-affinity") {
        cfg.affinity = false;
    } else if args.map.contains_key("affinity") {
        cfg.affinity = true;
    }
    let affinity_on = cfg.affinity;
    let tier = ShardRouter::start(cfg);
    println!(
        "sharded tier up: {shards} shard(s) x {replicas} replica(s), {ions} ions, \
         {bins} bins, {gpus} device(s) per replica \
         (affinity {}, router cache {router_cache}, hot-k {hot_k})",
        if affinity_on { "on" } else { "off" }
    );
    if rebalance {
        let mut passes = 0;
        while let Some(m) = tier.rebalance() {
            println!(
                "  rebalance: moved {} ion(s) (cost {}) from shard {} to {}",
                m.ions.len(),
                m.cost_moved,
                m.from,
                m.to
            );
            passes += 1;
            if passes >= 32 {
                break;
            }
        }
        if passes == 0 {
            println!("  rebalance: already level");
        }
    }
    for i in 0..requests {
        let point = rrc_spectral::GridPoint {
            temperature_k: 9.0e6 + 6.7e5 * i as f64,
            density_cm3: 1.0,
            time_s: 0.0,
            index: i,
        };
        let mut request =
            SpectrumRequest::new(point, ElementSelection::All, 0).with_priority(priority);
        if deadline_ms > 0.0 {
            request = request.with_deadline(tier.clock().deadline_in(deadline_ms / 1e3));
        }
        let response = tier
            .query(&request)
            .map_err(|e| format!("request {i}: {e:?}"))?;
        println!(
            "  request {i:3}: {} computed / {} cached; flux sum {:.6e}",
            response.ions_computed,
            response.ions_from_cache,
            response.bins.iter().sum::<f64>()
        );
    }
    let snapshot = tier.snapshot();
    println!(
        "tier: {} responded / {} requests, {} reroute(s), {} demoted skip(s), \
         {} rebalance(s)",
        snapshot.counters.responded,
        snapshot.counters.requests,
        snapshot.counters.reroutes,
        snapshot.counters.demoted_skips,
        snapshot.counters.rebalances
    );
    println!(
        "locality: {} route hit(s), {} coalesced, {} fan-out(s), \
         {} affinity pick(s) / {} fallback(s), {} warmed, {} handed off",
        snapshot.counters.route_hits,
        snapshot.counters.coalesced,
        snapshot.counters.fanouts,
        snapshot.counters.affinity_picks,
        snapshot.counters.affinity_fallbacks,
        snapshot.counters.warmed_partials,
        snapshot.counters.handoff_partials
    );
    println!(
        "resilience: {} hedge(s) ({} win(s), {} denied), {} breaker skip(s)",
        snapshot.counters.hedges,
        snapshot.counters.hedge_wins,
        snapshot.counters.hedge_denied,
        snapshot.counters.breaker_skips
    );
    for seg in &snapshot.segments {
        let demoted = seg.replicas.iter().filter(|r| r.demoted).count();
        println!(
            "  shard {}: {} ion(s), capacity cost {}, {} replica(s) ({} demoted)",
            seg.segment,
            seg.owned_ions,
            seg.capacity_cost,
            seg.replicas.len(),
            demoted
        );
    }
    if !snapshot_out.is_empty() {
        std::fs::write(&snapshot_out, snapshot.to_json().to_pretty())
            .map_err(|e| format!("writing {snapshot_out}: {e}"))?;
        println!("wrote tier snapshot to {snapshot_out}");
    }
    let report = tier.shutdown();
    println!(
        "tier drained: {} engine(s), {} leaked grant(s)",
        report.engines.len(),
        report.leaked_grants
    );
    if report.leaked_grants != 0 {
        return Err(format!("{} leaked grants", report.leaked_grants));
    }
    Ok(())
}

fn cmd_remnant(args: &Args) -> Result<(), String> {
    const YEAR_S: f64 = 3.156e7;
    let age_yr: f64 = args.get("age-yr", 500.0)?;
    let ambient: f64 = args.get("ambient", 1.0)?;
    let shells: usize = args.get("shells", 8)?;
    let blast = SedovBlast {
        ambient_cm3: ambient,
        ..SedovBlast::default()
    };
    let age = age_yr * YEAR_S;
    println!("Sedov remnant, E = 1e51 erg into n = {ambient} cm^-3, age {age_yr:.0} yr:");
    println!(
        "  shock radius {:.2} pc, velocity {:.0} km/s, post-shock T {:.3e} K",
        blast.shock_radius_cm(age) / 3.086e18,
        blast.shock_velocity_cm_s(age) / 1e5,
        blast.postshock_temperature_k(age)
    );
    println!("  shell   r/R     T (K)        n_e (cm^-3)");
    for i in 0..shells {
        let x = (i as f64 + 0.5) / shells as f64;
        let (t, n) = blast.interior(x, age);
        println!("  {i:5}   {x:4.2}  {t:11.4e}  {n:11.4e}");
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let path: String = args.get("spec", String::new())?;
    if path.is_empty() {
        return Err("run needs --spec FILE.json".into());
    }
    let json = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let spec = RunSpec::from_json(&json)?;
    let config = spec.into_config()?;
    let points = config.space.len();
    let report = HybridRunner::new(config).run();
    println!(
        "ran {points} grid point(s): {} GPU / {} CPU tasks ({:.2}% GPU), {:.2}s wall",
        report.gpu_tasks,
        report.cpu_tasks,
        report.gpu_ratio_percent(),
        report.wall_s
    );
    let out: String = args.get("out", String::new())?;
    if !out.is_empty() {
        let mut tsv = String::from(
            "point	wavelength_angstrom	normalized_flux
",
        );
        for (i, spectrum) in report.spectra.iter().enumerate() {
            for (wl, flux) in spectrum.normalized().wavelength_series() {
                tsv.push_str(&format!(
                    "{i}	{wl:.6}	{flux:.8e}
"
                ));
            }
        }
        std::fs::write(&out, tsv).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote spectra to {out}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, &str)]) -> Args {
        let argv: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), (*v).to_string()])
            .collect();
        Args::parse(&argv).unwrap()
    }

    #[test]
    fn parser_roundtrips_values() {
        let a = args(&[("temp", "2.5e6"), ("gpus", "3"), ("lines", "true")]);
        assert_eq!(a.get("temp", 0.0).unwrap(), 2.5e6);
        assert_eq!(a.get("gpus", 0usize).unwrap(), 3);
        assert!(a.get("lines", false).unwrap());
        // Defaults apply for absent keys.
        assert_eq!(a.get("qlen", 7u64).unwrap(), 7);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(Args::parse(&["temp".to_string()]).is_err());
        assert!(Args::parse(&["--temp".to_string()]).is_err());
        let a = args(&[("gpus", "three")]);
        assert!(a.get("gpus", 0usize).is_err());
    }

    #[test]
    fn parser_accepts_bare_tune_flags() {
        use hybridspec::sched::TuningConfig;
        let argv: Vec<String> = ["--tune", "--tune-epoch", "32"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let a = Args::parse(&argv).unwrap();
        let tuning = a.tuning(TuningConfig::default()).unwrap();
        assert!(tuning.enabled);
        assert_eq!(tuning.epoch_tasks, 32);
        // --no-tune overrides an enabled default (and --tune, if both).
        let b = Args::parse(&["--no-tune".to_string()]).unwrap();
        assert!(!b.tuning(TuningConfig::enabled()).unwrap().enabled);
        // Only the allowlisted flags are bare; others still need values.
        assert!(Args::parse(&["--lines".to_string()]).is_err());
    }

    #[test]
    fn nei_command_runs() {
        let a = args(&[("element", "6"), ("span", "1e8")]);
        cmd_nei(&a).unwrap();
    }

    #[test]
    fn predict_command_runs() {
        let a = args(&[("gpus", "1"), ("qlen", "6")]);
        cmd_predict(&a).unwrap();
    }

    #[test]
    fn recalc_command_runs() {
        let a = args(&[
            ("max-z", "4"),
            ("bins", "32"),
            ("steps", "2"),
            ("gpus", "1"),
            ("dtemp-rel", "1e-13"),
        ]);
        cmd_recalc(&a).unwrap();
    }

    #[test]
    fn serve_command_runs() {
        let a = args(&[
            ("shards", "2"),
            ("replicas", "1"),
            ("requests", "2"),
            ("max-z", "4"),
            ("bins", "16"),
            ("gpus", "1"),
            ("router-cache", "32"),
            ("hot-k", "2"),
        ]);
        cmd_serve(&a).unwrap();
    }

    #[test]
    fn remnant_command_runs() {
        let a = args(&[("age-yr", "300"), ("shells", "4")]);
        cmd_remnant(&a).unwrap();
    }

    #[test]
    fn run_command_accepts_a_spec_file() {
        let spec =
            r#"{"max_z": 4, "bins": 16, "gpus": 1, "ranks": 2, "rule": "simpson", "panels": 64}"#;
        let path = std::env::temp_dir().join("hspec_test_spec.json");
        std::fs::write(&path, spec).unwrap();
        let a = args(&[("spec", path.to_str().unwrap())]);
        cmd_run(&a).unwrap();
    }

    #[test]
    fn predict_rejects_bad_granularity() {
        let a = args(&[("granularity", "atom")]);
        assert!(cmd_predict(&a).is_err());
    }
}
