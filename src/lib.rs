//! # hybridspec
//!
//! Umbrella crate for the reproduction of *"Accelerating Spectral
//! Calculation through Hybrid GPU-based Computing"* (Xiao et al., ICPP
//! 2015). It re-exports every subsystem so examples and integration tests
//! can reach the whole stack through one dependency:
//!
//! * [`quadrature`] — 1-D numerical integration (Simpson, Romberg, QAGS).
//! * [`atomdb`] — synthetic atomic database (ions, levels, cross sections).
//! * [`spectral`] — the mini-APEC RRC spectral calculator.
//! * [`desim`] — deterministic discrete-event simulation kernel.
//! * [`gpu`] — the software GPU device model (SIMT executor + cost model).
//! * [`mpi`] — thread-backed message-passing runtime and shared memory.
//! * [`sched`] — the paper's shared-memory dynamic load balancer.
//! * [`nei`] — non-equilibrium ionization ODE substrate.
//! * [`hybrid`] — the hybrid CPU/GPU framework (the paper's contribution)
//!   plus per-figure experiment drivers.
//! * [`service`] — the long-lived single-engine spectral query service.
//! * [`router`] — the sharded multi-engine service tier (consistent-hash
//!   routing, replication, health-aware re-routing, rebalancing).

pub use atomdb;
pub use desim;
pub use gpu_sim as gpu;
pub use hybrid_sched as sched;
pub use hybrid_spectral as hybrid;
pub use jsonlite;
pub use mpi_sim as mpi;
pub use nei;
pub use quadrature;
pub use rrc_router as router;
pub use rrc_service as service;
pub use rrc_spectral as spectral;
