//! Quickstart: compute an RRC spectrum with the hybrid CPU/GPU runtime
//! and compare it against the serial reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use hybridspec::hybrid::{Granularity, HybridConfig, HybridRunner};
use hybridspec::spectral::{EnergyGrid, Integrator, ParameterSpace, SerialCalculator};

fn main() {
    // 1. A synthetic atomic database: every recombining ionization stage
    //    of H..Ga — the paper's 496 ions. (Use `max_z` to shrink it.)
    let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig::default());
    println!(
        "atomic database: {} ions, {} levels",
        db.stats().ions,
        db.stats().levels
    );

    // 2. An energy grid over the paper's plotted waveband (10-45 A).
    let grid = EnergyGrid::paper_waveband(400);

    // 3. One hot-plasma grid point.
    let space = ParameterSpace {
        temperatures_k: vec![3.5e6],
        densities_cm3: vec![1.0],
        times_s: vec![0.0],
    };

    // 4. The hybrid runtime: 8 MPI-style ranks, 2 simulated Tesla C2075
    //    GPUs, ion-granularity tasks, Simpson-64 on the device and QAGS
    //    as the CPU fallback — the paper's configuration.
    let config = HybridConfig {
        db: Arc::new(db.clone()),
        grid: grid.clone(),
        space,
        ranks: 8,
        gpus: 2,
        max_queue_len: 6,
        policy: hybridspec::sched::SchedPolicy::CostAware,
        granularity: Granularity::Ion,
        gpu_rule: hybridspec::gpu::DeviceRule::Simpson { panels: 64 },
        gpu_precision: hybridspec::gpu::Precision::Double,
        cpu_integrator: Integrator::paper_cpu(),
        async_window: 1,
        fused: true,
        math: hybridspec::quadrature::MathMode::Exact,
        pack_threshold: 0,
        resilience: hybridspec::hybrid::ResilienceConfig::default(),
        tuning: hybridspec::sched::TuningConfig::default(),
    };
    let report = HybridRunner::new(config).run();
    println!(
        "hybrid run: {} GPU tasks, {} CPU-fallback tasks ({:.2}% on GPU), {:.2}s wall",
        report.gpu_tasks,
        report.cpu_tasks,
        report.gpu_ratio_percent(),
        report.wall_s
    );

    // 5. Compare with the serial QAGS reference.
    let point = rrc_spectral::GridPoint {
        temperature_k: 3.5e6,
        density_cm3: 1.0,
        time_s: 0.0,
        index: 0,
    };
    let serial = SerialCalculator::new(db, grid, Integrator::paper_cpu());
    let reference = serial.spectrum_at(&point);
    let errors = report.spectra[0].significant_relative_errors_percent(&reference, 1e-9);
    let worst = errors.iter().fold(0.0f64, |m, e| m.max(e.abs()));
    println!(
        "accuracy vs serial QAGS: worst relative error {worst:.2e}% over {} flux bins",
        errors.len()
    );

    // 6. Print the spectrum's peak region.
    let series = report.spectra[0].normalized().wavelength_series();
    let peak = series
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite flux"))
        .expect("non-empty");
    println!("spectrum peak at {:.2} A (normalized flux 1.0)", peak.0);
}
