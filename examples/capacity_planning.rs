//! Capacity planning with the virtual-time replica: before buying
//! GPUs, ask the discrete-event model how many devices and what
//! maximum queue length a workload needs — the planning questions the
//! paper answers empirically in Figs. 3-5 ("2 GPUs is powerful enough
//! to process the request from 24 CPU cores").
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use hybridspec::hybrid::desmodel::{self, spectral_config};
use hybridspec::hybrid::{Calibration, Granularity, SpectralWorkload};
use hybridspec::sched::AutoTuner;

fn main() {
    let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig::default());
    let workload = SpectralWorkload::paper(&db);
    let calib = Calibration::paper();
    let serial_s = calib.serial_point_s * workload.points as f64;

    println!(
        "workload: {} grid points, {} ion tasks, serial cost {serial_s:.0} s\n",
        workload.points,
        workload.total_tasks(Granularity::Ion)
    );

    println!("  GPUs  tuned qlen  makespan (s)  speedup  GPU share  marginal gain");
    let mut prev: Option<f64> = None;
    for gpus in 1..=6usize {
        // Tune the queue length for this device count, as the paper's
        // scheduler does at startup.
        let tuned = AutoTuner::paper_sweep().with_patience(2).tune(|q| {
            desmodel::run(spectral_config(
                &workload,
                &calib,
                Granularity::Ion,
                gpus,
                q,
                None,
            ))
            .makespan_s
        });
        let report = desmodel::run(spectral_config(
            &workload,
            &calib,
            Granularity::Ion,
            gpus,
            tuned,
            None,
        ));
        let gain = prev.map_or("      -".to_string(), |p: f64| {
            format!("{:6.1}%", 100.0 * (p - report.makespan_s) / p)
        });
        println!(
            "  {gpus:4}  {tuned:10}  {:12.1}  {:7.1}  {:8.2}%  {gain}",
            report.makespan_s,
            serial_s / report.makespan_s,
            report.gpu_ratio_percent
        );
        prev = Some(report.makespan_s);
    }
    println!("\nthe marginal gain collapses once the shared host/PCIe stage saturates —");
    println!("the model reproduces the paper's advice that 2 GPUs already serve 24");
    println!("cores, and shows where extra devices stop paying for themselves.");
}
