//! Supernova-remnant scenario: non-equilibrium ionization behind a
//! shock front, then the RRC spectrum of the evolving plasma.
//!
//! A young supernova remnant's reverse shock heats cold ejecta to
//! X-ray temperatures almost instantaneously; the ionization state lags
//! the electron temperature for thousands of years (the NEI effect the
//! paper's §IV-D workload computes). This example evolves the ion
//! populations of oxygen and iron through the shock with the
//! LSODA-style solver and prints how the RRC emissivity hardens as the
//! plasma ionizes.
//!
//! ```sh
//! cargo run --release --example supernova_remnant
//! ```

use hybridspec::nei::{LsodaSolver, NeiSystem};
use hybridspec::spectral::{EnergyGrid, GridPoint, Integrator};
use quadrature::QagsWorkspace;

/// Electron density behind the shock, cm^-3.
const NE: f64 = 1.0;
/// Post-shock electron temperature, kelvin.
const T_SHOCK: f64 = 1.2e7;

fn main() {
    let solver = LsodaSolver::default();
    let grid = EnergyGrid::paper_waveband(200);
    let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig::default());
    let point = GridPoint {
        temperature_k: T_SHOCK,
        density_cm3: NE,
        time_s: 0.0,
        index: 0,
    };

    println!("reverse shock: T_e = {T_SHOCK:.1e} K, n_e = {NE} cm^-3");
    println!("evolving O and Fe ionization from neutral...\n");

    // Evolve oxygen (Z=8) and iron (Z=26) from neutral through the
    // shock, sampling a few epochs (seconds; ~30 to ~30k years).
    let epochs_s = [1e9, 1e10, 1e11, 1e12];
    for &z in &[8u8, 26] {
        let sys = NeiSystem {
            z,
            electron_density: NE,
            temperature_k: T_SHOCK,
        };
        let mut x = vec![0.0; sys.dim()];
        x[0] = 1.0;
        let mut t_prev = 0.0;
        println!("element Z={z}:");
        for &t in &epochs_s {
            let stats = solver.integrate(&sys, &mut x, t_prev, t);
            t_prev = t;
            let mean_charge: f64 = x.iter().enumerate().map(|(q, &f)| q as f64 * f).sum();
            let dominant = x
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("fractions finite"))
                .expect("non-empty")
                .0;
            // RRC emissivity of the currently dominant recombining ion.
            let flux = dominant_ion_flux(&db, z, dominant, &point, &grid);
            println!(
                "  t = {t:8.1e} s: <q> = {mean_charge:5.2}, dominant stage +{dominant:<2} \
                 (solver: {} steps, {} switches), RRC flux {flux:.3e}",
                stats.steps, stats.method_switches
            );
        }
        println!();
    }
    println!("the mean charge climbs toward the CIE value while the RRC edge of the");
    println!("dominant stage sweeps blueward — the signature the paper's pipeline");
    println!("computes for every grid point of a hydrodynamic simulation.");
}

/// Integrated RRC emissivity of the (z, charge) ion over the waveband —
/// zero for the neutral stage, which cannot recombine further.
fn dominant_ion_flux(
    db: &atomdb::AtomDatabase,
    z: u8,
    charge: usize,
    point: &GridPoint,
    grid: &EnergyGrid,
) -> f64 {
    let Some(ion) = atomdb::Ion::new(z, charge as u8) else {
        return 0.0;
    };
    let mut out = vec![0.0; grid.bins()];
    let mut ws = QagsWorkspace::new();
    rrc_spectral::ion_emissivity_into(
        db,
        ion.dense_index(),
        point,
        grid,
        Integrator::Simpson { panels: 64 },
        &mut ws,
        &mut out,
    );
    out.iter().sum()
}
