//! The full production pipeline, end to end: a synthetic hydrodynamic
//! snapshot (Sedov–Taylor blast) → per-shell grid points → hybrid
//! CPU/GPU spectra → the remnant's integrated spectrum, plus the NEI
//! ionization state of a swept-up tracer. This is the workflow the
//! paper's Fig. 1 sketches, with every stage running in this repository.
//!
//! ```sh
//! cargo run --release --example remnant_pipeline
//! ```

use std::sync::Arc;

use hybridspec::hybrid::{Granularity, HybridConfig, HybridRunner, SedovBlast};
use hybridspec::spectral::{EnergyGrid, Integrator, Spectrum};

const YEAR_S: f64 = 3.156e7;

fn main() {
    // Stage 1: the "astrophysical simulation" — a 500-year-old remnant
    // in a thin medium (low n_e * t is what makes NEI matter).
    let blast = SedovBlast {
        ambient_cm3: 0.1,
        ..SedovBlast::default()
    };
    let age = 500.0 * YEAR_S;
    let shells = 8;
    let space = blast.snapshot(age, shells);
    println!(
        "Sedov remnant at {:.0} yr: shock radius {:.2} pc, post-shock T {:.2e} K",
        age / YEAR_S,
        blast.shock_radius_cm(age) / 3.086e18,
        blast.postshock_temperature_k(age)
    );

    // Stage 2: hybrid spectral calculation, one grid point per shell.
    let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig {
        max_z: 14,
        ..atomdb::DatabaseConfig::default()
    });
    let grid = EnergyGrid::paper_waveband(200);
    let config = HybridConfig {
        db: Arc::new(db),
        grid: grid.clone(),
        space,
        ranks: 4,
        gpus: 2,
        max_queue_len: 6,
        policy: hybridspec::sched::SchedPolicy::CostAware,
        granularity: Granularity::Ion,
        gpu_rule: hybridspec::gpu::DeviceRule::Simpson { panels: 64 },
        gpu_precision: hybridspec::gpu::Precision::Double,
        cpu_integrator: Integrator::paper_cpu(),
        async_window: 2,
        fused: true,
        math: hybridspec::quadrature::MathMode::Exact,
        pack_threshold: 0,
        resilience: hybridspec::hybrid::ResilienceConfig::default(),
        tuning: hybridspec::sched::TuningConfig::default(),
    };
    let report = HybridRunner::new(config).run();
    println!(
        "computed {} shell spectra ({} GPU tasks, {:.1}% on GPU, {:.2}s wall)",
        report.spectra.len(),
        report.gpu_tasks,
        report.gpu_ratio_percent(),
        report.wall_s
    );

    // Stage 3: volume-weighted integration over shells (outer shells
    // dominate: weight ~ x^2 dx).
    let mut total = Spectrum::zeros(grid);
    for (i, spectrum) in report.spectra.iter().enumerate() {
        let x = (i as f64 + 0.5) / shells as f64;
        let weight = x * x;
        let mut weighted = spectrum.clone();
        for v in weighted.bins_mut() {
            *v *= weight;
        }
        total.accumulate(&weighted);
    }
    let series = total.normalized().wavelength_series();
    let peak = series
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    println!("integrated remnant spectrum peaks at {:.2} A", peak.0);

    // Stage 4: the NEI state of a tracer the shock swept up 50 yr ago.
    let sweep = 450.0 * YEAR_S;
    let history = blast.tracer_history(sweep, age, 8);
    let solver = hybridspec::nei::LsodaSolver::default();
    let mut oxygen = vec![0.0; 9];
    oxygen[0] = 1.0;
    let stats = history.integrate(&solver, 8, &mut oxygen, 0.0, age, 4);
    let mean_charge: f64 = oxygen.iter().enumerate().map(|(q, f)| q as f64 * f).sum();
    let eq = hybridspec::nei::equilibrium_fractions(&hybridspec::nei::NeiSystem {
        z: 8,
        electron_density: blast.postshock_density_cm3(),
        temperature_k: blast.postshock_temperature_k(age),
    });
    let eq_charge: f64 = eq.iter().enumerate().map(|(q, f)| q as f64 * f).sum();
    println!(
        "tracer oxygen after {:.0} yr behind the shock: <q> = {mean_charge:.2} \
         (CIE would be {eq_charge:.2}; the lag IS the NEI effect) [{} solver steps]",
        (age - sweep) / YEAR_S,
        stats.steps
    );
}
