//! Nucleosynthesis with the generic ODE machinery: helium burning
//! through the alpha chain at three thermodynamic conditions — the
//! paper's §V "nucleosynthesis reactive network" future-work target,
//! running on the same LSODA-style solver as the NEI workload.
//!
//! ```sh
//! cargo run --release --example helium_flash
//! ```

use hybridspec::nei::alpha::{AlphaChain, A, LABELS};
use hybridspec::nei::LsodaSolver;

fn main() {
    let solver = LsodaSolver::new(1e-7, 1e-13);
    let scenarios = [
        (
            "quiescent shell burning",
            AlphaChain { t9: 0.18, rho: 1e5 },
            3e8,
        ),
        ("helium flash", AlphaChain { t9: 0.9, rho: 1e6 }, 1e4),
        (
            "explosive (detonation)",
            AlphaChain { t9: 5.0, rho: 1e7 },
            1.0,
        ),
    ];
    for (name, net, span) in scenarios {
        let mut y = AlphaChain::pure_helium();
        let stats = solver.integrate(&net, &mut y, 0.0, span);
        println!(
            "{name}: T9 = {}, rho = {:.0e} g/cc, {:.0e} s \
             ({} steps, {} implicit factorizations{})",
            net.t9,
            net.rho,
            span,
            stats.steps,
            stats.lu_factorizations,
            if stats.truncated { ", TRUNCATED" } else { "" }
        );
        // Mass fractions above 1% of the total.
        print!("  composition:");
        for (i, (&yi, &a)) in y.iter().zip(A.iter()).enumerate() {
            let x = yi * a;
            if x > 0.01 {
                print!("  {} {:.1}%", LABELS[i], 100.0 * x);
            }
        }
        println!("\n");
    }
    println!("hotter and denser conditions push the burning further along the");
    println!("chain — from He barely touched, through C/O and intermediate-mass");
    println!("ash, to an iron-group dominated ejecta.");
}
