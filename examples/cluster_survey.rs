//! Galaxy-cluster survey scenario: a grid of plasma temperatures (the
//! kind of parameter space the paper's Fig. 1 sketches), computed with
//! the hybrid runtime, then a crude "fit" of a mock observation by
//! chi-square over the grid.
//!
//! ```sh
//! cargo run --release --example cluster_survey
//! ```

use std::sync::Arc;

use hybridspec::hybrid::{Granularity, HybridConfig, HybridRunner};
use hybridspec::spectral::{EnergyGrid, InstrumentResponse, Integrator, ParameterSpace};

fn main() {
    // A coarse survey grid: 8 temperatures x 1 density. Real surveys use
    // 128^3 points (the paper's 0.5M CPU-hours estimate); the machinery
    // is identical.
    let temperatures: Vec<f64> = (0..8).map(|i| 2.0e6 + 1.0e6 * i as f64).collect();
    let space = ParameterSpace {
        temperatures_k: temperatures.clone(),
        densities_cm3: vec![1.0],
        times_s: vec![0.0],
    };
    let db = atomdb::AtomDatabase::generate(atomdb::DatabaseConfig {
        max_z: 14, // H..Si keeps the survey quick
        ..atomdb::DatabaseConfig::default()
    });
    let grid = EnergyGrid::paper_waveband(160);

    let config = HybridConfig {
        db: Arc::new(db),
        grid: grid.clone(),
        space,
        ranks: 8,
        gpus: 3,
        max_queue_len: 6,
        policy: hybridspec::sched::SchedPolicy::CostAware,
        granularity: Granularity::Ion,
        gpu_rule: hybridspec::gpu::DeviceRule::Simpson { panels: 64 },
        gpu_precision: hybridspec::gpu::Precision::Double,
        cpu_integrator: Integrator::paper_cpu(),
        async_window: 1,
        fused: true,
        math: hybridspec::quadrature::MathMode::Exact,
        pack_threshold: 0,
        resilience: hybridspec::hybrid::ResilienceConfig::default(),
        tuning: hybridspec::sched::TuningConfig::default(),
    };
    println!(
        "computing {} survey spectra on {} ranks / {} simulated GPUs...",
        temperatures.len(),
        config.ranks,
        config.gpus
    );
    let report = HybridRunner::new(config).run();
    println!(
        "done: {:.2}s wall, {:.1}% of tasks on GPU, device histories {:?}\n",
        report.wall_s,
        report.gpu_ratio_percent(),
        report.device_history
    );

    // Mock observation: the 5e6 K model folded through a CCD-like
    // instrument response (finite energy resolution + effective area),
    // which is what a telescope would actually record.
    let truth_idx = 3;
    let response = InstrumentResponse::ccd();
    let observed = response.fold(&report.spectra[truth_idx]);

    println!("  T (K)       chi^2 vs folded observation");
    let mut best = (0usize, f64::MAX);
    for (i, spectrum) in report.spectra.iter().enumerate() {
        let folded = response.fold(spectrum);
        let chi2 = chi_square(&observed, &folded);
        let marker = if i == truth_idx { "  <- truth" } else { "" };
        println!("  {:8.2e}  {chi2:12.6}{marker}", temperatures[i]);
        if chi2 < best.1 {
            best = (i, chi2);
        }
    }
    println!(
        "\nbest fit: T = {:.2e} K ({})",
        temperatures[best.0],
        if best.0 == truth_idx {
            "recovered the injected temperature"
        } else {
            "MISSED the injected temperature"
        }
    );
}

fn chi_square(observed: &[f64], model_counts: &[f64]) -> f64 {
    // Normalize both to unit peak (the survey fits shape, not flux) and
    // weight by a crude counting-noise model.
    let norm = |v: &[f64]| -> Vec<f64> {
        let peak = v.iter().cloned().fold(0.0f64, f64::max).max(1e-300);
        v.iter().map(|x| x / peak).collect()
    };
    let o = norm(observed);
    let m = norm(model_counts);
    o.iter()
        .zip(&m)
        .map(|(o, m)| {
            let sigma = 0.02 + 0.05 * m;
            ((o - m) / sigma).powi(2)
        })
        .sum::<f64>()
        / o.len() as f64
}
